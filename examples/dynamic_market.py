#!/usr/bin/env python3
"""A spectrum market that lives through time.

The "dynamic" in dynamic spectrum access: service providers' demand
changes, newcomers arrive, others leave.  This example runs 15 epochs of
an evolving market and compares two re-matching policies:

* COLD -- re-run the full two-stage algorithm each epoch (a fresh market
  every time);
* WARM -- incumbents keep their channels; only Stage II runs (newcomers
  transfer in, improvements are voluntary), iterated to a Nash-stable
  fixed point.

Watch the churn column: warm re-matching keeps almost everyone in place
while staying within a few percent of cold-start welfare.

Run:  python examples/dynamic_market.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.stability import is_nash_stable
from repro.dynamic.generator import DynamicMarketGenerator
from repro.dynamic.online import OnlineMatcher, RematchStrategy

EPOCHS = 15


def run(strategy: RematchStrategy, seed: int = 2026):
    generator = DynamicMarketGenerator(
        num_channels=5,
        initial_buyers=35,
        arrival_rate=4.0,
        departure_prob=0.10,
        drift_sigma=0.04,
        rng=np.random.default_rng(seed),
    )
    epochs = generator.epochs(EPOCHS)
    matcher = OnlineMatcher(strategy)
    outcomes = matcher.run(epochs)
    return epochs, outcomes


def main() -> None:
    epochs, cold = run(RematchStrategy.COLD)
    _, warm = run(RematchStrategy.WARM)

    rows = []
    for epoch, c, w in zip(epochs, cold, warm):
        rows.append(
            [
                epoch.index,
                epoch.market.num_buyers,
                len(epoch.arrived),
                len(epoch.departed),
                c.social_welfare,
                w.social_welfare,
                c.churned,
                w.churned,
            ]
        )
    print(f"{EPOCHS} epochs, M=5 channels, ~10% departures, drift 0.04")
    print(
        format_table(
            [
                "epoch", "buyers", "in", "out",
                "cold welfare", "warm welfare",
                "cold moved", "warm moved",
            ],
            rows,
        )
    )

    cold_welfare = sum(o.social_welfare for o in cold[1:])
    warm_welfare = sum(o.social_welfare for o in warm[1:])
    cold_moved = sum(o.churned for o in cold[1:])
    warm_moved = sum(o.churned for o in warm[1:])
    print(f"\ntotals after epoch 0: welfare cold {cold_welfare:.2f} vs "
          f"warm {warm_welfare:.2f} ({warm_welfare / cold_welfare:.1%})")
    print(f"incumbents moved:      cold {cold_moved} vs warm {warm_moved}")
    stable = all(
        is_nash_stable(e.market, o.matching) for e, o in zip(epochs, warm)
    )
    print(f"warm matchings Nash-stable at every epoch: {stable}")


if __name__ == "__main__":
    main()
