#!/usr/bin/env python3
"""Visual tour: see a spectrum market before and after matching.

Renders, in plain ASCII, the geometric deployment (uniform vs hotspot
clustering), the per-channel interference structure, and the final
coalition map where every buyer is drawn as the letter of the channel she
won.

Run:  python examples/visual_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.visualization import (
    render_deployment_map,
    render_interference_summary,
    render_matching_table,
)
from repro.core.market import SpectrumMarket
from repro.core.two_stage import run_two_stage
from repro.workloads.deployment import clustered_deployment, random_deployment
from repro.workloads.utilities import iid_uniform_utilities


def show(title, deployment, rng_seed):
    rng = np.random.default_rng(rng_seed)
    utilities = iid_uniform_utilities(deployment.locations.shape[0], 4, rng)
    market = SpectrumMarket(utilities, deployment.interference_map())
    result = run_two_stage(market, record_trace=False)

    print(f"\n=== {title} ===")
    print(render_interference_summary(market.interference))
    print()
    print(
        render_deployment_map(
            deployment.locations,
            deployment.area_side,
            matching=result.matching,
        )
    )
    print()
    print(render_matching_table(market, result.matching))
    print(
        f"\nsocial welfare {result.social_welfare:.4f}, "
        f"{result.matching.num_matched()}/{market.num_buyers} buyers matched"
    )


def main() -> None:
    rng = np.random.default_rng(31)
    uniform = random_deployment(30, 4, rng)
    show("uniform deployment (30 buyers, 4 channels)", uniform, rng_seed=32)

    rng = np.random.default_rng(33)
    hotspots = clustered_deployment(
        30, 4, rng, num_clusters=3, cluster_spread=0.8
    )
    show("hotspot deployment (3 clusters, spread 0.8)", hotspots, rng_seed=34)


if __name__ == "__main__":
    main()
