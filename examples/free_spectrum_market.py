#!/usr/bin/env python3
"""A free spectrum market between carriers and regional ISPs.

The scenario the paper's introduction motivates: wireless service
providers with spare channels sell to providers whose demand spiked --
with no auctioneer.  Two carriers supply 2 + 2 channels; four regional
ISPs demand 1-3 channels each.  The dummy expansion of Section II-A turns
this into a virtual market (each virtual buyer wants exactly one channel,
clones of one ISP never share a channel), which the two-stage algorithm
then matches.

Run:  python examples/free_spectrum_market.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    PhysicalBuyer,
    PhysicalSeller,
    SpectrumMarket,
    is_nash_stable,
    run_two_stage,
)
from repro.workloads.deployment import random_deployment


def main() -> None:
    rng = np.random.default_rng(7)

    sellers = [
        PhysicalSeller(name="carrier-east", num_channels=2),
        PhysicalSeller(name="carrier-west", num_channels=2),
    ]
    num_channels = sum(s.num_channels for s in sellers)

    # Each ISP values channels according to how well they cover its region;
    # here: random valuations, scaled by how much it wants spectrum at all.
    demands = {"isp-metro": 3, "isp-rural": 1, "isp-campus": 2, "isp-port": 1}
    buyers = []
    for name, demand in demands.items():
        appetite = 0.5 + rng.random() / 2.0
        valuations = tuple(float(appetite * rng.random()) for _ in range(num_channels))
        buyers.append(
            PhysicalBuyer(name=name, num_requested=demand, utilities=valuations)
        )
    num_virtual = sum(demands.values())

    # Geometric interference between the ISPs' deployment sites.
    deployment = random_deployment(num_virtual, num_channels, rng)
    market = SpectrumMarket.from_physical(
        sellers, buyers, deployment.interference_map()
    )
    market.validate()
    print(f"virtual market: {market.num_buyers} buyers x "
          f"{market.num_channels} channels")
    print(f"virtual buyers: {market.buyer_names}")
    print(f"channels:       {market.channel_names}")

    result = run_two_stage(market)
    matching = result.matching

    print(f"\nsocial welfare: {result.social_welfare:.4f} "
          f"(Stage I: {result.welfare_stage1:.4f})")
    print(f"Nash-stable:    {is_nash_stable(market, matching)}")

    print("\nper-seller outcome:")
    for channel in range(market.num_channels):
        members = sorted(matching.coalition(channel))
        revenue = matching.seller_revenue(channel, market.utilities)
        print(
            f"  {market.channel_names[channel]:>14}: "
            f"{[market.buyer_names[j] for j in members]} "
            f"revenue {revenue:.4f}"
        )

    print("\nper-ISP outcome (channels won / demanded):")
    for owner, buyer in enumerate(buyers):
        won = [
            market.channel_names[matching.channel_of(v)]
            for v in range(market.num_buyers)
            if market.buyer_owner[v] == owner and matching.is_matched(v)
        ]
        print(f"  {buyer.name:>10}: {len(won)}/{buyer.num_requested} -> {won}")


if __name__ == "__main__":
    main()
