#!/usr/bin/env python3
"""Replay the paper's running example (Figs. 1-3) with a narrated trace.

Five buyers, three sellers a/b/c, hand-specified per-channel interference.
Stage I (adapted deferred acceptance) converges to welfare 27 in four
rounds; Stage II (transfer and invitation) lifts it to 30 -- exactly the
numbers printed in the paper.

Run:  python examples/paper_toy_example.py
"""

from __future__ import annotations

from repro import run_two_stage, toy_example_market
from repro.core.stability import is_nash_stable, nash_blocking_moves


def names(market, buyers):
    return [market.buyer_names[j] for j in sorted(buyers)]


def main() -> None:
    market = toy_example_market()
    print("utility vectors (channels a, b, c):")
    for j in range(market.num_buyers):
        print(f"  {market.buyer_names[j]}: {tuple(market.buyer_vector(j))}")

    result = run_two_stage(market)

    print("\n--- Stage I: adapted deferred acceptance (Fig. 1) ---")
    for record in result.stage_one.rounds:
        print(f"round {record.round_index}:")
        for channel, buyers in sorted(record.proposals.items()):
            print(
                f"  {names(market, buyers)} propose to "
                f"seller {market.channel_names[channel]}"
            )
        for buyer, channel in record.evictions:
            print(
                f"  seller {market.channel_names[channel]} evicts "
                f"{market.buyer_names[buyer]}"
            )
        waitlists = {
            market.channel_names[ch]: names(market, members)
            for ch, members in sorted(record.waitlists.items())
        }
        print(f"  waitlists: {waitlists}")
    print(f"Stage I social welfare: {result.welfare_stage1:g}  (paper: 27)")

    # The Stage-I matching is NOT Nash-stable -- the instability the paper
    # points out: buyer 2 could join seller a next to buyer 4.
    stage_one = result.stage_one.matching
    print("\nStage I instabilities (profitable unilateral moves):")
    for move in nash_blocking_moves(market, stage_one):
        print(
            f"  {market.buyer_names[move.buyer]} would move to seller "
            f"{market.channel_names[move.channel]} "
            f"({move.current_utility:g} -> {move.deviation_utility:g})"
        )

    print("\n--- Stage II: transfer and invitation (Fig. 2) ---")
    for record in result.stage_two.transfer_rounds:
        print(f"transfer round {record.round_index}:")
        for channel, buyers in sorted(record.applications.items()):
            print(
                f"  {names(market, buyers)} apply to seller "
                f"{market.channel_names[channel]}"
            )
        for buyer, origin, channel in record.accepted:
            origin_name = market.channel_names[origin] if origin >= 0 else "unmatched"
            print(
                f"  {market.buyer_names[buyer]} transfers "
                f"{origin_name} -> {market.channel_names[channel]}"
            )
    for record in result.stage_two.invitation_rounds:
        for channel, buyer in record.invitations:
            print(
                f"invitation round {record.round_index}: seller "
                f"{market.channel_names[channel]} invites "
                f"{market.buyer_names[buyer]}"
            )
        for buyer, origin, channel in record.accepted:
            origin_name = market.channel_names[origin] if origin >= 0 else "unmatched"
            print(
                f"  {market.buyer_names[buyer]} accepts: "
                f"{origin_name} -> {market.channel_names[channel]}"
            )

    print(f"\nfinal social welfare: {result.social_welfare:g}  (paper: 30)")
    coalitions = {
        market.channel_names[ch]: names(market, result.matching.coalition(ch))
        for ch in range(market.num_channels)
    }
    print(f"final matching: {coalitions}")
    print(f"Nash-stable: {is_nash_stable(market, result.matching)}")


if __name__ == "__main__":
    main()
