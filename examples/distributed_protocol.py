#!/usr/bin/env python3
"""Run spectrum matching as an actual message-passing protocol.

Everything in the other examples uses the centralised reference loops.
This example runs the Section IV implementation instead: every buyer and
seller is an independent agent exchanging Propose / Evict / TransferApply
/ Invite messages over a time-slotted network, each deciding locally when
to move from Stage I to Stage II.

It compares the paper's transition rules on one market -- the default
rule (wait out the MN worst case) versus the probability-driven adaptive
rules -- and then repeats the run over a jittery network to show the
protocol tolerates delay.

Run:  python examples/distributed_protocol.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    adaptive_policy,
    default_policy,
    paper_simulation_market,
    run_distributed_matching,
    run_two_stage,
)
from repro.analysis.reporting import format_table
from repro.distributed.network import DelayedNetwork
from repro.distributed.transition import neighbor_rule_policy


def main() -> None:
    rng = np.random.default_rng(99)
    market = paper_simulation_market(num_buyers=24, num_channels=5, rng=rng)
    centralized = run_two_stage(market, record_trace=False)
    print(f"market: {market}")
    print(f"centralized reference welfare: {centralized.social_welfare:.4f} "
          f"(MN = {market.num_buyers * market.num_channels} slots worst case)")

    policies = [
        ("default (wait MN)", default_policy()),
        ("buyer rule I", neighbor_rule_policy()),
        ("adaptive P^k/Q^k (0.05)", adaptive_policy(0.05, 0.05)),
        ("adaptive P^k/Q^k (0.30)", adaptive_policy(0.30, 0.30)),
    ]
    rows = []
    for name, policy in policies:
        run = run_distributed_matching(market, policy=policy)
        rows.append(
            [
                name,
                run.slots,
                run.messages_sent,
                run.social_welfare,
                "yes" if run.matching == centralized.matching else "no",
            ]
        )
    print("\ntransition-rule comparison (reliable network):")
    print(
        format_table(
            ["policy", "slots", "messages", "welfare", "= centralized"],
            rows,
        )
    )

    print("\nsame protocol over a network with random 1-3 slot delays:")
    jittery = run_distributed_matching(
        market,
        policy=default_policy(),
        network=DelayedNetwork(1, 3),
        seed=5,
    )
    print(
        f"  slots={jittery.slots} messages={jittery.messages_sent} "
        f"welfare={jittery.social_welfare:.4f} "
        f"interference-free="
        f"{jittery.matching.is_interference_free(market.interference)}"
    )


if __name__ == "__main__":
    main()
