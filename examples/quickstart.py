#!/usr/bin/env python3
"""Quickstart: build a spectrum market, match it, inspect the result.

Covers the 90-second tour of the library:

1. generate a market with the paper's simulation workload (buyers placed
   uniformly in a 10x10 area, per-channel disk interference, U[0,1]
   utilities);
2. run the two-stage distributed matching algorithm;
3. check the guaranteed properties (interference-freedom, individual
   rationality, Nash stability);
4. compare against the exact optimal matching and the LP upper bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    is_individually_rational,
    is_nash_stable,
    lp_relaxation_bound,
    optimal_matching_branch_and_bound,
    paper_simulation_market,
    run_two_stage,
)


def main() -> None:
    rng = np.random.default_rng(2016)  # ICDCS 2016
    market = paper_simulation_market(num_buyers=12, num_channels=4, rng=rng)
    print(f"market: {market}")

    # --- run the paper's two-stage algorithm -------------------------------
    result = run_two_stage(market)
    print(f"\nStage I  (adapted deferred acceptance): welfare "
          f"{result.welfare_stage1:.4f} in {result.rounds_stage1} rounds")
    print(f"Stage II (transfer):                    welfare "
          f"{result.welfare_phase1:.4f} in {result.rounds_phase1} rounds")
    print(f"Stage II (invitation):                  welfare "
          f"{result.welfare_phase2:.4f} in {result.rounds_phase2} rounds")

    matching = result.matching
    print("\nfinal coalitions:")
    for channel in range(market.num_channels):
        members = sorted(matching.coalition(channel))
        revenue = matching.seller_revenue(channel, market.utilities)
        print(f"  channel {channel}: buyers {members} (revenue {revenue:.4f})")
    unmatched = [
        j for j in range(market.num_buyers) if not matching.is_matched(j)
    ]
    print(f"  unmatched buyers: {unmatched}")

    # --- guaranteed properties (Propositions 3-4) --------------------------
    print(f"\ninterference-free:      "
          f"{matching.is_interference_free(market.interference)}")
    print(f"individually rational:  {is_individually_rational(market, matching)}")
    print(f"Nash-stable:            {is_nash_stable(market, matching)}")

    # --- how close to optimal? ---------------------------------------------
    optimal = optimal_matching_branch_and_bound(market)
    best = optimal.social_welfare(market.utilities)
    bound = lp_relaxation_bound(market)
    ratio = result.social_welfare / best if best > 0 else 1.0
    print(f"\nproposed welfare:  {result.social_welfare:.4f}")
    print(f"optimal welfare:   {best:.4f}  (ratio {ratio:.1%};"
          f" paper claims > 90%)")
    print(f"LP upper bound:    {bound:.4f}")


if __name__ == "__main__":
    main()
