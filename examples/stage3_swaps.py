#!/usr/bin/env python3
"""Stage III coordinated swaps: implementing the paper's future work.

Section III-D of the paper exhibits a matching the two-stage algorithm
cannot improve -- seller b and buyer 2 would both gain from a swap, but
executing it needs coordination the protocol lacks ("How to enable such a
swap ... is an interesting topic for future works").

This example runs that exact scenario (our frozen counterexample
instance) and then the Stage III extension, narrating the coordinated
move: the blocking buyer joins, her interfering rival is evicted *and
relocated* to the channel the blocker vacated, and welfare reaches the
optimum the two-stage algorithm provably misses.

Run:  python examples/stage3_swaps.py
"""

from __future__ import annotations

from repro.core.stability import (
    is_nash_stable,
    is_pairwise_stable,
    pairwise_blocking_pairs,
)
from repro.core.swap_extension import coordinated_swaps
from repro.core.two_stage import run_two_stage
from repro.optimal.bruteforce import optimal_matching_bruteforce
from repro.workloads.scenarios import counterexample_market


def show(market, matching, label):
    coalitions = {
        market.channel_names[ch]: sorted(
            market.buyer_names[j] for j in matching.coalition(ch)
        )
        for ch in range(market.num_channels)
    }
    welfare = matching.social_welfare(market.utilities)
    print(f"{label}: {coalitions}  (welfare {welfare:g})")


def main() -> None:
    market = counterexample_market()
    result = run_two_stage(market, record_trace=False)

    print("--- after the paper's two-stage algorithm ---")
    show(market, result.matching, "matching")
    print(f"Nash-stable:     {is_nash_stable(market, result.matching)}")
    print(f"pairwise-stable: {is_pairwise_stable(market, result.matching)}")
    for pair in pairwise_blocking_pairs(market, result.matching):
        print(
            f"blocking pair: seller {market.channel_names[pair.channel]} + "
            f"buyer {market.buyer_names[pair.buyer]} "
            f"(would evict {[market.buyer_names[k] for k in pair.evicted]})"
        )

    print("\n--- Stage III: coordinated swaps ---")
    stage3 = coordinated_swaps(market, result.matching)
    for swap in stage3.swaps:
        evicted = [market.buyer_names[k] for k in swap.evicted]
        relocations = {
            market.buyer_names[j]: (
                market.channel_names[ch] if ch >= 0 else "unmatched"
            )
            for j, ch in swap.relocations
        }
        print(
            f"swap: buyer {market.buyer_names[swap.buyer]} joins seller "
            f"{market.channel_names[swap.channel]}, evicting {evicted}; "
            f"relocations: {relocations} "
            f"(welfare {swap.welfare_before:g} -> {swap.welfare_after:g})"
        )
    show(market, stage3.matching, "matching")
    print(f"Nash-stable:     {is_nash_stable(market, stage3.matching)}")
    print(f"pairwise-stable: {is_pairwise_stable(market, stage3.matching)}")

    optimum = optimal_matching_bruteforce(market)
    print(
        f"\nexhaustive optimum: {optimum.social_welfare(market.utilities):g} "
        f"-- Stage III reached it."
    )


if __name__ == "__main__":
    main()
