#!/usr/bin/env python3
"""Study: how utility-vector similarity shapes the matching outcome.

Reproduces the paper's Section V-B observation in miniature: when buyers'
utility vectors are similar (everyone ranks the channels identically),
they all compete for the same channels and fewer are satisfied; diverse
preferences spread demand and lift welfare.  Uses the paper's sort +
m-permutation manoeuvre with common random numbers so the comparison
isolates the similarity effect.

Run:  python examples/similarity_study.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_simulation_market, run_two_stage
from repro.analysis.reporting import format_table
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.workloads.similarity import average_pairwise_srcc

NUM_BUYERS = 8
NUM_CHANNELS = 5
REPETITIONS = 60


def main() -> None:
    rows = []
    for level in range(NUM_CHANNELS + 1):  # m = 0 (similar) .. M (diverse)
        srccs, proposed, optimal, ratios, matched = [], [], [], [], []
        for rep in range(REPETITIONS):
            # Common random numbers: same deployment per rep across levels.
            rng = np.random.default_rng([42, rep])
            market = paper_simulation_market(
                NUM_BUYERS, NUM_CHANNELS, rng, permutation_level=level
            )
            srccs.append(average_pairwise_srcc(market.utilities))
            result = run_two_stage(market, record_trace=False)
            best = optimal_matching_branch_and_bound(market)
            best_welfare = best.social_welfare(market.utilities)
            proposed.append(result.social_welfare)
            optimal.append(best_welfare)
            ratios.append(
                result.social_welfare / best_welfare if best_welfare else 1.0
            )
            matched.append(result.matching.num_matched())
        rows.append(
            [
                level,
                float(np.mean(srccs)),
                float(np.mean(proposed)),
                float(np.mean(optimal)),
                float(np.mean(ratios)),
                float(np.mean(matched)),
            ]
        )

    print(
        f"similarity sweep: N={NUM_BUYERS}, M={NUM_CHANNELS}, "
        f"{REPETITIONS} repetitions, common random numbers"
    )
    print(
        format_table(
            ["m-perm", "srcc", "proposed", "optimal", "ratio", "matched"],
            rows,
        )
    )
    print(
        "\nreading: m-perm = 0 keeps all buyers' rankings identical "
        "(SRCC 1); larger m decorrelates them.  Diverse utilities "
        "(low SRCC) yield higher welfare -- the paper's 'interesting "
        "finding' -- while the >90%-of-optimal ratio holds throughout."
    )


if __name__ == "__main__":
    main()
