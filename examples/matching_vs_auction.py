#!/usr/bin/env python3
"""Head to head: distributed matching vs. the TRUST double auction.

The paper's thesis is that a free spectrum market can run on *matching*
instead of an auctioneer-run *double auction*.  This example puts both
mechanisms on the same homogeneous market (TRUST's setting: one
interference graph, identical channels) and prints what each side of the
trade-off buys:

* the two-stage matching: no auctioneer, Nash-stable, higher welfare;
* TRUST: dominant-strategy truthful and budget balanced, but it
  sacrifices trades (McAfee) and dilutes group bids (min-bid scaling),
  and someone must run it.

Run:  python examples/matching_vs_auction.py
"""

from __future__ import annotations

import numpy as np

from repro.auction.trust import trust_spectrum_auction
from repro.core.two_stage import run_two_stage
from repro.interference.geometric import disk_interference_graph
from repro.workloads.scenarios import homogeneous_market


def main() -> None:
    rng = np.random.default_rng(1209)
    num_buyers, num_channels = 24, 4
    locations = rng.uniform(0, 10, size=(num_buyers, 2))
    graph = disk_interference_graph(locations, transmission_range=3.0)
    values = rng.random(num_buyers)
    asks = rng.uniform(0.0, 0.2, size=num_channels)

    print(f"market: {num_buyers} buyers, {num_channels} identical channels, "
          f"{graph.num_edges} interference edges")

    # --- mechanism 1: the paper's two-stage matching ------------------------
    market = homogeneous_market(values, graph, num_channels)
    matching = run_two_stage(market, record_trace=False)
    print("\n[matching]  (distributed, Nash-stable, no auctioneer)")
    print(f"  social welfare:   {matching.social_welfare:.4f}")
    print(f"  buyers served:    {matching.matching.num_matched()}/{num_buyers}")

    # --- mechanism 2: TRUST double auction ----------------------------------
    auction = trust_spectrum_auction(values, graph, asks)
    winners = auction.winning_buyers()
    print("\n[TRUST]     (truthful, budget-balanced, auctioneer-run)")
    print(f"  buyer groups:     {len(auction.groups)} "
          f"(sizes {[len(g) for g in auction.groups]})")
    print(f"  social welfare:   {auction.buyer_welfare(values):.4f}")
    print(f"  buyers served:    {len(winners)}/{num_buyers}")
    print(f"  seller revenue:   {sum(auction.seller_revenue):.4f}")
    print(f"  auctioneer keeps: {auction.mcafee.auctioneer_surplus:.4f}")
    print(f"  sacrificed trade: {auction.mcafee.sacrificed}")

    gap = matching.social_welfare - auction.buyer_welfare(values)
    print(f"\nwelfare gap (matching - TRUST): {gap:.4f} "
          f"({gap / matching.social_welfare:.1%} of matching welfare)")
    print("TRUST pays this for truthfulness; matching pays zero but offers "
          "only Nash stability and assumes truthful price reports.")


if __name__ == "__main__":
    main()
