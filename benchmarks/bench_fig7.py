"""Fig. 7 reproduction: cumulative social welfare per stage/phase.

Paper series: social welfare accumulated after Stage I, after Stage II
Phase 1, and after Stage II Phase 2, on large markets -- (a) N = 200..320
at M = 10, (b) M = 4..16 at N = 500, (c) similarity 0..1 at M = 8, N = 300.

Expected shapes (Section V-C): most of the Stage II improvement comes from
Phase 1; Phase 2's contribution is minor (invitation opportunities are
scarce) but the final welfare is weakly higher; welfare grows with buyers
and sellers and falls with similarity.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._shared import print_panel, stage_rows
from repro.core.two_stage import run_two_stage
from repro.workloads.scenarios import paper_simulation_market

SERIES = ["welfare_stage1", "welfare_phase1", "welfare_phase2"]


def _timed_unit(benchmark, num_buyers: int, num_channels: int) -> None:
    market = paper_simulation_market(
        num_buyers, num_channels, np.random.default_rng(998)
    )
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=3,
        iterations=1,
    )


def _assert_cumulative(rows) -> None:
    for row in rows:
        w1 = row.series["welfare_stage1"].mean
        w2 = row.series["welfare_phase1"].mean
        w3 = row.series["welfare_phase2"].mean
        assert w1 <= w2 + 1e-9 <= w3 + 2e-9
        # Phase 1 provides (weakly) more of the Stage-II gain than Phase 2.
        assert (w2 - w1) >= (w3 - w2) - 1e-9


def test_fig7a(benchmark, fig78_reps):
    rows = stage_rows("a", fig78_reps)
    print_panel(
        "Fig. 7(a): cumulative welfare per stage vs buyers (M=10)",
        rows,
        SERIES,
        "buyers",
        notes="paper: ~130->210, Phase 1 contributes most of Stage II",
    )
    _assert_cumulative(rows)
    assert rows[-1].series["welfare_phase2"].mean > rows[0].series[
        "welfare_phase2"
    ].mean
    _timed_unit(benchmark, num_buyers=320, num_channels=10)


def test_fig7b(benchmark, fig78_reps):
    rows = stage_rows("b", fig78_reps)
    print_panel(
        "Fig. 7(b): cumulative welfare per stage vs sellers (N=500)",
        rows,
        SERIES,
        "sellers",
        notes="paper: ~100->380, grows with sellers",
    )
    _assert_cumulative(rows)
    assert rows[-1].series["welfare_phase2"].mean > rows[0].series[
        "welfare_phase2"
    ].mean
    _timed_unit(benchmark, num_buyers=500, num_channels=16)


def test_fig7c(benchmark, fig78_reps):
    rows = stage_rows("c", fig78_reps)
    print_panel(
        "Fig. 7(c): cumulative welfare per stage vs similarity (M=8, N=300)",
        rows,
        SERIES,
        "similarity",
        include_srcc=True,
        notes=(
            "paper: welfare falls as similarity rises. Reproduced shape: the\n"
            "effect is strong at Fig-6 scale (N/M ~ 1.6) but WEAK at this\n"
            "N/M = 37.5 scale -- dense spatial reuse absorbs preference\n"
            "concentration; see EXPERIMENTS.md for the full discussion."
        ),
    )
    _assert_cumulative(rows)
    # Weak-form similarity effect at this scale: fully similar utilities
    # never maximise welfare over the sweep.
    final = [row.series["welfare_phase2"].mean for row in rows]
    assert final[-1] < max(final)
    _timed_unit(benchmark, num_buyers=300, num_channels=8)
