"""Physical-level ablation: multi-demand pressure on the market.

The paper's evaluation is virtual-level; this bench asks the question a
physical provider cares about: *how much of my multi-channel demand gets
satisfied as demand multiplicity grows?*  Markets with fixed channel
supply are generated with increasing per-buyer demand caps; the dummy
expansion then produces ever more virtual buyers contending for the same
channels -- with the clone cliques (a buyer must not receive one channel
twice) binding harder.

Expected shape: mean satisfaction decreases as max demand grows while
total welfare still rises (more demand = more value to harvest), and the
algorithm's guarantees are untouched.  Note the instructive non-result:
a *random* feasible assignment can serve a comparable COUNT of clones --
filling seats is easy; the matching's edge is in WELFARE (whom it seats),
which is also asserted below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import demand_satisfaction
from repro.analysis.reporting import format_table
from repro.core.stability import is_nash_stable
from repro.core.two_stage import run_two_stage
from repro.optimal.random_baseline import random_matching
from repro.workloads.physical import random_physical_market


def test_demand_multiplicity_sweep(benchmark):
    num_sellers, num_buyers = 3, 8
    reps = 8
    rows = []
    means = []
    for max_demand in (1, 2, 3, 4):
        satisfaction_total = 0.0
        random_total = 0.0
        welfare_total = 0.0
        random_welfare_total = 0.0
        stable = True
        for seed in range(reps):
            market = random_physical_market(
                num_sellers,
                num_buyers,
                np.random.default_rng([750, max_demand, seed]),
                max_channels_per_seller=2,
                max_demand=max_demand,
            )
            result = run_two_stage(market, record_trace=False)
            fractions = demand_satisfaction(market, result.matching)
            satisfaction_total += float(np.mean(list(fractions.values())))
            welfare_total += result.social_welfare
            stable &= is_nash_stable(market, result.matching)
            baseline = random_matching(
                market, np.random.default_rng([751, max_demand, seed])
            )
            random_fracs = demand_satisfaction(market, baseline)
            random_total += float(np.mean(list(random_fracs.values())))
            random_welfare_total += baseline.social_welfare(market.utilities)
        assert stable
        mean_satisfaction = satisfaction_total / reps
        means.append(mean_satisfaction)
        rows.append(
            [
                max_demand,
                mean_satisfaction,
                random_total / reps,
                welfare_total / reps,
                random_welfare_total / reps,
            ]
        )

    print()
    print(
        f"== Demand-multiplicity sweep (I={num_sellers} sellers x <=2 "
        f"channels, J={num_buyers} buyers, {reps} reps) =="
    )
    print(
        format_table(
            [
                "max demand",
                "matching satisfaction",
                "random satisfaction",
                "matching welfare",
                "random welfare",
            ],
            rows,
        )
    )

    # More demanded channels per buyer -> lower satisfaction fractions...
    assert means[0] > means[-1]
    # ...while total harvested welfare still grows with demand.
    welfares = [row[3] for row in rows]
    assert welfares == sorted(welfares)
    # Seat-filling is easy (random ties on COUNT); value placement is not:
    # matching beats random on WELFARE at every multiplicity above 1.
    for row in rows[1:]:
        assert row[3] > row[4]

    market = random_physical_market(
        num_sellers, num_buyers, np.random.default_rng(752), max_demand=3
    )
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=5,
        iterations=1,
    )
