"""Strategic-robustness ablation: matching vs auction truthfulness.

The paper assumes buyers report ``b_{i,j}`` honestly.  This bench
measures what that assumption is worth: a finite misreport portfolio
(price inflation/deflation, channel concentration, rank swaps, random
vectors) is searched per buyer for strictly profitable lies under the
two-stage matching, and -- as the control -- under the TRUST double
auction, whose dominant-strategy truthfulness means the same search must
come up empty.

Expected shape: matching is manipulable for a nontrivial minority of
buyers (price inflation is free because the mechanism collects no
payments); TRUST admits zero profitable lies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.manipulation import find_profitable_misreport, manipulability_rate
from repro.analysis.reporting import format_table
from repro.auction.trust import trust_spectrum_auction
from repro.workloads.scenarios import paper_simulation_market


def test_matching_manipulability(benchmark):
    markets = [
        paper_simulation_market(10, 3, np.random.default_rng([690, s]))
        for s in range(6)
    ]
    rate, found, total = manipulability_rate(
        markets, np.random.default_rng(7), num_random=6
    )
    gains = []
    for market in markets[:2]:
        for buyer in range(market.num_buyers):
            result = find_profitable_misreport(
                market, buyer, np.random.default_rng(8), num_random=6
            )
            if result.profitable:
                gains.append(result.gain)
    print()
    print("== Manipulability of the two-stage matching ==")
    print(
        format_table(
            ["metric", "value"],
            [
                ["(market, buyer) pairs searched", total],
                ["profitable lies found", found],
                ["manipulability rate (lower bound)", rate],
                ["mean gain when profitable", float(np.mean(gains)) if gains else 0.0],
            ],
        )
    )
    # The mechanism is NOT truthful -- the paper's implicit assumption is
    # substantive.
    assert found > 0
    # But manipulation is not ubiquitous either on random markets.
    assert rate < 0.5

    market = markets[0]
    benchmark.pedantic(
        lambda: find_profitable_misreport(
            market, 0, np.random.default_rng(9), num_random=6
        ),
        rounds=3,
        iterations=1,
    )


def test_trust_control_admits_no_lies(benchmark):
    """The same misreport search against TRUST must find nothing."""
    rng = np.random.default_rng(695)
    found = 0
    total = 0
    for seed in range(6):
        instance_rng = np.random.default_rng([696, seed])
        num_buyers = 12
        from repro.interference.generators import random_gnp_graph

        graph = random_gnp_graph(num_buyers, 0.3, instance_rng)
        values = instance_rng.random(num_buyers)
        asks = instance_rng.uniform(0.0, 0.3, size=4)
        truthful = trust_spectrum_auction(values, graph, asks)
        for buyer in range(num_buyers):
            total += 1
            true_value = values[buyer]
            base = truthful.buyer_utility(buyer, true_value)
            for lie in (
                0.0,
                true_value * 0.5,
                true_value * 2.0,
                true_value * 4.0,
                float(rng.random()),
            ):
                reports = list(values)
                reports[buyer] = lie
                deviated = trust_spectrum_auction(reports, graph, asks)
                if deviated.buyer_utility(buyer, true_value) > base + 1e-9:
                    found += 1
                    break
    print()
    print("== Control: the same search against TRUST ==")
    print(
        format_table(
            ["metric", "value"],
            [["buyers searched", total], ["profitable lies found", found]],
        )
    )
    assert found == 0  # dominant-strategy truthfulness, empirically

    graph = random_gnp_graph(12, 0.3, np.random.default_rng(697))
    values = np.random.default_rng(698).random(12)
    benchmark.pedantic(
        lambda: trust_spectrum_auction(values, graph, [0.1, 0.2, 0.1, 0.0]),
        rounds=5,
        iterations=1,
    )
