"""Fig. 6 reproduction: optimal matching vs the proposed algorithm.

Paper series: social welfare of (i) the centralised optimal matching and
(ii) the proposed two-stage distributed algorithm, on small markets --
(a) sweeping the number of buyers at M = 4, (b) sweeping the number of
sellers at N = 8, (c) sweeping price similarity at M = 5, N = 8.

Expected shapes (paper Section V-B): the proposed algorithm attains > 90 %
of the optimal social welfare throughout; welfare grows with buyers and
sellers; welfare falls as buyers' utility vectors become more similar.
Each test asserts the shape and prints the regenerated rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._shared import print_panel
from repro.analysis.paper_figures import figure_spec, run_figure
from repro.core.two_stage import run_two_stage
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.workloads.scenarios import paper_simulation_market

SERIES = ["welfare_proposed", "welfare_optimal", "welfare_ratio"]


def _timed_unit(benchmark, num_buyers: int, num_channels: int) -> None:
    """Register one proposed-vs-optimal evaluation as the timed unit."""
    market = paper_simulation_market(
        num_buyers, num_channels, np.random.default_rng(999)
    )

    def unit():
        result = run_two_stage(market, record_trace=False)
        optimal = optimal_matching_branch_and_bound(market)
        return result.social_welfare, optimal.social_welfare(market.utilities)

    benchmark.pedantic(unit, rounds=3, iterations=1)


def test_fig6a(benchmark, fig6_reps):
    spec = figure_spec(6, "a")
    rows = run_figure(spec, repetitions=fig6_reps)
    print_panel(
        "Fig. 6(a): welfare vs number of buyers (M=4)",
        rows,
        SERIES,
        "buyers",
        notes="paper: optimal ~4.5->7.5, proposed within 90%",
    )
    # Shape assertions: >90% of optimal everywhere, welfare grows with N.
    for row in rows:
        assert row.series["welfare_ratio"].mean > 0.90
    assert rows[-1].series["welfare_proposed"].mean > rows[0].series[
        "welfare_proposed"
    ].mean
    _timed_unit(benchmark, num_buyers=10, num_channels=4)


def test_fig6b(benchmark, fig6_reps):
    spec = figure_spec(6, "b")
    rows = run_figure(spec, repetitions=fig6_reps)
    print_panel(
        "Fig. 6(b): welfare vs number of sellers (N=8)",
        rows,
        SERIES,
        "sellers",
        notes="paper: optimal ~3.5->6.5, proposed within 90%",
    )
    for row in rows:
        assert row.series["welfare_ratio"].mean > 0.90
    assert rows[-1].series["welfare_proposed"].mean > rows[0].series[
        "welfare_proposed"
    ].mean
    _timed_unit(benchmark, num_buyers=8, num_channels=6)


def test_fig6c(benchmark, fig6_reps):
    spec = figure_spec(6, "c")
    rows = run_figure(spec, repetitions=fig6_reps)
    print_panel(
        "Fig. 6(c): welfare vs price similarity (M=5, N=8)",
        rows,
        SERIES,
        "similarity",
        include_srcc=True,
        notes="paper: welfare decreases as similarity -> 1; proposed within 90%",
    )
    for row in rows:
        assert row.series["welfare_ratio"].mean > 0.90
    # Diverse utilities (similarity 0) beat similar ones (similarity 1).
    assert rows[0].series["welfare_proposed"].mean > rows[-1].series[
        "welfare_proposed"
    ].mean
    _timed_unit(benchmark, num_buyers=8, num_channels=5)
