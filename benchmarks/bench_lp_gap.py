"""Optimality gap at scale: what the paper could not measure.

The paper's optimal-matching baseline is brute force (footnote 4), so
Fig. 6's >90 %-of-optimal claim stops at N = 10 buyers.  The LP
relaxation gives a polynomial *upper bound* on the optimum at any scale,
enabling two measurements the paper omits:

1. **Calibration (small scale)** -- how loose is the LP bound where the
   exact optimum is computable?  On dense disk-model graphs the
   fractional relaxation packs half-buyers onto odd structures, so
   `exact/LP < 1`; measuring it tells us how to read the large-scale
   numbers.
2. **Large scale** -- two-stage welfare over the LP bound at Fig. 7
   sizes.  Combined with the calibration, this brackets the true
   optimality ratio far beyond brute-force reach.

Reading the output: if exact/LP ~= r at small scale, a large-scale
two-stage/LP of x suggests a true optimality ratio of roughly x / r.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.two_stage import run_two_stage
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.lp_relaxation import lp_relaxation_bound
from repro.workloads.scenarios import paper_simulation_market


def test_lp_calibration_small_scale(benchmark):
    reps = 15
    exact_over_lp = []
    two_stage_over_lp = []
    two_stage_over_exact = []
    for seed in range(reps):
        market = paper_simulation_market(8, 4, np.random.default_rng([760, seed]))
        bound = lp_relaxation_bound(market)
        exact = optimal_matching_branch_and_bound(market).social_welfare(
            market.utilities
        )
        result = run_two_stage(market, record_trace=False)
        if bound > 0:
            exact_over_lp.append(exact / bound)
            two_stage_over_lp.append(result.social_welfare / bound)
        if exact > 0:
            two_stage_over_exact.append(result.social_welfare / exact)
    rows = [
        ["exact / LP bound", float(np.mean(exact_over_lp))],
        ["two-stage / LP bound", float(np.mean(two_stage_over_lp))],
        ["two-stage / exact", float(np.mean(two_stage_over_exact))],
    ]
    print()
    print(f"== LP-bound calibration (N=8, M=4, {reps} reps) ==")
    print(format_table(["ratio", "mean"], rows))

    # Sandwich: two-stage <= exact <= LP.
    assert np.mean(two_stage_over_lp) <= np.mean(exact_over_lp) + 1e-9
    assert np.mean(two_stage_over_exact) > 0.9  # the paper's headline

    market = paper_simulation_market(8, 4, np.random.default_rng(761))
    benchmark.pedantic(lambda: lp_relaxation_bound(market), rounds=5, iterations=1)


def test_lp_gap_at_figure7_scale(benchmark):
    """Two-stage vs the LP bound where brute force cannot follow."""
    reps = 3
    rows = []
    for n, m in ((100, 8), (200, 10), (300, 10)):
        ratios = []
        for seed in range(reps):
            market = paper_simulation_market(
                n, m, np.random.default_rng([762, n, seed])
            )
            bound = lp_relaxation_bound(market)
            result = run_two_stage(market, record_trace=False)
            ratios.append(result.social_welfare / bound if bound > 0 else 1.0)
        rows.append([f"N={n}, M={m}", float(np.mean(ratios))])
    print()
    print("== Two-stage / LP upper bound at Fig. 7 scale ==")
    print(format_table(["market", "mean ratio"], rows))
    print(
        "note: at small scale the LP bound is nearly tight (exact/LP ~\n"
        "0.998 in the calibration above), so most of the shortfall here is\n"
        "a REAL optimality gap -- the paper's >90%-of-optimal, measured\n"
        "only at N <= 10, does not simply extrapolate to Fig. 7 sizes\n"
        "(though LP looseness itself may also grow with density)."
    )

    # The guaranteed floor: the algorithm is provably within the bound,
    # and empirically keeps a solid fraction of it even at scale.
    for _, ratio in rows:
        assert 0.5 < ratio <= 1.0 + 1e-9

    market = paper_simulation_market(300, 10, np.random.default_rng(763))
    benchmark.pedantic(lambda: lp_relaxation_bound(market), rounds=3, iterations=1)
