"""Engine scalability beyond the paper's largest configuration.

The paper stops at N = 500 buyers.  This bench pushes the centralised
two-stage engine to N = 2000 on the paper's dense 10x10 geometry and
reports wall-clock time and rounds, verifying the O(MN) convergence
bound stays comfortable in practice (the observed round counts are far
below MN -- they track M, as Fig. 8 suggests).

Beyond that, the constant-density sparse scenario
(:func:`~repro.workloads.scenarios.sparse_simulation_market`, KD-tree
interference graphs, O(E) memory) carries the engine to the virtual-
buyer counts True-MCSA-style grouping produces: a CI-sized N = 10k
smoke runs always; the N = 50k-100k tier is opt-in via
``SPECTRUM_BENCH_LARGE=1`` (it needs minutes and a few GB).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.deferred_acceptance import deferred_acceptance
from repro.core.two_stage import run_two_stage
from repro.workloads.scenarios import (
    paper_simulation_market,
    sparse_simulation_market,
)

SIZES = [(200, 10), (500, 10), (1000, 10), (2000, 20)]

#: Constant-density tier (buyers, channels): CI smoke + opt-in large.
SPARSE_SMOKE_SIZE = (10_000, 10)
LARGE_SIZES = [(50_000, 20), (100_000, 20)]

#: Set to ``1`` to run the N = 50k-100k tier.
LARGE_BENCH_ENV = "SPECTRUM_BENCH_LARGE"


def test_scalability(benchmark):
    rows = []
    for num_buyers, num_channels in SIZES:
        market = paper_simulation_market(
            num_buyers, num_channels, np.random.default_rng([700, num_buyers])
        )
        start = time.perf_counter()
        result = run_two_stage(market, record_trace=False)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                f"N={num_buyers}, M={num_channels}",
                elapsed,
                result.rounds_stage1,
                result.rounds_phase1,
                result.rounds_phase2,
                result.social_welfare,
            ]
        )
        # Convergence bound (Propositions 1-2) with huge headroom.
        assert result.rounds_stage1 <= num_buyers * num_channels
        assert result.rounds_phase1 <= num_channels

    print()
    print("== Two-stage engine scalability ==")
    print(
        format_table(
            ["market", "seconds", "stage1", "phase1", "phase2", "welfare"],
            rows,
        )
    )
    # The whole sweep should be interactive-speed.
    assert sum(row[1] for row in rows) < 60.0

    market = paper_simulation_market(1000, 10, np.random.default_rng(701))
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=3,
        iterations=1,
    )


def test_sparse_market_smoke():
    """CI-sized constant-density market through the full two-stage run."""
    num_buyers, num_channels = SPARSE_SMOKE_SIZE
    build_start = time.perf_counter()
    market = sparse_simulation_market(
        num_buyers, num_channels, np.random.default_rng([9, num_buyers])
    )
    build_s = time.perf_counter() - build_start
    start = time.perf_counter()
    result = run_two_stage(market, record_trace=False)
    elapsed = time.perf_counter() - start
    assert result.rounds_stage1 <= num_buyers * num_channels
    assert result.social_welfare > 0.0
    print(
        f"\nN={num_buyers} sparse: build {build_s:.2f}s, "
        f"two-stage {elapsed:.2f}s, welfare {result.social_welfare:.1f}"
    )
    # Keep CI honest: the sparse path must stay interactive-speed.
    assert elapsed < 60.0


@pytest.mark.skipif(
    os.environ.get(LARGE_BENCH_ENV, "0") != "1",
    reason=f"set {LARGE_BENCH_ENV}=1 to run the N=50k-100k tier",
)
def test_large_market_scalability():
    """Stage I at N = 50k-100k virtual buyers (constant-density sparse)."""
    rows = []
    for num_buyers, num_channels in LARGE_SIZES:
        market = sparse_simulation_market(
            num_buyers, num_channels, np.random.default_rng([9, num_buyers])
        )
        start = time.perf_counter()
        result = deferred_acceptance(market, record_trace=False)
        elapsed = time.perf_counter() - start
        assert result.num_rounds <= num_buyers * num_channels
        rows.append(
            [
                f"N={num_buyers}, M={num_channels}",
                elapsed,
                result.num_rounds,
                result.total_proposals,
                result.matching.num_matched(),
            ]
        )
    print()
    print("== Stage I at virtual-buyer scale ==")
    print(
        format_table(
            ["market", "seconds", "rounds", "proposals", "matched"], rows
        )
    )
