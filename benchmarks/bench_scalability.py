"""Engine scalability beyond the paper's largest configuration.

The paper stops at N = 500 buyers.  This bench pushes the centralised
two-stage engine to N = 2000 and reports wall-clock time and rounds,
verifying the O(MN) convergence bound stays comfortable in practice (the
observed round counts are far below MN -- they track M, as Fig. 8
suggests).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.two_stage import run_two_stage
from repro.workloads.scenarios import paper_simulation_market

SIZES = [(200, 10), (500, 10), (1000, 10), (2000, 20)]


def test_scalability(benchmark):
    rows = []
    for num_buyers, num_channels in SIZES:
        market = paper_simulation_market(
            num_buyers, num_channels, np.random.default_rng([700, num_buyers])
        )
        start = time.perf_counter()
        result = run_two_stage(market, record_trace=False)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                f"N={num_buyers}, M={num_channels}",
                elapsed,
                result.rounds_stage1,
                result.rounds_phase1,
                result.rounds_phase2,
                result.social_welfare,
            ]
        )
        # Convergence bound (Propositions 1-2) with huge headroom.
        assert result.rounds_stage1 <= num_buyers * num_channels
        assert result.rounds_phase1 <= num_channels

    print()
    print("== Two-stage engine scalability ==")
    print(
        format_table(
            ["market", "seconds", "stage1", "phase1", "phase2", "welfare"],
            rows,
        )
    )
    # The whole sweep should be interactive-speed.
    assert sum(row[1] for row in rows) < 60.0

    market = paper_simulation_market(1000, 10, np.random.default_rng(701))
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=3,
        iterations=1,
    )
