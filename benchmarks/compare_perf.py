"""Compare a fresh perf-harness run against the committed baselines.

Usage::

    python benchmarks/compare_perf.py CURRENT_DIR [--baseline-dir DIR]
                                      [--threshold 0.25] [--ratios-only]

Reads every ``BENCH_*.json`` present in both directories and fails
(exit 1) when the current run regresses:

* absolute mode (default): any ``median_s`` more than ``threshold``
  slower than its baseline counterpart fails.  Use this on the machine
  that produced the baseline.
* ``--ratios-only``: only the machine-independent *ratios* are checked
  (kernel ``speedup`` must not shrink by more than ``threshold``; the
  registry dispatch ``overhead`` must stay under its absolute 1.02x
  ceiling; ``identical_matching`` / ``identical_rows`` must still
  hold).  Use this in CI, where the runner's absolute speed differs
  from the machine that committed the baselines.

In both modes the sweep report must show ``parallel_speedup > 1``
whenever the *current* run's ``env.cpu_count`` is greater than one
(:func:`check_parallel_speedup`): with persistent pools and
shared-memory task inputs the parallel path has no excuse to lose to
serial on a multi-core machine.  Single-core runners skip the rule --
there a speedup above 1 is physically impossible.

Failures *explain themselves*.  A failing kernels report is followed by
an attribution diff of the harness's span tables and deterministic cost
counters: counter drift means the two runs executed different operation
sequences (an algorithmic change), counters flat while wall time moved
means the machine -- not the code -- changed speed.  Every timing
failure line carries the run's ``env.cpu_count`` and sample spread, a
spread above :data:`SPREAD_WARN` of the median draws a warning even
when nothing fails, and the noise-floor guard downgrades a median
regression to a warning when the sample's *minimum* still fits under
the ceiling on a high-spread run (the machine demonstrably can still go
that fast; rerun rather than red-flag).

This script stays stdlib-only and importable without the repro package
on the path: CI runs it as a standalone gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: (report file, dotted path) pairs of the absolute timings to guard.
_MEDIAN_PATHS = {
    "BENCH_kernels.json": ("fast.median_s", "reference.median_s"),
    "BENCH_sweep.json": ("serial.median_s", "parallel.median_s"),
    "BENCH_dispatch.json": ("direct.median_s", "dispatch.median_s"),
}

#: Ratio keys that must not shrink, and boolean keys that must hold.
_RATIO_KEYS = {
    "BENCH_kernels.json": "speedup",
    "BENCH_sweep.json": None,
    "BENCH_dispatch.json": None,
}
_INVARIANT_KEYS = {
    "BENCH_kernels.json": "identical_matching",
    "BENCH_sweep.json": "identical_rows",
    "BENCH_dispatch.json": "identical_matching",
}

#: Ratio keys with a hard absolute ceiling (checked even in --ratios-only
#: mode): the engine registry must not add more than 2% dispatch overhead
#: over calling the backend directly.
_MAX_RATIO_KEYS = {"BENCH_dispatch.json": ("overhead", 1.02)}

#: Sides of the kernels report carrying span tables and cost counters.
_ATTRIBUTED_SIDES = ("fast", "scalar", "reference")

#: Sample spread (``(max - min) / median`` of the timed runs) above
#: which the current run's timings are flagged as noisy.
SPREAD_WARN = 0.15

#: Ratchet on the committed sweep baseline's recorded environment: a
#: regenerated BENCH_sweep.json must come from a machine with at least
#: this many cores.  The current baselines were produced on a
#: single-core container (env.cpu_count == 1, where the
#: ``parallel_speedup > 1`` rule is physically unsatisfiable and skips),
#: so the ratchet starts at 1.  The day a multi-core baseline lands,
#: bump this to 2: from then on any regeneration that silently degrades
#: back to single-core env metadata fails the gate instead of quietly
#: re-disabling the speedup rule.
REQUIRED_BASELINE_CPUS = 1


def check_baseline_env(
    baseline: Dict[str, object],
    required_cpus: int = REQUIRED_BASELINE_CPUS,
) -> Optional[str]:
    """Guard the *baseline* sweep report's environment metadata.

    Returns a failure line when the committed baseline lacks an ``env``
    block, does not record ``cpu_count``, or was produced on fewer than
    ``required_cpus`` cores -- i.e. when a regeneration regressed the
    baseline to an environment where the multi-core
    ``parallel_speedup`` rule cannot engage.  Returns ``None`` when the
    metadata holds.
    """
    env = baseline.get("env")
    if not isinstance(env, dict) or "cpu_count" not in env:
        return (
            "BENCH_sweep.json: baseline has no env.cpu_count record "
            "(regenerate with benchmarks/perf_harness.py)"
        )
    try:
        cpu_count = int(env["cpu_count"])
    except (TypeError, ValueError):
        return (
            f"BENCH_sweep.json: baseline env.cpu_count "
            f"{env['cpu_count']!r} is not an integer"
        )
    if cpu_count < required_cpus:
        return (
            f"BENCH_sweep.json: baseline env.cpu_count {cpu_count} is "
            f"below the required {required_cpus} (baseline regenerated "
            f"on a weaker machine; the parallel_speedup rule would "
            f"silently stop engaging)"
        )
    return None


def check_parallel_speedup(current: Dict[str, object]) -> Optional[str]:
    """Gate the sweep report's ``parallel_speedup`` on multi-core hosts.

    Returns a failure line when the current run was produced on a
    multi-core machine (``env.cpu_count > 1``) yet its parallel sweep
    failed to beat serial (``parallel_speedup <= 1``).  Returns ``None``
    -- rule satisfied or not applicable -- on single-core runners,
    where beating serial is impossible and the rule must skip cleanly.
    Only the *current* run's environment matters; the committed
    baseline may come from a very different machine.
    """
    env = current.get("env")
    cpu_count = 0
    if isinstance(env, dict):
        try:
            cpu_count = int(env.get("cpu_count") or 0)
        except (TypeError, ValueError):
            cpu_count = 0
    if cpu_count <= 1:
        return None
    try:
        speedup = float(current.get("parallel_speedup"))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return (
            f"BENCH_sweep.json: parallel_speedup missing on a "
            f"{cpu_count}-core machine"
        )
    if speedup <= 1.0:
        return (
            f"BENCH_sweep.json: parallel_speedup {speedup:.2f}x <= 1.00x "
            f"on a {cpu_count}-core machine (jobs should win)"
        )
    return None


def _load(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _dig(report: Dict[str, object], dotted: str) -> float:
    node: object = report
    for key in dotted.split("."):
        node = node[key]  # type: ignore[index]
    return float(node)  # type: ignore[arg-type]


def _side_block(report: Dict[str, object], dotted: str) -> Dict[str, object]:
    """The dict holding a dotted timing, e.g. ``fast`` of ``fast.median_s``."""
    block = report.get(dotted.split(".")[0])
    return block if isinstance(block, dict) else {}


def sample_spread(block: Dict[str, object]) -> Optional[float]:
    """``(max - min) / median`` of a timed side's samples, if recorded."""
    times = block.get("times_s")
    median = block.get("median_s")
    if not isinstance(times, list) or len(times) < 2 or not median:
        return None
    return (max(times) - min(times)) / float(median)


def _env_cpu_count(report: Dict[str, object]) -> Optional[int]:
    env = report.get("env")
    if isinstance(env, dict):
        try:
            return int(env.get("cpu_count"))  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
    return None


def attribution_lines(
    baseline: Dict[str, object], current: Dict[str, object]
) -> List[str]:
    """Explain a kernels-report failure from its spans and counters.

    For each benchmark side, compares the deterministic cost counters
    first -- drift there is an algorithmic difference no amount of
    machine variation can produce -- and falls back to naming the span
    phases whose wall time moved while the counters stayed flat, the
    signature of environment noise.
    """
    lines: List[str] = []
    saw_data = False
    for side in _ATTRIBUTED_SIDES:
        base_side = baseline.get(side)
        cur_side = current.get(side)
        if not isinstance(base_side, dict) or not isinstance(cur_side, dict):
            continue
        base_counters = base_side.get("counters")
        cur_counters = cur_side.get("counters")
        if not isinstance(base_counters, dict) or not isinstance(
            cur_counters, dict
        ):
            continue
        saw_data = True
        drifted: List[str] = []
        for counter in sorted(set(base_counters) | set(cur_counters)):
            base_value = int(base_counters.get(counter, 0))
            cur_value = int(cur_counters.get(counter, 0))
            if base_value != cur_value:
                ratio = (
                    f"{cur_value / base_value:.2f}x" if base_value else "new"
                )
                drifted.append(
                    f"{counter} {base_value} -> {cur_value} ({ratio})"
                )
        moved: List[str] = []
        base_spans = {
            row["name"]: float(row["wall_s"])
            for row in base_side.get("spans", [])
            if isinstance(row, dict)
        }
        cur_spans = {
            row["name"]: float(row["wall_s"])
            for row in cur_side.get("spans", [])
            if isinstance(row, dict)
        }
        for span in sorted(set(base_spans) | set(cur_spans)):
            base_wall = base_spans.get(span, 0.0)
            cur_wall = cur_spans.get(span, 0.0)
            if base_wall > 0.0 and abs(cur_wall / base_wall - 1.0) >= 0.10:
                moved.append(f"{span} {cur_wall / base_wall - 1.0:+.0%}")
        if drifted:
            lines.append(
                f"  attribution[{side}]: counter drift "
                + "; ".join(drifted[:4])
                + " -- algorithmic regression, not machine noise"
            )
        elif moved:
            lines.append(
                f"  attribution[{side}]: "
                + ", ".join(moved[:4])
                + " moved while deterministic counters stayed flat "
                + "-- environment noise, not an algorithmic change"
            )
        else:
            lines.append(
                f"  attribution[{side}]: counters flat and no span moved "
                f">=10% -- nothing to attribute"
            )
    if not saw_data:
        lines.append(
            "  attribution unavailable: baseline or current report "
            "predates span/counter capture (regenerate with "
            "benchmarks/perf_harness.py)"
        )
    return lines


def _check_report(
    name: str,
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float,
    ratios_only: bool,
) -> Tuple[List[str], List[str]]:
    """Return (failure lines, warning lines) for one report pair."""
    failures: List[str] = []
    warnings: List[str] = []
    invariant = _INVARIANT_KEYS.get(name)
    if invariant is not None and not current.get(invariant, False):
        failures.append(f"{name}: invariant {invariant!r} is no longer true")
    ratio_key = _RATIO_KEYS.get(name)
    if ratio_key is not None:
        base_ratio = float(baseline[ratio_key])
        cur_ratio = float(current[ratio_key])
        floor = base_ratio * (1.0 - threshold)
        if cur_ratio < floor:
            failures.append(
                f"{name}: {ratio_key} fell {base_ratio:.2f}x -> "
                f"{cur_ratio:.2f}x (floor {floor:.2f}x)"
            )
    if name == "BENCH_sweep.json":
        parallel_failure = check_parallel_speedup(current)
        if parallel_failure is not None:
            failures.append(parallel_failure)
        env_failure = check_baseline_env(baseline)
        if env_failure is not None:
            failures.append(env_failure)
    max_ratio = _MAX_RATIO_KEYS.get(name)
    if max_ratio is not None:
        key, ceiling = max_ratio
        cur_ratio = float(current[key])
        if cur_ratio > ceiling:
            failures.append(
                f"{name}: {key} {cur_ratio:.3f}x exceeds the "
                f"{ceiling:.2f}x ceiling"
            )
    cpu_count = _env_cpu_count(current)
    cpu_text = "?" if cpu_count is None else str(cpu_count)
    if not ratios_only:
        for dotted in _MEDIAN_PATHS.get(name, ()):
            base_s = _dig(baseline, dotted)
            cur_s = _dig(current, dotted)
            ceiling = base_s * (1.0 + threshold)
            cur_block = _side_block(current, dotted)
            spread = sample_spread(cur_block)
            spread_text = "n/a" if spread is None else f"{spread:.0%}"
            if spread is not None and spread > SPREAD_WARN:
                warnings.append(
                    f"{name}: {dotted.split('.')[0]} sample spread "
                    f"{spread:.0%} of median exceeds {SPREAD_WARN:.0%} -- "
                    f"this run's timings are noisy"
                )
            if cur_s <= ceiling:
                continue
            line = (
                f"{name}: {dotted} regressed {base_s:.4f}s -> {cur_s:.4f}s "
                f"(ceiling {ceiling:.4f}s, "
                f"+{(cur_s / base_s - 1) * 100:.0f}%; "
                f"env.cpu_count={cpu_text}, spread {spread_text})"
            )
            cur_min = cur_block.get("min_s")
            if (
                isinstance(cur_min, (int, float))
                and float(cur_min) <= ceiling
                and spread is not None
                and spread > SPREAD_WARN
            ):
                # Noise-floor guard: the machine demonstrably still
                # reaches the old speed; a regressed *median* on a
                # high-spread sample is scheduler noise until a rerun
                # reproduces it.
                warnings.append(
                    line
                    + f" -- noise-floor guard: min_s {float(cur_min):.4f}s "
                    f"is within the ceiling on a high-spread sample; "
                    f"not failing, rerun to confirm"
                )
            else:
                failures.append(line)
    if failures and name == "BENCH_kernels.json":
        failures.extend(attribution_lines(baseline, current))
    return failures, warnings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current_dir", help="directory with the fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default=BASELINE_DIR)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    parser.add_argument(
        "--ratios-only",
        action="store_true",
        help="check machine-independent ratios/invariants only (CI mode)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    warnings: List[str] = []
    compared = 0
    for name in sorted(_MEDIAN_PATHS):
        base_path = os.path.join(args.baseline_dir, name)
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(base_path) or not os.path.exists(cur_path):
            continue
        compared += 1
        report_failures, report_warnings = _check_report(
            name,
            _load(base_path),
            _load(cur_path),
            args.threshold,
            args.ratios_only,
        )
        failures.extend(report_failures)
        warnings.extend(report_warnings)
    if not compared:
        print("compare_perf: no overlapping BENCH_*.json reports found", file=sys.stderr)
        return 2
    for line in warnings:
        print(f"WARNING {line}")
    if failures:
        for line in failures:
            print(f"REGRESSION {line}")
        return 1
    mode = "ratios-only" if args.ratios_only else f"threshold {args.threshold:.0%}"
    print(f"compare_perf: {compared} report(s) within bounds ({mode})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
