"""Benchmark-suite configuration.

The benchmark modules reproduce the *series* behind every figure in the
paper's evaluation (Section V): each test executes the experiment once,
prints the same rows the paper plots (so ``pytest benchmarks/
--benchmark-only -s`` doubles as the reproduction script), and registers a
representative timed unit with pytest-benchmark.

Repetition counts are chosen so the full benchmark suite finishes in a few
minutes; the canonical (larger) repetition counts live in
``repro.analysis.paper_figures`` and are used by the CLI.
"""

from __future__ import annotations

import pytest

#: Monte-Carlo repetitions per sweep point used by the benches (the CLI
#: default is larger; see FigureSpec.default_repetitions).
BENCH_REPETITIONS_FIG6 = 40
BENCH_REPETITIONS_FIG78 = 5


@pytest.fixture(scope="session")
def fig6_reps() -> int:
    return BENCH_REPETITIONS_FIG6


@pytest.fixture(scope="session")
def fig78_reps() -> int:
    return BENCH_REPETITIONS_FIG78
