"""Combinatorial-valuation ablation (footnote-1 future work).

The matching algorithm prices bundles additively.  This bench quantifies
what that proxy costs when the *true* valuations are non-additive:
multi-demand physical markets are matched with the two-stage algorithm
(which only sees the additive per-channel prices), then re-scored under
substitutes / complements truth and compared to the exact combinatorial
optimum.

Expected shape: the proxy is exactly optimal for additive truth, stays
close under substitutes (losses come from over-acquiring discounted
channels), and leaves the most value on the table under complements
(synergy would justify concentrating channels, which the proxy cannot
express).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.market import PhysicalBuyer, PhysicalSeller, SpectrumMarket
from repro.core.two_stage import run_two_stage
from repro.core.valuations import (
    AdditiveValuation,
    ComplementsValuation,
    SubstitutesValuation,
    combinatorial_optimal_welfare,
    physical_welfare,
)
from repro.workloads.deployment import random_deployment


def _physical_market(seed):
    rng = np.random.default_rng(seed)
    sellers = [PhysicalSeller(name="s", num_channels=3)]
    demands = [2, 2, 1]
    buyers = [
        PhysicalBuyer(
            name=f"b{idx}",
            num_requested=demand,
            utilities=tuple(rng.random(3)),
        )
        for idx, demand in enumerate(demands)
    ]
    deployment = random_deployment(sum(demands), 3, rng)
    market = SpectrumMarket.from_physical(
        sellers, buyers, deployment.interference_map()
    )
    return market, buyers


def _valuation_family(buyers, kind):
    if kind == "additive":
        return [AdditiveValuation(b.utilities) for b in buyers]
    if kind == "substitutes":
        return [SubstitutesValuation(b.utilities, factor=0.5) for b in buyers]
    if kind == "complements":
        return [ComplementsValuation(b.utilities, synergy=1.4) for b in buyers]
    raise AssertionError(kind)


def test_additive_proxy_under_nonadditive_truth(benchmark):
    num_markets = 12
    ratios = {"additive": [], "substitutes": [], "complements": []}
    for seed in range(num_markets):
        market, buyers = _physical_market([670, seed])
        result = run_two_stage(market, record_trace=False)
        for kind in ratios:
            valuations = _valuation_family(buyers, kind)
            achieved = physical_welfare(market, result.matching, valuations)
            best, _ = combinatorial_optimal_welfare(market, valuations)
            ratios[kind].append(achieved / best if best > 0 else 1.0)

    rows = [
        [kind, float(np.mean(values)), float(np.min(values))]
        for kind, values in ratios.items()
    ]
    print()
    print("== Additive-proxy matching vs exact combinatorial optimum ==")
    print(format_table(["true valuations", "mean ratio", "min ratio"], rows))

    means = {kind: float(np.mean(values)) for kind, values in ratios.items()}
    # Additive truth: the proxy should be near-exact (matching itself is
    # within a couple percent of the additive optimum).
    assert means["additive"] > 0.95
    # Non-additive truth costs something, but the proxy stays useful.
    assert means["substitutes"] > 0.75
    assert means["complements"] > 0.60
    # Complements hurt at least as much as substitutes on average: the
    # proxy can drop a discounted substitute cheaply but cannot chase
    # synergy it cannot see.
    assert means["complements"] <= means["substitutes"] + 0.05

    market, buyers = _physical_market(671)
    valuations = _valuation_family(buyers, "complements")
    benchmark.pedantic(
        lambda: combinatorial_optimal_welfare(market, valuations),
        rounds=3,
        iterations=1,
    )
