"""Deployment-sensitivity ablation: uniform vs hotspot demand.

The paper places buyers uniformly in the area.  Real demand clusters
around hotspots, which densifies the interference graphs and slashes
per-channel reuse.  This bench matches the same buyer population (same
values) under uniform and increasingly tight clustered deployments and
reports welfare, matched fraction and mean graph density.

Measured shape (an interesting non-monotonicity): *loose* clustering can
BEAT uniform placement -- clusters far apart have no cross-cluster
interference at all, so each cluster reuses every channel independently
-- while *tight* clustering collapses per-channel capacity inside each
hotspot and welfare drops sharply.  Graph density, by contrast, rises
monotonically with cluster tightness.  The algorithm's guarantees
(feasibility, Nash stability) hold regardless of geometry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.market import SpectrumMarket
from repro.core.stability import is_nash_stable
from repro.core.two_stage import run_two_stage
from repro.workloads.deployment import clustered_deployment, random_deployment
from repro.workloads.utilities import iid_uniform_utilities

NUM_BUYERS, NUM_CHANNELS = 60, 6


def _market_from(deployment, utilities):
    return SpectrumMarket(utilities, deployment.interference_map())


def test_uniform_vs_clustered(benchmark):
    reps = 8
    scenarios = [
        ("uniform", None),
        ("clustered spread=2.0", 2.0),
        ("clustered spread=1.0", 1.0),
        ("clustered spread=0.5", 0.5),
    ]
    rows = []
    results = {}
    for label, spread in scenarios:
        welfare = matched = density = 0.0
        stable = True
        for seed in range(reps):
            rng = np.random.default_rng([720, seed])
            utilities = iid_uniform_utilities(NUM_BUYERS, NUM_CHANNELS, rng)
            if spread is None:
                deployment = random_deployment(NUM_BUYERS, NUM_CHANNELS, rng)
            else:
                deployment = clustered_deployment(
                    NUM_BUYERS,
                    NUM_CHANNELS,
                    rng,
                    num_clusters=3,
                    cluster_spread=spread,
                )
            market = _market_from(deployment, utilities)
            result = run_two_stage(market, record_trace=False)
            welfare += result.social_welfare
            matched += result.matching.num_matched() / NUM_BUYERS
            density += float(
                np.mean(
                    [market.interference.density(i) for i in range(NUM_CHANNELS)]
                )
            )
            stable &= is_nash_stable(market, result.matching)
        rows.append(
            [label, density / reps, matched / reps, welfare / reps]
        )
        results[label] = (welfare / reps, stable)
        assert stable  # guarantees hold regardless of geometry

    print()
    print(
        f"== Uniform vs clustered demand (N={NUM_BUYERS}, M={NUM_CHANNELS}, "
        f"{reps} reps, same utility draws) =="
    )
    print(
        format_table(
            ["deployment", "mean density", "matched frac", "mean welfare"],
            rows,
        )
    )

    # Density rises monotonically with cluster tightness...
    densities = [row[1] for row in rows]
    assert densities == sorted(densities)
    # ...but welfare is non-monotone: loose clusters (inter-cluster
    # separation) at least match uniform, tight clusters clearly lose.
    by_label = {row[0]: row[3] for row in rows}
    assert by_label["clustered spread=0.5"] < by_label["uniform"]
    assert by_label["clustered spread=0.5"] < by_label["clustered spread=1.0"]
    assert by_label["clustered spread=2.0"] > 0.95 * by_label["uniform"]

    rng = np.random.default_rng(721)
    utilities = iid_uniform_utilities(NUM_BUYERS, NUM_CHANNELS, rng)
    deployment = clustered_deployment(
        NUM_BUYERS, NUM_CHANNELS, rng, num_clusters=3, cluster_spread=0.5
    )
    market = _market_from(deployment, utilities)
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=5,
        iterations=1,
    )
