"""MWIS-solver ablation: the coalition-formation engine choice.

Sellers form most-preferred coalitions by solving MWIS (Algorithm 1,
line 12); the paper adopts the linear-time greedy of Sakai et al. [8].
This bench quantifies what that approximation costs:

* solution quality of GWMIN / GWMIN2 / GWMAX relative to the exact
  optimum on random interference graphs of varying density;
* end-to-end two-stage welfare with each solver plugged into the market;
* raw solver latency (the pytest-benchmark timing).

Expected shape: the greedies land within a few percent of exact MWIS on
disk-model densities, and the end-to-end welfare difference is smaller
still (Stage II repairs part of Stage I's approximation error).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.two_stage import run_two_stage
from repro.interference.generators import random_gnp_graph
from repro.interference.mwis import (
    MwisAlgorithm,
    mwis_exact,
    mwis_greedy_gwmax,
    mwis_greedy_gwmin,
    mwis_greedy_gwmin2,
)
from repro.workloads.scenarios import paper_simulation_market

GREEDIES = [
    ("gwmin", mwis_greedy_gwmin),
    ("gwmin2", mwis_greedy_gwmin2),
    ("gwmax", mwis_greedy_gwmax),
]


def test_mwis_quality_by_density(benchmark):
    densities = (0.1, 0.3, 0.5, 0.8)
    num_nodes = 24
    repetitions = 20
    rows = []
    worst = {name: 1.0 for name, _ in GREEDIES}
    for density in densities:
        ratios = {name: [] for name, _ in GREEDIES}
        for rep in range(repetitions):
            rng = np.random.default_rng([500, int(density * 10), rep])
            graph = random_gnp_graph(num_nodes, density, rng)
            weights = {j: float(rng.random()) for j in range(num_nodes)}
            exact_value = sum(
                weights[j] for j in mwis_exact(graph, weights, range(num_nodes))
            )
            for name, solver in GREEDIES:
                value = sum(
                    weights[j] for j in solver(graph, weights, range(num_nodes))
                )
                ratio = value / exact_value if exact_value > 0 else 1.0
                ratios[name].append(ratio)
                worst[name] = min(worst[name], ratio)
        rows.append(
            [density] + [float(np.mean(ratios[name])) for name, _ in GREEDIES]
        )
    print()
    print("== Greedy MWIS quality vs exact (ratio, 24-node G(n,p)) ==")
    print(format_table(["density", "gwmin", "gwmin2", "gwmax"], rows))
    print(f"worst-case ratios observed: { {k: round(v, 3) for k, v in worst.items()} }")

    # The greedy mean quality stays high at disk-model-like densities.
    for row in rows:
        assert all(ratio > 0.80 for ratio in row[1:])

    graph = random_gnp_graph(num_nodes, 0.3, np.random.default_rng(501))
    weights = {j: float(j % 7 + 1) for j in range(num_nodes)}
    benchmark.pedantic(
        lambda: mwis_greedy_gwmin(graph, weights, range(num_nodes)),
        rounds=20,
        iterations=5,
    )


def test_mwis_choice_end_to_end(benchmark):
    """Plug each solver into the full two-stage pipeline."""
    algorithms = [
        MwisAlgorithm.GWMIN,
        MwisAlgorithm.GWMIN2,
        MwisAlgorithm.GWMAX,
        MwisAlgorithm.EXACT,
    ]
    repetitions = 8
    welfare = {alg: 0.0 for alg in algorithms}
    for seed in range(repetitions):
        base = paper_simulation_market(
            25, 5, np.random.default_rng([502, seed])
        )
        for alg in algorithms:
            market = base.with_mwis_algorithm(alg)
            welfare[alg] += run_two_stage(market, record_trace=False).social_welfare
    rows = [
        [alg.value, welfare[alg] / repetitions] for alg in algorithms
    ]
    print()
    print("== Two-stage welfare by coalition solver (N=25, M=5) ==")
    print(format_table(["mwis solver", "mean welfare"], rows))

    # The paper's GWMIN choice is within a few percent of exact coalitions.
    assert welfare[MwisAlgorithm.GWMIN] >= 0.93 * welfare[MwisAlgorithm.EXACT]

    market = paper_simulation_market(25, 5, np.random.default_rng(503))
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=5,
        iterations=1,
    )
