"""Sensing-noise ablation: how robust is matching to graph errors?

The paper assumes exact interference knowledge.  This bench sweeps
sensing-error rates and reports the two distinct failure modes:

* **missed edges** co-locate truly interfering buyers -- realised
  ("effective") welfare falls below what the algorithm believes it
  achieved, and real interference victims appear;
* **false edges** only forbid reuse -- no violations, just shrinking
  capacity and welfare.

Expected shape: effective welfare decreases in both error rates;
violations appear only with misses; the nominal/effective gap widens with
the miss rate (the algorithm is increasingly over-confident).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.analysis.sensing import run_sensing_study


def test_missed_edge_sweep(benchmark):
    rows = []
    points = []
    for miss in (0.0, 0.05, 0.15, 0.30):
        point = run_sensing_study(miss_prob=miss, false_prob=0.0, seed=730)
        points.append(point)
        rows.append(
            [
                miss,
                point.nominal_welfare,
                point.effective_welfare,
                point.violating_pairs,
                point.victim_buyers,
            ]
        )
    print()
    print("== Missed-detection sweep (false-alarm rate 0) ==")
    print(
        format_table(
            ["miss prob", "nominal", "effective", "bad pairs", "victims"],
            rows,
        )
    )

    # Perfect sensing: nominal == effective, no violations.
    assert points[0].violating_pairs == 0.0
    assert points[0].nominal_welfare == pytest.approx(
        points[0].effective_welfare
    )
    # Misses create violations and an over-confidence gap that widens.
    assert points[-1].violating_pairs > 0.0
    gaps = [p.nominal_welfare - p.effective_welfare for p in points]
    assert gaps[-1] > gaps[0]
    # Effective welfare degrades monotonically (tolerate small noise).
    assert points[-1].effective_welfare < points[0].effective_welfare

    benchmark.pedantic(
        lambda: run_sensing_study(
            miss_prob=0.15, false_prob=0.0, repetitions=2, seed=731
        ),
        rounds=3,
        iterations=1,
    )


def test_false_alarm_sweep(benchmark):
    rows = []
    points = []
    for false in (0.0, 0.05, 0.15, 0.30):
        point = run_sensing_study(miss_prob=0.0, false_prob=false, seed=732)
        points.append(point)
        rows.append(
            [
                false,
                point.clean_welfare,
                point.effective_welfare,
                point.violating_pairs,
            ]
        )
    print()
    print("== False-alarm sweep (miss rate 0) ==")
    print(
        format_table(
            ["false prob", "clean welfare", "effective", "bad pairs"], rows
        )
    )

    # False alarms never create violations...
    for point in points:
        assert point.violating_pairs == 0.0
        # ...and never make nominal overstate reality.
        assert point.nominal_welfare == pytest.approx(point.effective_welfare)
    # ...but they do shrink capacity and thus welfare.
    assert points[-1].effective_welfare < points[0].effective_welfare

    benchmark.pedantic(
        lambda: run_sensing_study(
            miss_prob=0.0, false_prob=0.15, repetitions=2, seed=733
        ),
        rounds=3,
        iterations=1,
    )
