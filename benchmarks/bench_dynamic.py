"""Dynamic-market ablation: warm vs cold re-matching across epochs.

The paper evaluates one static snapshot; a deployed DSA system re-matches
continuously as demand shifts.  This bench runs the epoch generator
(Poisson arrivals, geometric lifetimes, utility drift) under both
re-matching strategies and reports the trade-off a provider cares about:

* **welfare** -- cold re-optimises globally, warm only lets buyers
  voluntarily improve;
* **churn** -- surviving matched buyers forced onto a different channel
  (service disruption);
* **rounds** -- protocol work per epoch.

Expected shape: warm start keeps ~all of cold's welfare at a fraction of
its churn and rounds, and both stay Nash-stable every epoch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.stability import is_nash_stable
from repro.dynamic.generator import DynamicMarketGenerator
from repro.dynamic.online import OnlineMatcher, RematchStrategy


def _stream(seed, epochs=12):
    generator = DynamicMarketGenerator(
        num_channels=5,
        initial_buyers=40,
        arrival_rate=5.0,
        departure_prob=0.12,
        drift_sigma=0.05,
        rng=np.random.default_rng(seed),
    )
    return generator.epochs(epochs)


def test_warm_vs_cold_rematching(benchmark):
    num_runs = 5
    stats = {
        strategy: {"welfare": 0.0, "churn": 0.0, "rounds": 0.0}
        for strategy in RematchStrategy
    }
    stable_everywhere = True
    for seed in range(num_runs):
        for strategy in RematchStrategy:
            epochs = _stream([680, seed])
            matcher = OnlineMatcher(strategy)
            outcomes = matcher.run(epochs)
            # Skip epoch 0 (identical cold start for both strategies).
            stats[strategy]["welfare"] += sum(
                o.social_welfare for o in outcomes[1:]
            )
            stats[strategy]["churn"] += sum(o.churned for o in outcomes[1:])
            stats[strategy]["rounds"] += sum(o.rounds for o in outcomes[1:])
            stable_everywhere &= all(
                is_nash_stable(e.market, o.matching)
                for e, o in zip(epochs, outcomes)
            )

    rows = [
        [
            strategy.value,
            stats[strategy]["welfare"] / num_runs,
            stats[strategy]["churn"] / num_runs,
            stats[strategy]["rounds"] / num_runs,
        ]
        for strategy in RematchStrategy
    ]
    print()
    print(
        f"== Warm vs cold re-matching ({num_runs} runs x 12 epochs, "
        f"N~40, M=5, 12% departures, drift 0.05) =="
    )
    print(
        format_table(
            ["strategy", "total welfare", "buyers moved", "total rounds"], rows
        )
    )
    print(f"Nash-stable at every epoch, both strategies: {stable_everywhere}")

    cold = stats[RematchStrategy.COLD]
    warm = stats[RematchStrategy.WARM]
    assert stable_everywhere
    assert warm["welfare"] >= 0.95 * cold["welfare"]
    assert warm["churn"] < 0.6 * cold["churn"]
    assert warm["rounds"] < cold["rounds"]

    epochs = _stream(681)
    benchmark.pedantic(
        lambda: OnlineMatcher(RematchStrategy.WARM).run(epochs),
        rounds=3,
        iterations=1,
    )


def test_churn_grows_with_market_volatility(benchmark):
    """More departures/drift -> more (voluntary) movement, even warm."""
    rows = []
    churn_by_volatility = []
    for departure_prob, drift in ((0.02, 0.01), (0.1, 0.05), (0.25, 0.15)):
        total_churn = 0.0
        runs = 4
        for seed in range(runs):
            generator = DynamicMarketGenerator(
                num_channels=5,
                initial_buyers=40,
                arrival_rate=5.0,
                departure_prob=departure_prob,
                drift_sigma=drift,
                rng=np.random.default_rng([682, seed]),
            )
            matcher = OnlineMatcher(RematchStrategy.WARM)
            outcomes = matcher.run(generator.epochs(10))
            total_churn += float(
                np.mean([o.churn_rate for o in outcomes[1:]])
            )
        mean_churn = total_churn / runs
        churn_by_volatility.append(mean_churn)
        rows.append([departure_prob, drift, mean_churn])
    print()
    print("== Warm-start churn vs market volatility ==")
    print(format_table(["departure prob", "drift sigma", "mean churn rate"], rows))

    assert churn_by_volatility[0] < churn_by_volatility[-1]

    generator = DynamicMarketGenerator(
        num_channels=5,
        initial_buyers=40,
        arrival_rate=5.0,
        departure_prob=0.1,
        drift_sigma=0.05,
        rng=np.random.default_rng(683),
    )
    epochs = generator.epochs(6)
    benchmark.pedantic(
        lambda: OnlineMatcher(RematchStrategy.COLD).run(epochs),
        rounds=3,
        iterations=1,
    )
