"""Stage III (coordinated swaps) ablation -- Section III-D future work.

Measures what the swap extension recovers over the paper's two-stage
algorithm:

* on the frozen counterexample, it must reach the buyer-optimal /
  welfare-optimal matching the paper proves unreachable without
  coordination;
* on random paper workloads it quantifies how often improving swaps
  exist at all (rarely -- consistent with finding [D2] in
  EXPERIMENTS.md) and verifies the price of Nash stability on small
  instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.stability import is_pairwise_stable, pairwise_blocking_pairs
from repro.core.swap_extension import coordinated_swaps
from repro.core.two_stage import run_two_stage
from repro.optimal.nash_enumeration import price_of_nash_stability
from repro.workloads.scenarios import counterexample_market, paper_simulation_market


def test_swap_extension(benchmark):
    # --- counterexample repair ------------------------------------------
    market = counterexample_market()
    two_stage = run_two_stage(market, record_trace=False)
    stage3 = coordinated_swaps(market, two_stage.matching)

    # --- random workloads -------------------------------------------------
    num_markets = 20
    improving = 0
    blocked_before = 0
    blocked_after = 0
    welfare_gain = 0.0
    for seed in range(num_markets):
        rand = paper_simulation_market(14, 4, np.random.default_rng([660, seed]))
        result = run_two_stage(rand, record_trace=False)
        before_pairs = sum(1 for _ in pairwise_blocking_pairs(rand, result.matching))
        out = coordinated_swaps(rand, result.matching)
        after_pairs = sum(1 for _ in pairwise_blocking_pairs(rand, out.matching))
        blocked_before += before_pairs
        blocked_after += after_pairs
        if out.num_swaps:
            improving += 1
        welfare_gain += out.welfare_after - out.welfare_before

    rows = [
        ["counterexample welfare", f"{stage3.welfare_before:g} -> {stage3.welfare_after:g}"],
        ["counterexample pairwise-stable after", is_pairwise_stable(market, stage3.matching)],
        [f"random markets with improving swaps", f"{improving}/{num_markets}"],
        ["mean blocking pairs before -> after", f"{blocked_before / num_markets:.2f} -> {blocked_after / num_markets:.2f}"],
        ["mean welfare gain (random)", welfare_gain / num_markets],
    ]
    print()
    print("== Stage III coordinated swaps ==")
    print(format_table(["metric", "value"], rows))

    assert stage3.welfare_after == pytest.approx(27.0)
    assert is_pairwise_stable(market, stage3.matching)
    assert blocked_after <= blocked_before
    assert welfare_gain >= -1e-9

    benchmark.pedantic(
        lambda: coordinated_swaps(market, two_stage.matching),
        rounds=5,
        iterations=1,
    )


def test_price_of_nash_stability(benchmark):
    """How much welfare Nash stability itself costs on small markets."""
    ratios = []
    for seed in range(12):
        market = paper_simulation_market(7, 3, np.random.default_rng([661, seed]))
        ratio, _ = price_of_nash_stability(market)
        ratios.append(ratio)
    print()
    print("== Price of Nash stability (N=7, M=3, exhaustive) ==")
    print(
        format_table(
            ["metric", "value"],
            [
                ["mean best-stable / optimal", float(np.mean(ratios))],
                ["min over instances", float(np.min(ratios))],
            ],
        )
    )
    # Stability is cheap on these workloads -- and can never exceed 1.
    assert all(r <= 1.0 + 1e-9 for r in ratios)
    assert float(np.mean(ratios)) > 0.95

    market = paper_simulation_market(7, 3, np.random.default_rng(662))
    benchmark.pedantic(
        lambda: price_of_nash_stability(market), rounds=3, iterations=1
    )
