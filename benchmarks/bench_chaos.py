"""Chaos bench: matching quality and convergence cost vs node churn.

Crash/restart schedules of increasing severity are injected into the
message-level runtime (over a lossy network with the ARQ transport) and
the run is compared against the fault-free baseline: slots to quiescence,
wire traffic, messages lost to dead hosts, and the welfare ratio.

Expected shape: checkpoint restarts that complete before the default
rule's ``MN`` transition deadline are *free* in welfare terms -- the
protocol re-converges to the fault-free outcome, paying only in slots and
retransmissions.  A second table shows graceful degradation: under an
unrecoverable buyer/seller partition the salvageable matching grows with
the slot budget spent before the deadline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.distributed.faults import CrashFault, FaultSchedule, PartitionFault
from repro.distributed.network import LossyNetwork
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.transition import default_policy
from repro.workloads.scenarios import paper_simulation_market

NUM_BUYERS = 12
NUM_CHANNELS = 3
NUM_MARKETS = 4
LOSS_RATE = 0.1


def churn_schedule(buyer_crashes: int, seller_crashes: int) -> FaultSchedule:
    """Staggered crash/restart waves, all healed well before the default
    rule's Stage-II deadline (``MN`` = 36 slots here)."""
    crashes = [
        CrashFault(f"buyer:{j}", crash_slot=4 + j, restart_slot=12 + 2 * j)
        for j in range(buyer_crashes)
    ]
    crashes += [
        CrashFault(f"seller:{i}", crash_slot=6 + i, restart_slot=15 + i)
        for i in range(seller_crashes)
    ]
    return FaultSchedule(crashes=crashes)


CHURN_LEVELS = [
    ("none", 0, 0),
    ("light", 2, 0),
    ("moderate", 3, 1),
    ("heavy", 5, 1),
]


def test_welfare_and_convergence_vs_churn(benchmark):
    rows = []
    ratios = {}
    lost_means = {}
    slot_means = {}
    for label, buyer_crashes, seller_crashes in CHURN_LEVELS:
        schedule = churn_schedule(buyer_crashes, seller_crashes)
        slots_total = 0
        messages_total = 0
        lost_total = 0
        ratio_total = 0.0
        for seed in range(NUM_MARKETS):
            market = paper_simulation_market(
                NUM_BUYERS, NUM_CHANNELS, np.random.default_rng([500, seed])
            )
            baseline = run_distributed_matching(market, policy=default_policy())
            run = run_distributed_matching(
                market,
                policy=default_policy(),
                network=LossyNetwork(LOSS_RATE),
                seed=seed,
                reliable_transport=True,
                fault_schedule=None if schedule.empty else schedule,
                max_slots=200_000,
            )
            assert run.status == "converged", (label, seed)
            assert run.matching.is_interference_free(market.interference)
            slots_total += run.slots
            messages_total += run.messages_sent
            lost_total += run.messages_lost_to_crash
            ratio_total += (
                run.social_welfare / baseline.social_welfare
                if baseline.social_welfare > 0
                else 1.0
            )
        ratios[label] = ratio_total / NUM_MARKETS
        lost_means[label] = lost_total / NUM_MARKETS
        slot_means[label] = slots_total / NUM_MARKETS
        rows.append(
            [
                label,
                buyer_crashes + seller_crashes,
                slots_total / NUM_MARKETS,
                messages_total / NUM_MARKETS,
                lost_total / NUM_MARKETS,
                ratio_total / NUM_MARKETS,
            ]
        )
    print()
    print(
        f"== Welfare / convergence vs churn "
        f"({NUM_MARKETS} markets, N={NUM_BUYERS}, M={NUM_CHANNELS}, "
        f"{LOSS_RATE:.0%} loss + ARQ) =="
    )
    print(
        format_table(
            ["churn", "crashes", "mean slots", "mean msgs",
             "mean lost", "welfare ratio"],
            rows,
        )
    )

    # Checkpoint recovery before the deadline costs no welfare at all.
    for label, _, _ in CHURN_LEVELS:
        assert ratios[label] == pytest.approx(1.0), label
    # ...but churn is not free: dead hosts eat real wire traffic, and the
    # staggered restarts pin the run past the last recovery (slot 20).
    assert lost_means["none"] == 0
    assert lost_means["heavy"] > lost_means["light"] > 0
    assert slot_means["heavy"] > 20

    market = paper_simulation_market(
        NUM_BUYERS, NUM_CHANNELS, np.random.default_rng([500, 0])
    )
    schedule = churn_schedule(3, 1)
    benchmark.pedantic(
        lambda: run_distributed_matching(
            market,
            policy=default_policy(),
            network=LossyNetwork(LOSS_RATE),
            reliable_transport=True,
            fault_schedule=schedule,
            max_slots=200_000,
        ),
        rounds=3,
        iterations=1,
    )


def test_degraded_matching_grows_with_deadline(benchmark):
    """Unrecoverable buyer/seller partition from slot ``t``: everything
    agreed before the split survives degradation, so later partitions
    (equivalently: larger pre-fault budgets) salvage more matches."""
    market = paper_simulation_market(
        NUM_BUYERS, NUM_CHANNELS, np.random.default_rng([501, 0])
    )
    baseline = run_distributed_matching(market, policy=default_policy())
    rows = []
    matched_counts = []
    for split_slot in (2, 6, 12):
        schedule = FaultSchedule(
            partitions=[
                PartitionFault(
                    groups=(
                        frozenset(f"buyer:{j}" for j in range(NUM_BUYERS)),
                        frozenset(f"seller:{i}" for i in range(NUM_CHANNELS)),
                    ),
                    start_slot=split_slot,  # never heals
                )
            ]
        )
        run = run_distributed_matching(
            market,
            policy=default_policy(),
            fault_schedule=schedule,
            deadline_slots=100,
            on_timeout="degrade",
        )
        assert run.status == "degraded"
        assert run.matching.is_interference_free(market.interference)
        matched_counts.append(run.matching.num_matched())
        rows.append(
            [
                split_slot,
                run.matching.num_matched(),
                baseline.matching.num_matched(),
                run.social_welfare,
                baseline.social_welfare,
                run.partition_drops,
            ]
        )
    print()
    print("== Graceful degradation under an unrecoverable partition ==")
    print(
        format_table(
            ["split slot", "matched", "baseline matched",
             "welfare", "baseline welfare", "drops"],
            rows,
        )
    )
    # Monotone salvage: a later split never rescues fewer buyers.
    assert matched_counts == sorted(matched_counts)
    assert matched_counts[-1] > matched_counts[0]

    benchmark.pedantic(
        lambda: run_distributed_matching(
            market,
            policy=default_policy(),
            fault_schedule=FaultSchedule(
                partitions=[
                    PartitionFault(
                        groups=(
                            frozenset(
                                f"buyer:{j}" for j in range(NUM_BUYERS)
                            ),
                            frozenset(
                                f"seller:{i}" for i in range(NUM_CHANNELS)
                            ),
                        ),
                        start_slot=6,
                    )
                ]
            ),
            deadline_slots=100,
            on_timeout="degrade",
        ),
        rounds=3,
        iterations=1,
    )
