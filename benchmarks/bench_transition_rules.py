"""Section IV ablation: stage-transition rules in the message-level runtime.

The paper motivates adaptive transition rules with the toy example: the
default rule (wait MN / M / N slots) takes ~23 slots where 7 suffice.
This bench quantifies that on the toy example and on random markets:
slots to quiescence, message counts, and final welfare for

* the default rule,
* buyer rule I (all interfering neighbours proposed) + default seller,
* the probability-driven rules (buyer rule II + seller Q^k rule) at two
  thresholds.

Expected shape: all policies deliver the same (or nearly the same)
welfare; adaptive policies finish in far fewer slots on markets where
eviction risk decays quickly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.transition import (
    adaptive_policy,
    default_policy,
    neighbor_rule_policy,
)
from repro.workloads.scenarios import paper_simulation_market, toy_example_market

POLICIES = [
    ("default", default_policy()),
    ("rule-I", neighbor_rule_policy()),
    ("adaptive(0.05)", adaptive_policy(0.05, 0.05)),
    ("adaptive(0.30)", adaptive_policy(0.30, 0.30)),
]


def test_transition_rules_toy_example(benchmark):
    market = toy_example_market()
    rows = []
    results = {}
    for name, policy in POLICIES:
        run = run_distributed_matching(market, policy=policy)
        results[name] = run
        rows.append([name, run.slots, run.messages_sent, run.social_welfare])
    print()
    print("== Transition rules on the paper's toy example ==")
    print("paper: default rule needs ~MN+M+N=23 slots; 7 slots suffice")
    print(format_table(["policy", "slots", "messages", "welfare"], rows))

    # All policies reach the paper's final welfare of 30.
    for name, run in results.items():
        assert run.social_welfare == pytest.approx(30.0), name
    # The adaptive policy beats the default rule's slot count.
    assert results["adaptive(0.05)"].slots < results["default"].slots

    benchmark.pedantic(
        lambda: run_distributed_matching(market, policy=adaptive_policy()),
        rounds=3,
        iterations=1,
    )


def test_transition_rules_random_markets(benchmark):
    """Sparse vs dense interference regimes.

    The probability rules certify an early transition only when the
    residual risk is provably small: on sparse interference (short
    transmission ranges) most buyers quickly see all their neighbours
    propose, P^k collapses to ~0, and the adaptive run finishes in a
    fraction of the default rule's ~MN slots.  On dense interference the
    compounded horizon keeps P^k / Q^k near 1, the rules (correctly)
    refuse to gamble, and both policies cost the same -- echoing the
    paper's remark that rule I's condition "may be hard to meet".
    """
    num_markets = 5
    rows = []
    results = {}
    for regime, max_range in (("sparse", 0.5), ("dense", 5.0)):
        slot_totals = {name: 0 for name, _ in POLICIES}
        welfare_totals = {name: 0.0 for name, _ in POLICIES}
        for seed in range(num_markets):
            market = paper_simulation_market(
                20, 4, np.random.default_rng([400, seed]), max_range=max_range
            )
            for name, policy in POLICIES:
                run = run_distributed_matching(market, policy=policy)
                slot_totals[name] += run.slots
                welfare_totals[name] += run.social_welfare
        for name, _ in POLICIES:
            rows.append(
                [
                    regime,
                    name,
                    slot_totals[name] / num_markets,
                    welfare_totals[name] / num_markets,
                ]
            )
        results[regime] = (slot_totals, welfare_totals)
    print()
    print(f"== Transition rules on {num_markets} random markets (N=20, M=4) ==")
    print(format_table(["interference", "policy", "mean slots", "mean welfare"], rows))

    for regime in ("sparse", "dense"):
        slots, welfare = results[regime]
        # Adaptive policies never lose welfare, never add slots.
        assert welfare["adaptive(0.05)"] >= 0.97 * welfare["default"]
        assert slots["adaptive(0.05)"] <= slots["default"]
    # And on sparse interference they finish decisively earlier.
    sparse_slots, _ = results["sparse"]
    assert sparse_slots["adaptive(0.30)"] < 0.7 * sparse_slots["default"]

    market = paper_simulation_market(20, 4, np.random.default_rng(401))
    benchmark.pedantic(
        lambda: run_distributed_matching(market, policy=default_policy()),
        rounds=3,
        iterations=1,
    )
