"""Fairness ablation: how the mechanisms distribute utility.

Social welfare alone (the paper's metric) can hide distributional
pathologies.  This bench compares the mechanisms in the repository on the
same markets along Jain's fairness index, the justified-envy census and
welfare:

* proposed two-stage matching,
* welfare-optimal matching (exact),
* centralised greedy,
* random feasible matching.

Expected shape: the stable mechanism carries (near-)zero justified envy
by construction -- envy triples are single-eviction blocking pairs, which
Nash-stable outputs rarely admit -- while the welfare-optimal and greedy
solutions tolerate envy to buy welfare; random is both unfair and
envy-ridden.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.fairness import fairness_report
from repro.analysis.reporting import format_table
from repro.core.two_stage import run_two_stage
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.greedy import greedy_centralized_matching
from repro.optimal.random_baseline import random_matching
from repro.workloads.scenarios import paper_simulation_market


def test_fairness_across_mechanisms(benchmark):
    num_markets = 8
    num_buyers, num_channels = 12, 4
    totals = {
        name: {"welfare": 0.0, "jain": 0.0, "envy": 0.0}
        for name in ("proposed", "optimal", "greedy", "random")
    }
    for seed in range(num_markets):
        market = paper_simulation_market(
            num_buyers, num_channels, np.random.default_rng([740, seed])
        )
        matchings = {
            "proposed": run_two_stage(market, record_trace=False).matching,
            "optimal": optimal_matching_branch_and_bound(market),
            "greedy": greedy_centralized_matching(market),
            "random": random_matching(market, np.random.default_rng([741, seed])),
        }
        for name, matching in matchings.items():
            report = fairness_report(market, matching)
            totals[name]["welfare"] += matching.social_welfare(market.utilities)
            totals[name]["jain"] += report.jain_index
            totals[name]["envy"] += report.envy_count

    rows = [
        [
            name,
            data["welfare"] / num_markets,
            data["jain"] / num_markets,
            data["envy"] / num_markets,
        ]
        for name, data in totals.items()
    ]
    print()
    print(
        f"== Fairness across mechanisms ({num_markets} markets, "
        f"N={num_buyers}, M={num_channels}) =="
    )
    print(
        format_table(
            ["mechanism", "mean welfare", "mean Jain idx", "mean envy pairs"],
            rows,
        )
    )
    print("justified envy = single-eviction blocking pairs (see fairness.py)")

    # The stable mechanism's envy is (near) zero by construction...
    assert totals["proposed"]["envy"] / num_markets < 0.5
    # ...and not at a fairness cost relative to the alternatives.
    assert totals["proposed"]["jain"] >= 0.9 * totals["optimal"]["jain"]
    # Random is visibly less fair than the proposed mechanism.
    assert totals["random"]["jain"] < totals["proposed"]["jain"]

    market = paper_simulation_market(
        num_buyers, num_channels, np.random.default_rng(742)
    )
    result = run_two_stage(market, record_trace=False)
    benchmark.pedantic(
        lambda: fairness_report(market, result.matching),
        rounds=5,
        iterations=1,
    )
