"""Matching vs. double auction: the paper's central architectural claim.

The paper replaces auctioneer-run double auctions with distributed
matching.  This bench makes the trade-off quantitative on homogeneous
spectrum markets (TRUST's own setting): the same buyers, values,
interference graph and channels are allocated by

* the two-stage matching algorithm (no auctioneer, Nash-stable, not
  truthful), and
* the TRUST double auction (needs an auctioneer, dominant-strategy
  truthful, weakly budget balanced).

Expected shape: matching serves (weakly) more buyers and extracts higher
social welfare -- TRUST pays a "truthfulness tax" through bid-independent
grouping and the McAfee sacrifice -- while TRUST is the only one of the
two with truthful bidding.  Both respect interference exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.auction.trust import trust_spectrum_auction
from repro.core.two_stage import run_two_stage
from repro.interference.geometric import disk_interference_graph
from repro.workloads.scenarios import homogeneous_market


def _random_instance(num_buyers, num_channels, seed):
    rng = np.random.default_rng(seed)
    locations = rng.uniform(0, 10, size=(num_buyers, 2))
    graph = disk_interference_graph(locations, float(rng.uniform(1.0, 4.0)))
    values = rng.random(num_buyers)
    asks = rng.uniform(0.0, 0.3, size=num_channels)
    return values, graph, asks


def test_matching_vs_trust(benchmark):
    num_markets = 10
    num_buyers, num_channels = 40, 6
    totals = {
        "matching welfare": 0.0,
        "trust welfare": 0.0,
        "matching buyers served": 0.0,
        "trust buyers served": 0.0,
        "trust seller revenue": 0.0,
        "trust auctioneer surplus": 0.0,
    }
    for seed in range(num_markets):
        values, graph, asks = _random_instance(
            num_buyers, num_channels, [650, seed]
        )
        market = homogeneous_market(values, graph, num_channels)
        matching = run_two_stage(market, record_trace=False)
        auction = trust_spectrum_auction(values, graph, asks)
        totals["matching welfare"] += matching.social_welfare
        totals["trust welfare"] += auction.buyer_welfare(values)
        totals["matching buyers served"] += matching.matching.num_matched()
        totals["trust buyers served"] += len(auction.winning_buyers())
        totals["trust seller revenue"] += sum(auction.seller_revenue)
        totals["trust auctioneer surplus"] += auction.mcafee.auctioneer_surplus

    rows = [[name, value / num_markets] for name, value in totals.items()]
    print()
    print(
        f"== Matching vs TRUST double auction "
        f"({num_markets} homogeneous markets, N={num_buyers}, M={num_channels}) =="
    )
    print(format_table(["metric", "mean"], rows))
    print(
        "matching: distributed, Nash-stable, no auctioneer | "
        "TRUST: truthful, budget-balanced, needs an auctioneer"
    )

    # The paper's claim quantified: matching extracts more welfare and
    # serves more buyers than the truthful double auction.
    assert totals["matching welfare"] > totals["trust welfare"]
    assert totals["matching buyers served"] >= totals["trust buyers served"]
    # And the auction is weakly budget balanced as promised.
    assert totals["trust auctioneer surplus"] >= -1e-9

    values, graph, asks = _random_instance(num_buyers, num_channels, 651)
    benchmark.pedantic(
        lambda: trust_spectrum_auction(values, graph, asks),
        rounds=5,
        iterations=1,
    )


def test_trust_welfare_fraction_by_market_size(benchmark):
    """TRUST's welfare fraction across market sizes.

    Two effects pull in opposite directions as N grows: the one-group
    McAfee sacrifice amortises (helps TRUST), but first-fit groups get
    larger and the ``|g| * min-bid`` group bid dilutes -- a single
    low-value member depresses the whole group's bid (hurts TRUST, and
    is a known cost of its bid-independent grouping).  The net fraction
    therefore fluctuates; what is robust is that matching wins at every
    size, by a margin that never collapses to zero.
    """
    rows = []
    for num_buyers in (10, 20, 40, 80):
        ratio_total = 0.0
        reps = 8
        for seed in range(reps):
            values, graph, asks = _random_instance(
                num_buyers, 8, [652, num_buyers, seed]
            )
            market = homogeneous_market(values, graph, 8)
            matching = run_two_stage(market, record_trace=False)
            auction = trust_spectrum_auction(values, graph, asks)
            if matching.social_welfare > 0:
                ratio_total += (
                    auction.buyer_welfare(values) / matching.social_welfare
                )
        rows.append([num_buyers, ratio_total / reps])
    print()
    print("== TRUST welfare as a fraction of matching welfare ==")
    print(format_table(["buyers", "trust/matching"], rows))

    # Matching dominates at every size; TRUST keeps a meaningful share.
    for _, fraction in rows:
        assert 0.25 <= fraction <= 1.0

    values, graph, asks = _random_instance(80, 8, 653)
    market = homogeneous_market(values, graph, 8)
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=3,
        iterations=1,
    )
