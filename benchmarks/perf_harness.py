"""Performance-regression harness for the matching kernels and sweeps.

Produces two machine-readable artefacts (median-of-N wall-clock numbers
plus the observability layer's own ``stage1.mwis_solve_s`` timer totals):

* ``BENCH_kernels.json`` -- Stage I (deferred acceptance) on the
  ``bench_scalability`` large market, three ways: the batched SoA fast
  path (the default), the scalar bitset kernels
  (``SPECTRUM_BATCH_STAGE1=0``), and the set-based reference path
  (``SPECTRUM_FAST_KERNELS=0``), including a check that all three
  produced the identical matching.  ``speedup`` stays
  reference-vs-fast (the ratio the perf gate guards);
  ``batch_speedup`` isolates the SoA batching win over the scalar
  kernels.
* ``BENCH_sweep.json`` -- a Fig. 7-style sweep run serially vs through
  the parallel runner, proving the ``--jobs`` path and recording its
  overhead/speedup on this machine.
* ``BENCH_dispatch.json`` -- the two-stage solver called through the
  engine registry (``get_solver("two_stage").solve``) vs directly,
  guarding the registry's dispatch + report-building overhead (<2%).

Every timed side records its full noise envelope (``min_s`` / ``max_s``
/ ``stdev_s`` beside ``median_s``), and the kernels report carries each
side's span table and deterministic cost counters so the perf gate can
*attribute* a failure (which phase moved; did the operation counts move
with it).  Each invocation also appends one summary line to
``BENCH_history.jsonl`` in the output directory -- the performance
trajectory across regenerations.

Run ``python benchmarks/perf_harness.py`` to regenerate both next to the
committed baselines in ``benchmarks/baselines/``; pass ``--quick`` for
the CI smoke variant (small market, fewer runs) and ``--output-dir`` to
write elsewhere.  ``benchmarks/compare_perf.py`` diffs a fresh run
against the baselines and fails on regressions.
"""

from __future__ import annotations

import argparse
import os
import platform
import statistics
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.experiments import SweepAxis, stage_breakdown_series
from repro.core.deferred_acceptance import deferred_acceptance
from repro.core.soa import BATCH_STAGE1_ENV
from repro.core.two_stage import run_two_stage
from repro.engine import get_solver
from repro.interference.bitset import FAST_KERNELS_ENV
from repro.ioutil import append_jsonl, atomic_write_json
from repro.obs import MetricsRegistry, Recorder, use_recorder
from repro.obs.spans import SpanTracer
from repro.prof.attribution import span_table
from repro.prof.counters import reset_cost_counters, snapshot_cost_counters
from repro.workloads.scenarios import paper_simulation_market

#: Default home of the committed baseline artefacts.
BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: The bench_scalability large market (same parameters as
#: ``benchmarks/bench_scalability.py``), used for the full kernels bench.
FULL_MARKET = dict(num_buyers=2000, num_channels=20, rng_seed=[700, 2000])
QUICK_MARKET = dict(num_buyers=400, num_channels=8, rng_seed=[700, 400])

#: Markets for the registry-dispatch overhead bench.  The backend run is
#: superlinear in N while the dispatch layer's report-building cost is
#: O(N), so larger markets shrink the overhead fraction; these sizes keep
#: the true ratio comfortably under the 1.02x cap while a run stays fast
#: enough to repeat.
DISPATCH_FULL_MARKET = dict(num_buyers=1600, num_channels=16, rng_seed=[702, 1600])
DISPATCH_QUICK_MARKET = dict(num_buyers=800, num_channels=12, rng_seed=[702, 800])


def _build_market(params: Dict[str, object]):
    rng = np.random.default_rng(params["rng_seed"])
    return paper_simulation_market(
        params["num_buyers"], params["num_channels"], rng
    )


def _timed_runs(
    fn: Callable[[], object], runs: int
) -> Tuple[List[float], List[object]]:
    """Wall-clock each call to ``fn``; return (times, return values)."""
    times: List[float] = []
    outputs: List[object] = []
    for _ in range(runs):
        start = time.perf_counter()
        outputs.append(fn())
        times.append(time.perf_counter() - start)
    return times, outputs


def _stats_block(times: List[float]) -> Dict[str, object]:
    """Median plus the sample's noise envelope (min/max/stdev).

    ``compare_perf.py`` uses min and spread as its noise-floor guard: a
    median regression whose min is still inside the ceiling on a
    high-spread sample reads as scheduler noise, not code.
    """
    return {
        "median_s": statistics.median(times),
        "min_s": min(times),
        "max_s": max(times),
        "stdev_s": statistics.stdev(times) if len(times) >= 2 else 0.0,
        "times_s": times,
    }


def _stage1_once(
    market, fast: bool, batched: bool = True
) -> Tuple[object, float, List[Dict[str, object]], Dict[str, int]]:
    """One recorded Stage-I run.

    Returns ``(result, mwis timer total_s, span table, cost counters)``
    -- the span table and the deterministic kernel cost counters are
    what ``compare_perf.py``'s attribution diff consumes to tell
    "algorithm changed" apart from "machine was slow".
    """
    os.environ[FAST_KERNELS_ENV] = "1" if fast else "0"
    os.environ[BATCH_STAGE1_ENV] = "1" if batched else "0"
    registry = MetricsRegistry()
    tracer = SpanTracer()
    reset_cost_counters()
    try:
        with use_recorder(Recorder(metrics=registry, spans=tracer)):
            result = deferred_acceptance(market, record_trace=False)
    finally:
        os.environ.pop(FAST_KERNELS_ENV, None)
        os.environ.pop(BATCH_STAGE1_ENV, None)
    counters = {
        name: value
        for name, value in snapshot_cost_counters().items()
        if value
    }
    timers = registry.snapshot()["timers"]
    mwis_s = timers.get("stage1.mwis_solve_s", {}).get("total_s", 0.0)
    return result, mwis_s, span_table(tracer.records), counters


def _coalitions(market, result) -> Dict[int, Tuple[int, ...]]:
    return {
        channel: tuple(sorted(result.matching.coalition(channel)))
        for channel in range(market.num_channels)
    }


def bench_kernels(quick: bool, runs: int) -> Dict[str, object]:
    """Stage I batched-vs-scalar-vs-reference on the scalability market."""
    params = QUICK_MARKET if quick else FULL_MARKET
    market = _build_market(params)
    sides: Dict[str, Dict[str, object]] = {}
    matchings = {}
    for label, fast, batched in (
        ("fast", True, True),
        ("scalar", True, False),
        ("reference", False, True),
    ):
        mwis_totals: List[float] = []
        span_tables: List[List[Dict[str, object]]] = []
        counter_snaps: List[Dict[str, int]] = []
        results: List[object] = []

        def run_once() -> object:
            result, mwis_s, spans, counters = _stage1_once(
                market, fast, batched
            )
            mwis_totals.append(mwis_s)
            span_tables.append(spans)
            counter_snaps.append(counters)
            return result

        times, outputs = _timed_runs(run_once, runs)
        results = outputs
        matchings[label] = _coalitions(market, results[0])
        # The deterministic counters must agree across same-input runs;
        # record the first snapshot and surface any disagreement rather
        # than averaging it away.
        sides[label] = {
            **_stats_block(times),
            "mwis_solve_median_s": statistics.median(mwis_totals),
            "spans": span_tables[0],
            "counters": counter_snaps[0],
            "counters_deterministic": all(
                snap == counter_snaps[0] for snap in counter_snaps
            ),
        }
    fast_median = sides["fast"]["median_s"]
    return {
        "benchmark": "kernels",
        "quick": quick,
        "runs": runs,
        "market": params,
        "fast": sides["fast"],
        "scalar": sides["scalar"],
        "reference": sides["reference"],
        "speedup": (
            sides["reference"]["median_s"] / fast_median if fast_median else 0.0
        ),
        "batch_speedup": (
            sides["scalar"]["median_s"] / fast_median if fast_median else 0.0
        ),
        "identical_matching": (
            matchings["fast"] == matchings["reference"]
            and matchings["fast"] == matchings["scalar"]
        ),
    }


def bench_sweep(quick: bool, runs: int, jobs: int) -> Dict[str, object]:
    """A Fig. 7-style stage-breakdown sweep, serial vs parallel runner."""
    if quick:
        sweep = dict(values=(2, 3), num_buyers=60, repetitions=2, seed=0)
    else:
        sweep = dict(values=(4, 8), num_buyers=300, repetitions=4, seed=0)

    def run(jobs_arg: Optional[int]):
        return stage_breakdown_series(
            SweepAxis.SELLERS,
            sweep["values"],
            num_buyers=sweep["num_buyers"],
            repetitions=sweep["repetitions"],
            seed=sweep["seed"],
            jobs=jobs_arg,
        )

    serial_times, serial_rows = _timed_runs(lambda: run(None), runs)
    parallel_times, parallel_rows = _timed_runs(lambda: run(jobs), runs)
    serial_median = statistics.median(serial_times)
    parallel_median = statistics.median(parallel_times)
    return {
        "benchmark": "sweep",
        "quick": quick,
        "runs": runs,
        "jobs": jobs,
        "sweep": {k: list(v) if isinstance(v, tuple) else v for k, v in sweep.items()},
        "serial": _stats_block(serial_times),
        "parallel": _stats_block(parallel_times),
        "parallel_speedup": (
            serial_median / parallel_median if parallel_median else 0.0
        ),
        "identical_rows": serial_rows[0] == parallel_rows[0],
    }


def bench_dispatch(quick: bool, runs: int) -> Dict[str, object]:
    """Engine-registry dispatch vs calling ``run_two_stage`` directly.

    Timing the two paths in separate calls and dividing would drown the
    sub-1% true overhead in scheduler noise, so the ratio is taken
    *within* each dispatch call instead: the adapter's own
    ``report.wall_time_s`` spans exactly the backend invocation, so
    ``outer_wall / report.wall_time_s`` measures the dispatch layer's
    added cost (config handling, validation, report building) against
    the backend run it actually wrapped -- machine drift inflates
    numerator and denominator together and cancels.  The headline
    ``overhead`` is the median of those per-call ratios; interleaved
    direct calls provide the ``identical_matching`` invariant and the
    side-by-side medians.  ``compare_perf.py`` enforces the 1.02x cap.
    """
    params = DISPATCH_QUICK_MARKET if quick else DISPATCH_FULL_MARKET
    market = _build_market(params)
    solver = get_solver("two_stage")
    runs = max(runs, 7)
    run_two_stage(market, record_trace=False)
    solver.solve(market)

    def coalitions(matching) -> Dict[int, Tuple[int, ...]]:
        return {
            channel: tuple(sorted(matching.coalition(channel)))
            for channel in range(market.num_channels)
        }

    direct_times: List[float] = []
    dispatch_times: List[float] = []
    ratios: List[float] = []
    direct_result = None
    dispatch_report = None
    for _ in range(runs):
        start = time.perf_counter()
        direct_result = run_two_stage(market, record_trace=False)
        direct_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        dispatch_report = solver.solve(market)
        outer = time.perf_counter() - start
        dispatch_times.append(outer)
        if dispatch_report.wall_time_s:
            ratios.append(outer / dispatch_report.wall_time_s)

    return {
        "benchmark": "dispatch",
        "quick": quick,
        "runs": runs,
        "market": params,
        "direct": _stats_block(direct_times),
        "dispatch": _stats_block(dispatch_times),
        "overhead": statistics.median(ratios) if ratios else 0.0,
        "call_ratios": ratios,
        "identical_matching": (
            coalitions(direct_result.matching)
            == coalitions(dispatch_report.matching)
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small market + fewer runs (CI smoke variant)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=None,
        help="timed runs per measurement (default: 5, or 3 with --quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker count for the parallel sweep measurement (default 2)",
    )
    parser.add_argument(
        "--output-dir",
        default=BASELINE_DIR,
        help=f"where to write BENCH_*.json (default {BASELINE_DIR})",
    )
    parser.add_argument(
        "--only",
        choices=["kernels", "sweep", "dispatch"],
        default=None,
        help="run just one benchmark",
    )
    args = parser.parse_args(argv)
    runs = args.runs if args.runs is not None else (3 if args.quick else 5)

    os.makedirs(args.output_dir, exist_ok=True)
    # Honest environment metadata: compare_perf.py keys its
    # multi-core-only parallel_speedup rule off env.cpu_count, and a
    # reader of a committed baseline needs to know how many workers the
    # sweep actually used.
    meta = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
    }
    reports = {}
    if args.only in (None, "kernels"):
        reports["BENCH_kernels.json"] = {**bench_kernels(args.quick, runs), **{"env": meta}}
    if args.only in (None, "sweep"):
        reports["BENCH_sweep.json"] = {**bench_sweep(args.quick, runs, args.jobs), **{"env": meta}}
    if args.only in (None, "dispatch"):
        reports["BENCH_dispatch.json"] = {**bench_dispatch(args.quick, runs), **{"env": meta}}
    history_entry: Dict[str, object] = {
        "unix_time": round(time.time(), 3),
        "quick": args.quick,
        "runs": runs,
        "env": meta,
        "headlines": {},
    }
    for name, report in reports.items():
        path = os.path.join(args.output_dir, name)
        # Atomic replace: an interrupted harness run keeps the previous
        # baseline intact instead of leaving a torn BENCH_*.json.
        atomic_write_json(path, report)
        if "speedup" in report:
            headline = f"speedup {report['speedup']:.2f}x"
            history_entry["headlines"][name] = {
                "speedup": report["speedup"],
                "fast_median_s": report["fast"]["median_s"],
            }
        elif "overhead" in report:
            headline = f"dispatch overhead {report['overhead']:.3f}x"
            history_entry["headlines"][name] = {
                "overhead": report["overhead"],
            }
        else:
            headline = f"parallel {report['parallel_speedup']:.2f}x"
            history_entry["headlines"][name] = {
                "parallel_speedup": report["parallel_speedup"],
            }
        print(f"{path}: {headline}")
    # The trajectory file: one line per harness invocation, so a slow
    # drift that never trips the gate is still visible in the history.
    append_jsonl(
        os.path.join(args.output_dir, "BENCH_history.jsonl"), history_entry
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
