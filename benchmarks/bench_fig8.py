"""Fig. 8 reproduction: running time (rounds) of each stage/phase.

Paper series: the number of rounds consumed by Stage I, Stage II Phase 1
and Stage II Phase 2 on the same sweeps as Fig. 7 (the two figures come
from the same runs; the cached rows are shared with ``bench_fig7``).

Expected shapes (Section V-C): with N >> M, Stage I's round count is
driven mainly by M, not N; Phase 1's rounds grow linearly with the number
of sellers (its O(M) bound) and are insensitive to the number of buyers;
Phase 2 runs only a few rounds because invitations are scarce.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._shared import print_panel, stage_rows
from repro.core.deferred_acceptance import deferred_acceptance
from repro.workloads.scenarios import paper_simulation_market

SERIES = ["rounds_stage1", "rounds_phase1", "rounds_phase2"]


def _timed_unit(benchmark, num_buyers: int, num_channels: int) -> None:
    market = paper_simulation_market(
        num_buyers, num_channels, np.random.default_rng(997)
    )
    benchmark.pedantic(
        lambda: deferred_acceptance(market, record_trace=False),
        rounds=3,
        iterations=1,
    )


def test_fig8a(benchmark, fig78_reps):
    rows = stage_rows("a", fig78_reps)
    print_panel(
        "Fig. 8(a): rounds per stage vs buyers (M=10)",
        rows,
        SERIES,
        "buyers",
        notes="paper: Stage I ~25, Phase 1 ~10 (flat in N), Phase 2 ~2",
    )
    for row in rows:
        # Phase 1 is bounded by M (each buyer applies once per better
        # seller, at most M of them).
        assert row.series["rounds_phase1"].mean <= 10
        # Phase 2 runs only a few rounds.
        assert row.series["rounds_phase2"].mean <= 5
    # Stage I round count is flat-ish in N (driven by M when N >> M):
    stage1 = [row.series["rounds_stage1"].mean for row in rows]
    assert max(stage1) - min(stage1) <= 12
    _timed_unit(benchmark, num_buyers=320, num_channels=10)


def test_fig8b(benchmark, fig78_reps):
    rows = stage_rows("b", fig78_reps)
    print_panel(
        "Fig. 8(b): rounds per stage vs sellers (N=500)",
        rows,
        SERIES,
        "sellers",
        notes="paper: Phase 1 grows linearly with M; Stage I grows with M",
    )
    phase1 = [row.series["rounds_phase1"].mean for row in rows]
    # Phase 1 rounds grow with the number of sellers (O(M) bound)...
    assert phase1[-1] > phase1[0]
    # ...and never exceed M itself.
    for row, m in zip(rows, (4, 6, 8, 10, 12, 14, 16)):
        assert row.series["rounds_phase1"].mean <= m
    _timed_unit(benchmark, num_buyers=500, num_channels=16)


def test_fig8c(benchmark, fig78_reps):
    rows = stage_rows("c", fig78_reps)
    print_panel(
        "Fig. 8(c): rounds per stage vs similarity (M=8, N=300)",
        rows,
        SERIES,
        "similarity",
        include_srcc=True,
        notes="paper: roughly flat in similarity; Phase 2 a few rounds",
    )
    for row in rows:
        assert row.series["rounds_phase1"].mean <= 8  # O(M), M = 8
        assert row.series["rounds_phase2"].mean <= 5
    _timed_unit(benchmark, num_buyers=300, num_channels=8)
