"""Shared helpers for the benchmark modules.

Figs. 7 and 8 are two views of the same experiment (welfare vs rounds), so
their row data is computed once and cached here; whichever benchmark
module runs first pays the cost.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.analysis.experiments import ExperimentRow
from repro.analysis.paper_figures import figure_spec, run_figure
from repro.analysis.reporting import format_experiment_rows


@lru_cache(maxsize=None)
def stage_rows(panel: str, repetitions: int, seed: int = 0) -> Tuple[ExperimentRow, ...]:
    """Run (or fetch cached) Fig. 7/8 panel data."""
    spec = figure_spec(7, panel)
    return tuple(run_figure(spec, repetitions=repetitions, seed=seed))


def print_panel(
    title: str,
    rows,
    series_names,
    x_label: str,
    include_srcc: bool = False,
    notes: str = "",
) -> None:
    """Print one figure panel's reproduction table."""
    print()
    print(f"== {title} ==")
    if notes:
        print(notes)
    print(format_experiment_rows(rows, series_names, x_label, include_srcc))
