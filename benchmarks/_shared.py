"""Shared helpers for the benchmark modules.

Figs. 7 and 8 are two views of the same experiment (welfare vs rounds), so
their row data is computed once and cached here; whichever benchmark
module runs first pays the cost.

Set ``SPECTRUM_BENCH_METRICS_DIR=/some/dir`` to make each cached panel run
dump machine-readable observability artefacts next to the printed tables:
``fig78_<panel>_r<reps>_s<seed>.jsonl`` (the event trace with manifest),
``...metrics.json`` (the metrics-registry snapshot) and ``...om`` (the
same snapshot as OpenMetrics exposition text, scrapable/diffable with the
live-telemetry tooling).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.experiments import ExperimentRow
from repro.analysis.paper_figures import figure_spec, run_figure
from repro.analysis.reporting import format_experiment_rows
from repro.engine import Capability, list_solvers
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.obs import (
    JsonlEventSink,
    MetricsRegistry,
    Recorder,
    SpanTracer,
    build_manifest,
    use_recorder,
)
from repro.trace.export import to_openmetrics

#: Environment variable naming the metrics-dump directory (unset = off).
METRICS_DIR_ENV = "SPECTRUM_BENCH_METRICS_DIR"

#: Environment variable selecting the sweep worker count (unset = serial).
#: Results are worker-count independent, so this is excluded from the
#: ``stage_rows`` cache key on purpose.
JOBS_ENV = "SPECTRUM_BENCH_JOBS"


def bench_jobs() -> "int | None":
    """Worker count requested via ``SPECTRUM_BENCH_JOBS`` (None = serial)."""
    raw = os.environ.get(JOBS_ENV)
    return int(raw) if raw else None


# Bounded: the suite only ever asks for 3 panels x (bench, CLI-scaled)
# repetition counts, but an unbounded cache would pin every panel's row
# tuples (thousands of SeriesStats) for the whole pytest-benchmark
# session; 8 entries covers legitimate reuse and lets one-off sweeps age
# out.
@lru_cache(maxsize=8)
def stage_rows(panel: str, repetitions: int, seed: int = 0) -> Tuple[ExperimentRow, ...]:
    """Run (or fetch cached) Fig. 7/8 panel data."""
    spec = figure_spec(7, panel)
    jobs = bench_jobs()
    metrics_dir = os.environ.get(METRICS_DIR_ENV)
    if not metrics_dir:
        return tuple(
            run_figure(spec, repetitions=repetitions, seed=seed, jobs=jobs)
        )

    os.makedirs(metrics_dir, exist_ok=True)
    stem = os.path.join(metrics_dir, f"fig78_{panel}_r{repetitions}_s{seed}")
    manifest = build_manifest(
        seed=seed,
        config={"figure": 7, "panel": panel, "repetitions": repetitions},
    )
    recorder = Recorder(
        events=JsonlEventSink(f"{stem}.jsonl", manifest=manifest),
        metrics=MetricsRegistry(),
        spans=SpanTracer(),
    )
    with recorder, use_recorder(recorder):
        rows = tuple(
            run_figure(spec, repetitions=repetitions, seed=seed, jobs=jobs)
        )
    snapshot = recorder.metrics.snapshot()
    # Atomic: a crash mid-dump must not leave a torn artefact that
    # poisons later scrapes/diffs of the exposition.
    atomic_write_json(f"{stem}.metrics.json", snapshot, sort_keys=False)
    atomic_write_text(f"{stem}.om", to_openmetrics(snapshot))
    return rows


def registry_comparison(
    markets: Sequence[object],
    exclude_capabilities: Sequence[object] = (),
    variants: Optional[Mapping[str, Sequence[Tuple[str, object]]]] = None,
) -> Dict[str, float]:
    """Total welfare per registered solver across ``markets``.

    The registry *is* the comparison set: every solver from
    :func:`repro.engine.list_solvers` is measured unless one of its
    capabilities appears in ``exclude_capabilities`` (e.g. exclude
    ``Capability.EXACT`` when the markets exceed the exact solvers' size
    guards).  Registering a new backend benchmarks it with no change
    here.

    ``variants`` optionally expands one solver into several labelled
    runs: a mapping ``name -> [(label_suffix, config), ...]`` where each
    config is a mapping passed to ``solve`` or a callable
    ``market_index -> mapping`` (e.g. a per-market seed for the random
    baseline).

    Returns ``{label: total welfare}`` with ``label`` being the solver
    name plus the variant suffix.  Bound-only solvers contribute their
    bound.
    """
    excluded = {Capability(cap) for cap in exclude_capabilities}
    totals: Dict[str, float] = {}
    for solver in list_solvers():
        if excluded & set(solver.capabilities):
            continue
        for suffix, config in (variants or {}).get(solver.name, [("", None)]):
            total = 0.0
            for index, market in enumerate(markets):
                resolved = config(index) if callable(config) else config
                total += solver.solve(market, config=resolved).social_welfare
            totals[solver.name + suffix] = total
    return totals


def print_panel(
    title: str,
    rows,
    series_names,
    x_label: str,
    include_srcc: bool = False,
    notes: str = "",
) -> None:
    """Print one figure panel's reproduction table."""
    print()
    print(f"== {title} ==")
    if notes:
        print(notes)
    print(format_experiment_rows(rows, series_names, x_label, include_srcc))
