"""Baseline ablation: what does interference-aware matching buy?

Compares the proposed two-stage algorithm against every baseline in the
repository on mid-size paper-workload markets:

* centralised greedy (global knowledge, no stability) -- upper-ish bar;
* LP relaxation bound (upper bound on any matching's welfare);
* classic fixed-quota deferred acceptance (the college-admission strawman
  the paper's introduction argues against), repaired to feasibility, at
  several quotas;
* random feasible matching -- the floor.

Expected shape: proposed ~ greedy, well above quota-DA and random, and
both below the LP bound; quota-DA is poor for small quotas (under-use)
and for large quotas (repair losses), with no quota recovering the
interference-aware welfare.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._shared import registry_comparison
from repro.analysis.reporting import format_table
from repro.core.two_stage import run_two_stage
from repro.engine import Capability
from repro.workloads.scenarios import paper_simulation_market


def test_baseline_comparison(benchmark):
    num_markets = 6
    num_buyers, num_channels = 40, 6
    markets = [
        paper_simulation_market(
            num_buyers, num_channels, np.random.default_rng([600, seed])
        )
        for seed in range(num_markets)
    ]
    # The comparison set is the solver registry itself: exact solvers are
    # excluded (their size guards refuse N=40 instances) and so is the
    # message-passing runtime (same matchings as two_stage, much slower).
    totals = registry_comparison(
        markets,
        exclude_capabilities=(Capability.EXACT, Capability.DECENTRALIZED),
        variants={
            "college_admission": [
                (f" q={quota}", {"quota": quota}) for quota in (1, 4, 16)
            ],
            # Per-market rng, matching the historical [601, seed] stream.
            "random": [("", lambda index: {"seed": [601, index]})],
        },
    )

    rows = [[name, value / num_markets] for name, value in totals.items()]
    print()
    print(f"== Baselines on {num_markets} markets (N={num_buyers}, M={num_channels}) ==")
    print(format_table(["mechanism", "mean welfare"], rows))

    proposed = totals["two_stage"]
    assert proposed <= totals["lp_bound"] + 1e-6
    assert proposed > totals["random"]
    # Interference-aware matching beats the college-admission strawman at
    # every quota (the paper's core architectural argument).
    for quota in (1, 4, 16):
        assert proposed > totals[f"college_admission q={quota}"]
    # And lands in the same league as the centralised greedy.
    assert proposed >= 0.9 * totals["greedy"]

    market = paper_simulation_market(
        num_buyers, num_channels, np.random.default_rng(602)
    )
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=5,
        iterations=1,
    )


def test_stage_two_contribution(benchmark):
    """Ablate Stage II itself: how much welfare do transfers/invites add?

    Reproduction finding (documented in EXPERIMENTS.md): on the paper's
    *random geometric* workloads a faithful Stage I with MWIS coalition
    re-optimisation already lands in a (near-)Nash-stable state, so Stage
    II's average welfare contribution is negligible -- its role there is
    the worst-case guarantee.  On adversarial instances (the paper's own
    toy example) Stage II contributes a double-digit improvement
    (27 -> 30, +11%).  This bench measures both regimes.
    """
    from repro.workloads.scenarios import toy_example_market

    # Crafted instance: the paper's toy example.
    toy = toy_example_market()
    toy_result = run_two_stage(toy, record_trace=False)
    toy_gain = (
        toy_result.welfare_phase2 - toy_result.welfare_stage1
    ) / toy_result.welfare_stage1

    # Random paper workloads.
    num_markets = 10
    stage1_total = 0.0
    final_total = 0.0
    for seed in range(num_markets):
        market = paper_simulation_market(
            60, 8, np.random.default_rng([603, seed])
        )
        result = run_two_stage(market, record_trace=False)
        stage1_total += result.welfare_stage1
        final_total += result.welfare_phase2
    random_gain = (final_total - stage1_total) / stage1_total

    print()
    print("== Stage II contribution: crafted vs random workloads ==")
    print(
        format_table(
            ["workload", "Stage I welfare", "final welfare", "relative gain"],
            [
                ["toy example (crafted)", toy_result.welfare_stage1,
                 toy_result.welfare_phase2, toy_gain],
                ["random geometric (N=60, M=8, mean)",
                 stage1_total / num_markets, final_total / num_markets,
                 random_gain],
            ],
        )
    )
    # Stage II never hurts anywhere...
    assert final_total >= stage1_total - 1e-9
    assert random_gain >= -1e-12
    # ...and on the crafted instance it contributes the paper's 27 -> 30.
    assert toy_gain == pytest.approx(3.0 / 27.0)

    market = paper_simulation_market(60, 8, np.random.default_rng(604))
    benchmark.pedantic(
        lambda: run_two_stage(market, record_trace=False),
        rounds=5,
        iterations=1,
    )
