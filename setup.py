"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file only exists so the package
can be installed editable in offline environments whose tooling lacks the
``wheel`` package required by the PEP 517 editable path
(``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
