# Convenience targets for the spectrum-matching reproduction.

.PHONY: install test bench trace figures examples clean

install:
	pip install -e . || python setup.py develop

# The tier-1 verification command: works from a clean checkout without an
# editable install (PYTHONPATH=src puts the package on the path).
test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -x -q

bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest benchmarks/ --benchmark-only

# Observability demo: replay the paper's toy example while streaming the
# JSONL event trace (manifest first) and printing the metrics summary.
trace:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro.cli toy \
	  --trace-out /tmp/spectrum-matching-toy.jsonl --metrics
	@echo "--- first trace lines ---"
	@head -3 /tmp/spectrum-matching-toy.jsonl

# Regenerate every paper figure at canonical repetitions (slow-ish).
figures:
	@for fig in 6 7 8; do \
	  for panel in a b c; do \
	    spectrum-matching fig$$fig --panel $$panel; echo; \
	  done; \
	done

examples:
	@for script in examples/*.py; do \
	  echo "=== $$script ==="; python $$script; echo; \
	done

clean:
	rm -rf .pytest_cache .hypothesis build src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
