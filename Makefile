# Convenience targets for the spectrum-matching reproduction.

.PHONY: install test bench figures examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper figure at canonical repetitions (slow-ish).
figures:
	@for fig in 6 7 8; do \
	  for panel in a b c; do \
	    spectrum-matching fig$$fig --panel $$panel; echo; \
	  done; \
	done

examples:
	@for script in examples/*.py; do \
	  echo "=== $$script ==="; python $$script; echo; \
	done

clean:
	rm -rf .pytest_cache .hypothesis build src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
