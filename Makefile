# Convenience targets for the spectrum-matching reproduction.

.PHONY: install test bench perf perf-check trace figures examples clean

install:
	pip install -e . || python setup.py develop

# The tier-1 verification command: works from a clean checkout without an
# editable install (PYTHONPATH=src puts the package on the path).
test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest -x -q

bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m pytest benchmarks/ --benchmark-only

# Regenerate the perf baselines (BENCH_kernels.json / BENCH_sweep.json).
perf:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python benchmarks/perf_harness.py

# Fresh perf run into a scratch dir, compared against the baselines;
# fails on >25% regression.
perf-check:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python benchmarks/perf_harness.py --output-dir /tmp/spectrum-bench
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python benchmarks/compare_perf.py /tmp/spectrum-bench

# Observability demo: replay the paper's toy example while streaming the
# JSONL event trace (manifest first) and printing the metrics summary.
trace:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro.cli toy \
	  --trace-out /tmp/spectrum-matching-toy.jsonl --metrics
	@echo "--- first trace lines ---"
	@head -3 /tmp/spectrum-matching-toy.jsonl

# Regenerate every paper figure at canonical repetitions (slow-ish).
figures:
	@for fig in 6 7 8; do \
	  for panel in a b c; do \
	    spectrum-matching fig$$fig --panel $$panel; echo; \
	  done; \
	done

examples:
	@for script in examples/*.py; do \
	  echo "=== $$script ==="; python $$script; echo; \
	done

clean:
	rm -rf .pytest_cache .hypothesis build src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
