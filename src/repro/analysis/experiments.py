"""Experiment harness reproducing the paper's evaluation sweeps.

Two experiment families cover every panel of Figs. 6-8:

* :func:`optimal_comparison_series` (Fig. 6 a/b/c) -- proposed two-stage
  algorithm vs the exact optimal matching on small markets, sweeping the
  number of buyers, the number of sellers, or the price similarity.
* :func:`stage_breakdown_series` (Figs. 7 and 8 a/b/c) -- cumulative
  welfare and per-stage round counts of the two-stage algorithm on large
  markets, over the same three sweep axes.

Both functions are deterministic in their ``seed``: every (sweep value,
repetition) pair derives an independent :class:`numpy.random.Generator`
from ``[seed, value_index, repetition]``, so adding repetitions never
perturbs earlier ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.parallel import parallel_map, resolve_jobs
from repro.analysis.stats import SeriesStats, summarize
from repro.engine.registry import get_solver
from repro.errors import SpectrumMatchingError
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder, resolve_recorder, use_recorder
from repro.workloads.scenarios import paper_simulation_market
from repro.workloads.similarity import average_pairwise_srcc
from repro.workloads.utilities import permutation_level_for_similarity

__all__ = [
    "SweepAxis",
    "ExperimentRow",
    "optimal_comparison_series",
    "stage_breakdown_series",
    "solver_grid_series",
    "stage1_variant_series",
]

#: Registry name of the benchmark solver historically selected by
#: ``use_bruteforce=False`` (the default exact backend for Fig. 6).
DEFAULT_OPTIMAL_SOLVER = "branch_and_bound"


class SweepAxis(str, enum.Enum):
    """The three x-axes used across Figs. 6-8."""

    BUYERS = "buyers"  # panels (a): sweep N
    SELLERS = "sellers"  # panels (b): sweep M
    SIMILARITY = "similarity"  # panels (c): sweep price similarity


@dataclass(frozen=True)
class ExperimentRow:
    """One x-axis point of a figure.

    Attributes
    ----------
    x:
        The sweep value (N, M, or nominal target similarity).
    series:
        Named aggregated measurements (e.g. ``"welfare_proposed"``).
    measured_srcc:
        Mean measured average-pairwise SRCC of the generated utility
        matrices (populated on similarity sweeps; the paper's x-axis is
        the *achieved* similarity, so reports show both).
    """

    x: float
    series: Dict[str, SeriesStats]
    measured_srcc: Optional[float] = None


def _market_params(
    axis: SweepAxis,
    value: float,
    num_buyers: Optional[int],
    num_channels: Optional[int],
) -> tuple:
    """Resolve (N, M, permutation_level) for a sweep point."""
    if axis is SweepAxis.BUYERS:
        if num_channels is None:
            raise SpectrumMatchingError("buyer sweep needs a fixed num_channels")
        return int(value), num_channels, None
    if axis is SweepAxis.SELLERS:
        if num_buyers is None:
            raise SpectrumMatchingError("seller sweep needs a fixed num_buyers")
        return num_buyers, int(value), None
    if axis is SweepAxis.SIMILARITY:
        if num_buyers is None or num_channels is None:
            raise SpectrumMatchingError(
                "similarity sweep needs fixed num_buyers and num_channels"
            )
        level = permutation_level_for_similarity(float(value), num_channels)
        return num_buyers, num_channels, level
    raise SpectrumMatchingError(f"unknown sweep axis {axis!r}")


def _rng_for(
    axis: SweepAxis, seed: int, value_index: int, repetition: int
) -> np.random.Generator:
    """Derive the generator for one (sweep value, repetition) market.

    Similarity sweeps use *common random numbers*: the generator depends
    only on the repetition, so every similarity level is evaluated on the
    identical deployment and the identical sorted utility base (the
    m-permutation is the only difference).  Without this, the between-
    deployment variance (driven by random channel ranges) dwarfs the
    similarity effect and the Fig. 6(c)/7(c) trends drown in noise.
    """
    if axis is SweepAxis.SIMILARITY:
        return np.random.default_rng([seed, repetition])
    return np.random.default_rng([seed, value_index, repetition])


@dataclass(frozen=True)
class _RepetitionTask:
    """One (sweep value, repetition) unit of work, fully self-describing.

    Instances are plain picklable dataclasses so the identical task can
    run in the calling process (serial sweeps) or a worker process
    (``jobs > 1``) -- the rng derivation travels with the task, which is
    what makes results independent of the worker count.
    """

    kind: str  # "optimal_comparison" | "stage_breakdown" | "solver_grid"
    axis: SweepAxis
    seed: int
    value_index: int
    repetition: int
    num_buyers: int
    num_channels: int
    permutation_level: Optional[int]
    #: Benchmark solver for ``optimal_comparison`` (a registry name).
    solver: str = DEFAULT_OPTIMAL_SOLVER
    #: Solvers measured by ``solver_grid`` (registry names).
    solvers: Tuple[str, ...] = ()
    #: Optional per-solver config mappings, keyed by registry name.
    solver_configs: Optional[Dict[str, Dict[str, object]]] = field(
        default=None, compare=False
    )
    collect_metrics: bool = False


def _measure(task: _RepetitionTask, market, out: Dict[str, object]) -> None:
    """Run the task's solvers on ``market`` and fill ``out`` with floats.

    Every solve goes through the engine registry -- there is no
    backend-specific dispatch here; the task carries registry *names*.
    """
    if task.kind == "optimal_comparison":
        proposed = get_solver("two_stage").solve(market)
        best_welfare = get_solver(task.solver).solve(market).social_welfare
        out["proposed"] = proposed.social_welfare
        out["optimal"] = best_welfare
        out["ratio"] = (
            proposed.social_welfare / best_welfare if best_welfare > 0 else 1.0
        )
    elif task.kind == "stage_breakdown":
        report = get_solver("two_stage").solve(market)
        for name in (
            "welfare_stage1",
            "welfare_phase1",
            "welfare_phase2",
            "rounds_stage1",
            "rounds_phase1",
            "rounds_phase2",
        ):
            out[name] = float(report.metadata[name])
    elif task.kind == "solver_grid":
        configs = task.solver_configs or {}
        for name in task.solvers:
            report = get_solver(name).solve(market, config=configs.get(name))
            out[f"welfare_{name}"] = report.social_welfare
    else:  # pragma: no cover - guarded by the series functions
        raise SpectrumMatchingError(f"unknown task kind {task.kind!r}")


def _run_repetition(task: _RepetitionTask) -> Dict[str, object]:
    """Execute one repetition and return its measurements as plain floats.

    Shared verbatim by the serial and parallel paths.  When
    ``task.collect_metrics`` is set (parallel sweeps under a live
    ambient recorder), the repetition runs under a local, process-private
    :class:`MetricsRegistry` whose snapshot is returned with the sample
    for the parent to merge -- per-round *events* are not streamed back
    (the parent's sink would interleave workers non-deterministically);
    only metrics cross the process boundary.
    """
    rng = _rng_for(task.axis, task.seed, task.value_index, task.repetition)
    market = paper_simulation_market(
        task.num_buyers,
        task.num_channels,
        rng,
        permutation_level=task.permutation_level,
    )
    out: Dict[str, object] = {}
    if task.permutation_level is not None:
        out["srcc"] = average_pairwise_srcc(market.utilities)
    if task.collect_metrics:
        registry = MetricsRegistry()
        with use_recorder(Recorder(metrics=registry)):
            _measure(task, market, out)
        out["metrics"] = registry.snapshot()
    else:
        _measure(task, market, out)
    return out


def _run_tasks(
    tasks: List[_RepetitionTask], jobs: Optional[int]
) -> List[Dict[str, object]]:
    """Run a task list serially or across workers, merging worker metrics.

    The serial path (``resolve_jobs(jobs) == 1``) executes in-process
    under the ambient recorder, byte-identical to the historical sweeps.
    The parallel path asks workers to collect local metric snapshots iff
    the ambient metrics registry is live, then merges them in submission
    order so parallel and serial runs report the same aggregate metrics.
    """
    worker_count = resolve_jobs(jobs)
    if worker_count == 1:
        return [_run_repetition(task) for task in tasks]
    recorder = resolve_recorder(None)
    collect = recorder.metrics.enabled
    if collect:
        tasks = [
            dataclass_replace(task, collect_metrics=True) for task in tasks
        ]
    results = parallel_map(_run_repetition, tasks, jobs=worker_count)
    if collect:
        for sample in results:
            recorder.metrics.merge(sample.pop("metrics"))
    return results


def _resolve_optimal_solver(
    solver: Optional[str], use_bruteforce: Optional[bool]
) -> str:
    """Fold the deprecated ``use_bruteforce`` flag into a registry name.

    Delegates to :meth:`repro.run.spec.EngineSpec.from_use_bruteforce`
    so the deprecation warning, the conflict diagnostic and the mapping
    live in exactly one place (the CLI's ``repro run`` path shares it).
    """
    from repro.run.spec import EngineSpec

    return EngineSpec.from_use_bruteforce(
        use_bruteforce,
        solver=solver,
        default=DEFAULT_OPTIMAL_SOLVER,
        stacklevel=4,
    ).name


def optimal_comparison_series(
    axis: SweepAxis,
    values: Sequence[float],
    num_buyers: Optional[int] = None,
    num_channels: Optional[int] = None,
    repetitions: int = 50,
    seed: int = 0,
    use_bruteforce: Optional[bool] = None,
    jobs: Optional[int] = None,
    solver: Optional[str] = None,
) -> List[ExperimentRow]:
    """Fig. 6: proposed algorithm vs exact optimal matching.

    Produces, per sweep value, the aggregated series
    ``welfare_proposed``, ``welfare_optimal`` and ``welfare_ratio``
    (proposed / optimal, the paper's ">90 %" headline quantity).

    Parameters
    ----------
    axis / values:
        What to sweep and over which values.
    num_buyers / num_channels:
        The fixed dimension(s); see :class:`SweepAxis`.
    repetitions:
        Monte-Carlo repetitions per point.
    seed:
        Base seed (see module docstring for the derivation scheme).
    use_bruteforce:
        Deprecated -- use ``solver=``.  ``True`` meant the paper's
        footnote-4 enumeration, ``False`` branch and bound; the flag now
        warns and maps onto the equivalent registry name.
    jobs:
        Worker processes (``None``/1 serial, 0 = all cores).  Results are
        identical for every worker count; see
        :mod:`repro.analysis.parallel`.
    solver:
        Registry name of the benchmark solver to compare against
        (default ``"branch_and_bound"``; the paper's own method is
        ``"bruteforce"`` -- same answers, slower).
    """
    benchmark = _resolve_optimal_solver(solver, use_bruteforce)
    tasks: List[_RepetitionTask] = []
    params: List[tuple] = []
    for value_index, value in enumerate(values):
        n, m, level = _market_params(axis, value, num_buyers, num_channels)
        params.append((value, level))
        for rep in range(repetitions):
            tasks.append(
                _RepetitionTask(
                    kind="optimal_comparison",
                    axis=axis,
                    seed=seed,
                    value_index=value_index,
                    repetition=rep,
                    num_buyers=n,
                    num_channels=m,
                    permutation_level=level,
                    solver=benchmark,
                )
            )
    samples = _run_tasks(tasks, jobs)
    rows: List[ExperimentRow] = []
    for value_index, (value, level) in enumerate(params):
        chunk = samples[value_index * repetitions : (value_index + 1) * repetitions]
        srccs = [s["srcc"] for s in chunk if "srcc" in s]
        rows.append(
            ExperimentRow(
                x=float(value),
                series={
                    "welfare_proposed": summarize([s["proposed"] for s in chunk]),
                    "welfare_optimal": summarize([s["optimal"] for s in chunk]),
                    "welfare_ratio": summarize([s["ratio"] for s in chunk]),
                },
                measured_srcc=float(np.mean(srccs)) if srccs else None,
            )
        )
    return rows


def stage_breakdown_series(
    axis: SweepAxis,
    values: Sequence[float],
    num_buyers: Optional[int] = None,
    num_channels: Optional[int] = None,
    repetitions: int = 10,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> List[ExperimentRow]:
    """Figs. 7 and 8: per-stage welfare and running time on large markets.

    Produces, per sweep value, the cumulative-welfare series
    ``welfare_stage1`` / ``welfare_phase1`` / ``welfare_phase2`` (Fig. 7)
    and the per-stage round counts ``rounds_stage1`` / ``rounds_phase1`` /
    ``rounds_phase2`` (Fig. 8) from the *same* runs, since the paper's two
    figures are two views of one experiment.  ``jobs`` selects the worker
    count exactly as in :func:`optimal_comparison_series`.
    """
    _SERIES = (
        "welfare_stage1",
        "welfare_phase1",
        "welfare_phase2",
        "rounds_stage1",
        "rounds_phase1",
        "rounds_phase2",
    )
    tasks: List[_RepetitionTask] = []
    params: List[tuple] = []
    for value_index, value in enumerate(values):
        n, m, level = _market_params(axis, value, num_buyers, num_channels)
        params.append((value, level))
        for rep in range(repetitions):
            tasks.append(
                _RepetitionTask(
                    kind="stage_breakdown",
                    axis=axis,
                    seed=seed,
                    value_index=value_index,
                    repetition=rep,
                    num_buyers=n,
                    num_channels=m,
                    permutation_level=level,
                )
            )
    samples = _run_tasks(tasks, jobs)
    rows: List[ExperimentRow] = []
    for value_index, (value, level) in enumerate(params):
        chunk = samples[value_index * repetitions : (value_index + 1) * repetitions]
        srccs = [s["srcc"] for s in chunk if "srcc" in s]
        rows.append(
            ExperimentRow(
                x=float(value),
                series={
                    name: summarize([s[name] for s in chunk]) for name in _SERIES
                },
                measured_srcc=float(np.mean(srccs)) if srccs else None,
            )
        )
    return rows


def solver_grid_series(
    axis: SweepAxis,
    values: Sequence[float],
    solvers: Sequence[str],
    num_buyers: Optional[int] = None,
    num_channels: Optional[int] = None,
    repetitions: int = 10,
    seed: int = 0,
    jobs: Optional[int] = None,
    solver_configs: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[ExperimentRow]:
    """Sweep any set of registered solvers over one axis.

    The generalisation of :func:`optimal_comparison_series`: every
    repetition generates one market (same rng derivation as the other
    sweeps, so grids compose with existing results) and runs *all* of
    ``solvers`` on it, producing a ``welfare_<name>`` series per solver.
    New backends join a grid by registry name alone -- no change here.

    Parameters
    ----------
    solvers:
        Registry names to measure (e.g. ``["two_stage", "greedy",
        "lp_bound"]``).  Unknown names fail fast on the first repetition
        with the registry's actionable error.
    solver_configs:
        Optional per-solver config mappings, keyed by registry name
        (e.g. ``{"college_admission": {"quota": 4}}``).  Values must be
        picklable for parallel runs.
    repetitions / seed / jobs:
        As in :func:`optimal_comparison_series`.
    """
    names = tuple(solvers)
    if not names:
        raise SpectrumMatchingError("solver_grid_series needs at least one solver")
    configs = (
        {name: dict(cfg) for name, cfg in solver_configs.items()}
        if solver_configs
        else None
    )
    tasks: List[_RepetitionTask] = []
    params: List[tuple] = []
    for value_index, value in enumerate(values):
        n, m, level = _market_params(axis, value, num_buyers, num_channels)
        params.append((value, level))
        for rep in range(repetitions):
            tasks.append(
                _RepetitionTask(
                    kind="solver_grid",
                    axis=axis,
                    seed=seed,
                    value_index=value_index,
                    repetition=rep,
                    num_buyers=n,
                    num_channels=m,
                    permutation_level=level,
                    solvers=names,
                    solver_configs=configs,
                )
            )
    samples = _run_tasks(tasks, jobs)
    rows: List[ExperimentRow] = []
    for value_index, (value, level) in enumerate(params):
        chunk = samples[value_index * repetitions : (value_index + 1) * repetitions]
        srccs = [s["srcc"] for s in chunk if "srcc" in s]
        rows.append(
            ExperimentRow(
                x=float(value),
                series={
                    f"welfare_{name}": summarize(
                        [s[f"welfare_{name}"] for s in chunk]
                    )
                    for name in names
                },
                measured_srcc=float(np.mean(srccs)) if srccs else None,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Shared-memory market sweeps
# ----------------------------------------------------------------------
#
# The sweeps above regenerate a *different* market per repetition, so
# each task carries only a seed.  Variant sweeps invert the shape: one
# (possibly very large) market, many algorithm variants run against it.
# Shipping that market through the task pickle per variant is exactly
# the per-task copying parallel_map's ``shared=`` transport exists to
# remove: the parent publishes the utility matrix and the per-channel
# interference edge lists once, workers attach by segment name, and
# each task is just a variant descriptor.

#: Per-process cache of markets rebuilt from attached shared arrays,
#: keyed by id() of the (cached, process-stable) attachment dict.  The
#: entry pins the dict so the id cannot be recycled while cached.
_SHARED_MARKET_CACHE: Dict[int, Tuple[object, object]] = {}


def market_shared_arrays(market) -> Dict[str, np.ndarray]:
    """Flatten a market into the arrays ``stage1_variant_series`` ships.

    ``utilities`` is the ``(N, M)`` price matrix; the per-channel
    interference graphs travel as one concatenated undirected edge list
    (``edges_u`` / ``edges_v``) sliced by ``edges_indptr`` (length
    ``M + 1``), the usual CSR-of-channels layout.
    """
    u_parts: List[np.ndarray] = []
    v_parts: List[np.ndarray] = []
    counts = [0]
    for channel in range(market.num_channels):
        u, v = market.interference.graph(channel).edge_arrays()
        u_parts.append(u)
        v_parts.append(v)
        counts.append(u.size)
    empty = np.empty(0, dtype=np.int32)
    return {
        "utilities": np.asarray(market.utilities, dtype=np.float64),
        "edges_u": np.concatenate(u_parts) if u_parts else empty,
        "edges_v": np.concatenate(v_parts) if v_parts else empty,
        "edges_indptr": np.cumsum(counts, dtype=np.int64),
    }


def _market_from_shared(
    arrays: Mapping[str, np.ndarray], algorithm: str
):
    """Rebuild a market from attached arrays (graphs cached per bundle)."""
    from repro.core.market import SpectrumMarket
    from repro.interference.graph import InterferenceGraph, InterferenceMap
    from repro.interference.mwis import MwisAlgorithm

    key = id(arrays)
    cached = _SHARED_MARKET_CACHE.get(key)
    if cached is None or cached[0] is not arrays:
        utilities = arrays["utilities"]
        indptr = arrays["edges_indptr"]
        graphs = [
            InterferenceGraph.from_edge_arrays(
                utilities.shape[0],
                arrays["edges_u"][indptr[i] : indptr[i + 1]],
                arrays["edges_v"][indptr[i] : indptr[i + 1]],
            )
            for i in range(indptr.size - 1)
        ]
        cached = (arrays, InterferenceMap(graphs))
        _SHARED_MARKET_CACHE[key] = cached
    return SpectrumMarket(
        np.array(arrays["utilities"], dtype=np.float64),
        cached[1],
        mwis_algorithm=MwisAlgorithm(algorithm),
    )


@dataclass(frozen=True)
class _StageOneVariant:
    """One Stage-I configuration to run against the shared market."""

    algorithm: str
    monotone_guard: bool


def _stage1_variant_task(
    variant: _StageOneVariant, arrays: Mapping[str, np.ndarray]
) -> Dict[str, float]:
    """Run one Stage-I variant on the shared market; return plain floats."""
    from repro.core.deferred_acceptance import deferred_acceptance

    market = _market_from_shared(arrays, variant.algorithm)
    result = deferred_acceptance(
        market, record_trace=False, monotone_guard=variant.monotone_guard
    )
    return {
        "welfare": float(
            result.matching.social_welfare(market.utilities)
        ),
        "rounds": float(result.num_rounds),
        "proposals": float(result.total_proposals),
        "matched": float(result.matching.num_matched()),
    }


def stage1_variant_series(
    market,
    algorithms: Sequence[str] = ("gwmin", "gwmin2"),
    guards: Sequence[bool] = (True, False),
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Run Stage I under every (MWIS algorithm, guard) variant.

    The market is published to workers through shared memory exactly
    once; each task ships only its variant descriptor, so the cost per
    variant is the solve itself even for ``N`` in the tens of
    thousands.  Serial (``jobs in (None, 1)``) and parallel runs return
    identical rows: the tasks are pure functions of (market, variant)
    and results come back in submission order.

    Returns one dict per variant: ``algorithm``, ``monotone_guard``,
    and the measurements of :func:`_stage1_variant_task`.
    """
    variants = [
        _StageOneVariant(algorithm=str(a), monotone_guard=bool(g))
        for a in algorithms
        for g in guards
    ]
    if not variants:
        raise SpectrumMatchingError(
            "stage1_variant_series needs at least one algorithm and guard"
        )
    samples = parallel_map(
        _stage1_variant_task,
        variants,
        jobs=jobs,
        shared=market_shared_arrays(market),
    )
    return [
        {
            "algorithm": variant.algorithm,
            "monotone_guard": variant.monotone_guard,
            **sample,
        }
        for variant, sample in zip(variants, samples)
    ]
