"""Experiment harness reproducing the paper's evaluation sweeps.

Two experiment families cover every panel of Figs. 6-8:

* :func:`optimal_comparison_series` (Fig. 6 a/b/c) -- proposed two-stage
  algorithm vs the exact optimal matching on small markets, sweeping the
  number of buyers, the number of sellers, or the price similarity.
* :func:`stage_breakdown_series` (Figs. 7 and 8 a/b/c) -- cumulative
  welfare and per-stage round counts of the two-stage algorithm on large
  markets, over the same three sweep axes.

Both functions are deterministic in their ``seed``: every (sweep value,
repetition) pair derives an independent :class:`numpy.random.Generator`
from ``[seed, value_index, repetition]``, so adding repetitions never
perturbs earlier ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import SeriesStats, summarize
from repro.core.two_stage import run_two_stage
from repro.errors import SpectrumMatchingError
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.bruteforce import optimal_matching_bruteforce
from repro.workloads.scenarios import paper_simulation_market
from repro.workloads.similarity import average_pairwise_srcc
from repro.workloads.utilities import permutation_level_for_similarity

__all__ = [
    "SweepAxis",
    "ExperimentRow",
    "optimal_comparison_series",
    "stage_breakdown_series",
]


class SweepAxis(str, enum.Enum):
    """The three x-axes used across Figs. 6-8."""

    BUYERS = "buyers"  # panels (a): sweep N
    SELLERS = "sellers"  # panels (b): sweep M
    SIMILARITY = "similarity"  # panels (c): sweep price similarity


@dataclass(frozen=True)
class ExperimentRow:
    """One x-axis point of a figure.

    Attributes
    ----------
    x:
        The sweep value (N, M, or nominal target similarity).
    series:
        Named aggregated measurements (e.g. ``"welfare_proposed"``).
    measured_srcc:
        Mean measured average-pairwise SRCC of the generated utility
        matrices (populated on similarity sweeps; the paper's x-axis is
        the *achieved* similarity, so reports show both).
    """

    x: float
    series: Dict[str, SeriesStats]
    measured_srcc: Optional[float] = None


def _market_params(
    axis: SweepAxis,
    value: float,
    num_buyers: Optional[int],
    num_channels: Optional[int],
) -> tuple:
    """Resolve (N, M, permutation_level) for a sweep point."""
    if axis is SweepAxis.BUYERS:
        if num_channels is None:
            raise SpectrumMatchingError("buyer sweep needs a fixed num_channels")
        return int(value), num_channels, None
    if axis is SweepAxis.SELLERS:
        if num_buyers is None:
            raise SpectrumMatchingError("seller sweep needs a fixed num_buyers")
        return num_buyers, int(value), None
    if axis is SweepAxis.SIMILARITY:
        if num_buyers is None or num_channels is None:
            raise SpectrumMatchingError(
                "similarity sweep needs fixed num_buyers and num_channels"
            )
        level = permutation_level_for_similarity(float(value), num_channels)
        return num_buyers, num_channels, level
    raise SpectrumMatchingError(f"unknown sweep axis {axis!r}")


def _rng_for(
    axis: SweepAxis, seed: int, value_index: int, repetition: int
) -> np.random.Generator:
    """Derive the generator for one (sweep value, repetition) market.

    Similarity sweeps use *common random numbers*: the generator depends
    only on the repetition, so every similarity level is evaluated on the
    identical deployment and the identical sorted utility base (the
    m-permutation is the only difference).  Without this, the between-
    deployment variance (driven by random channel ranges) dwarfs the
    similarity effect and the Fig. 6(c)/7(c) trends drown in noise.
    """
    if axis is SweepAxis.SIMILARITY:
        return np.random.default_rng([seed, repetition])
    return np.random.default_rng([seed, value_index, repetition])


def optimal_comparison_series(
    axis: SweepAxis,
    values: Sequence[float],
    num_buyers: Optional[int] = None,
    num_channels: Optional[int] = None,
    repetitions: int = 50,
    seed: int = 0,
    use_bruteforce: bool = False,
) -> List[ExperimentRow]:
    """Fig. 6: proposed algorithm vs exact optimal matching.

    Produces, per sweep value, the aggregated series
    ``welfare_proposed``, ``welfare_optimal`` and ``welfare_ratio``
    (proposed / optimal, the paper's ">90 %" headline quantity).

    Parameters
    ----------
    axis / values:
        What to sweep and over which values.
    num_buyers / num_channels:
        The fixed dimension(s); see :class:`SweepAxis`.
    repetitions:
        Monte-Carlo repetitions per point.
    seed:
        Base seed (see module docstring for the derivation scheme).
    use_bruteforce:
        Solve the optimum by raw enumeration (the paper's footnote-4
        method) instead of branch and bound.  Same answers, slower; kept
        selectable for the cross-validation tests.
    """
    solve = (
        optimal_matching_bruteforce if use_bruteforce else optimal_matching_branch_and_bound
    )
    rows: List[ExperimentRow] = []
    for value_index, value in enumerate(values):
        n, m, level = _market_params(axis, value, num_buyers, num_channels)
        proposed: List[float] = []
        optimal: List[float] = []
        ratios: List[float] = []
        srccs: List[float] = []
        for rep in range(repetitions):
            rng = _rng_for(axis, seed, value_index, rep)
            market = paper_simulation_market(n, m, rng, permutation_level=level)
            if level is not None:
                srccs.append(average_pairwise_srcc(market.utilities))
            result = run_two_stage(market, record_trace=False)
            best = solve(market)
            best_welfare = best.social_welfare(market.utilities)
            proposed.append(result.social_welfare)
            optimal.append(best_welfare)
            ratios.append(
                result.social_welfare / best_welfare if best_welfare > 0 else 1.0
            )
        rows.append(
            ExperimentRow(
                x=float(value),
                series={
                    "welfare_proposed": summarize(proposed),
                    "welfare_optimal": summarize(optimal),
                    "welfare_ratio": summarize(ratios),
                },
                measured_srcc=float(np.mean(srccs)) if srccs else None,
            )
        )
    return rows


def stage_breakdown_series(
    axis: SweepAxis,
    values: Sequence[float],
    num_buyers: Optional[int] = None,
    num_channels: Optional[int] = None,
    repetitions: int = 10,
    seed: int = 0,
) -> List[ExperimentRow]:
    """Figs. 7 and 8: per-stage welfare and running time on large markets.

    Produces, per sweep value, the cumulative-welfare series
    ``welfare_stage1`` / ``welfare_phase1`` / ``welfare_phase2`` (Fig. 7)
    and the per-stage round counts ``rounds_stage1`` / ``rounds_phase1`` /
    ``rounds_phase2`` (Fig. 8) from the *same* runs, since the paper's two
    figures are two views of one experiment.
    """
    rows: List[ExperimentRow] = []
    for value_index, value in enumerate(values):
        n, m, level = _market_params(axis, value, num_buyers, num_channels)
        samples: Dict[str, List[float]] = {
            "welfare_stage1": [],
            "welfare_phase1": [],
            "welfare_phase2": [],
            "rounds_stage1": [],
            "rounds_phase1": [],
            "rounds_phase2": [],
        }
        srccs: List[float] = []
        for rep in range(repetitions):
            rng = _rng_for(axis, seed, value_index, rep)
            market = paper_simulation_market(n, m, rng, permutation_level=level)
            if level is not None:
                srccs.append(average_pairwise_srcc(market.utilities))
            result = run_two_stage(market, record_trace=False)
            samples["welfare_stage1"].append(result.welfare_stage1)
            samples["welfare_phase1"].append(result.welfare_phase1)
            samples["welfare_phase2"].append(result.welfare_phase2)
            samples["rounds_stage1"].append(float(result.rounds_stage1))
            samples["rounds_phase1"].append(float(result.rounds_phase1))
            samples["rounds_phase2"].append(float(result.rounds_phase2))
        rows.append(
            ExperimentRow(
                x=float(value),
                series={name: summarize(data) for name, data in samples.items()},
                measured_srcc=float(np.mean(srccs)) if srccs else None,
            )
        )
    return rows
