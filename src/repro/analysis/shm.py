"""Zero-copy numpy array transport for persistent worker pools.

:func:`repro.analysis.parallel.parallel_map` historically shipped every
byte of every task through the pickle pipe.  For sweeps over one large
shared market that is pure waste: the market's arrays are identical for
every task, so the parent should publish them *once* and tasks should
carry only indices and seeds.  This module is that transport:

* :class:`SharedArrayBundle` copies a mapping of numpy arrays into
  named POSIX shared-memory segments (``/dev/shm`` on Linux) and hands
  out a tiny picklable :class:`SharedArrayManifest` describing them.
* Workers call :func:`attach` with the manifest and get read-only numpy
  views of the *same physical pages* -- no copy, no pickling, attached
  lazily and cached per process so a persistent worker maps each bundle
  exactly once no matter how many tasks it runs.

Lifecycle is strictly creator-owned: the parent that published the
bundle unlinks it (``close()``), normally from a ``finally`` block so
segments never outlive the sweep -- including when the sweep dies with
an exception or a worker is SIGKILLed mid-task.  A ``weakref.finalize``
guard also unlinks on garbage collection / interpreter exit, so even a
bundle leaked by buggy calling code cannot survive the process.
Workers never unlink: their attached segments are unregistered from the
per-process :mod:`multiprocessing.resource_tracker` (the tracker would
otherwise "helpfully" destroy the creator's segments when the *worker*
exits, the classic double-unlink footgun).
"""

from __future__ import annotations

import multiprocessing
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import SpectrumMatchingError

__all__ = [
    "SharedArrayBundle",
    "SharedArrayManifest",
    "attach",
    "clear_attach_cache",
]


@dataclass(frozen=True)
class _SegmentSpec:
    """One published array: segment name + how to view it as numpy."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedArrayManifest:
    """Picklable description of a published bundle.

    A few hundred bytes regardless of array sizes -- this is what rides
    the task pipe instead of the arrays themselves.  ``token`` is unique
    per bundle and keys the worker-side attach cache.
    """

    token: str
    segments: Tuple[Tuple[str, _SegmentSpec], ...]

    def keys(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.segments)


def _unregister_from_tracker(shm: shared_memory.SharedMemory) -> None:
    """Detach a worker-side mapping from its resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker.  Under the default *fork* start method
    the worker inherits the creator's tracker, whose cache is a set --
    the duplicate register is a no-op and the creator's ``unlink``
    cleans the single entry, so unregistering here would instead strip
    the creator's own registration (and the tracker then logs KeyError
    noise at teardown).  Under *spawn* the worker owns a private
    tracker that would destroy the creator's segments when the worker
    exits; there the explicit unregister (CPython's documented
    workaround until the 3.13 ``track=False`` flag) is required.
    """
    if multiprocessing.get_start_method(allow_none=True) in (None, "fork"):
        return
    try:  # pragma: no cover - spawn-only; tracker internals vary
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


class SharedArrayBundle:
    """Creator-side handle for a set of arrays published to ``/dev/shm``.

    Parameters
    ----------
    arrays:
        Name -> numpy array.  Each array is copied once into its own
        shared segment (C-contiguous); dtype and shape are preserved.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        if not arrays:
            raise SpectrumMatchingError(
                "a SharedArrayBundle needs at least one array"
            )
        self.token = secrets.token_hex(8)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        specs = []
        try:
            for name, array in arrays.items():
                source = np.ascontiguousarray(array)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, source.nbytes)
                )
                view = np.ndarray(
                    source.shape, dtype=source.dtype, buffer=shm.buf
                )
                view[...] = source
                self._segments[name] = shm
                specs.append(
                    (
                        name,
                        _SegmentSpec(
                            shm_name=shm.name,
                            shape=tuple(source.shape),
                            dtype=source.dtype.str,
                        ),
                    )
                )
        except BaseException:
            self._destroy(self._segments)
            raise
        self.manifest = SharedArrayManifest(
            token=self.token, segments=tuple(specs)
        )
        # Safety net: unlink on GC / interpreter exit even if the caller
        # forgot close().  Deliberately bound to the segment dict, not
        # self, so the finalizer keeps no reference cycle alive.
        self._finalizer = weakref.finalize(
            self, SharedArrayBundle._destroy, self._segments
        )

    @staticmethod
    def _destroy(segments: Dict[str, shared_memory.SharedMemory]) -> None:
        for shm in segments.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        segments.clear()

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent)."""
        self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: Per-process cache of attached bundles, keyed by manifest token.  A
#: persistent worker serving hundreds of tasks against the same bundle
#: maps it exactly once.  Entries keep the SharedMemory objects alive
#: (the numpy views borrow their buffers).
_ATTACHED: Dict[
    str,
    Tuple[Dict[str, np.ndarray], Tuple[shared_memory.SharedMemory, ...]],
] = {}


def attach(manifest: SharedArrayManifest) -> Dict[str, np.ndarray]:
    """Map a published bundle into this process as read-only arrays.

    Safe to call repeatedly (cached by ``manifest.token``).  The views
    are marked non-writable: tasks are pure functions of their inputs
    and a worker scribbling on shared pages would corrupt every sibling.
    """
    cached = _ATTACHED.get(manifest.token)
    if cached is not None:
        return cached[0]
    # A worker serves one sweep at a time; a new token means the old
    # bundle's sweep is over (its creator is about to unlink it), so
    # evict stale mappings instead of accumulating them for the life of
    # a persistent worker.
    if _ATTACHED:
        clear_attach_cache()
    arrays: Dict[str, np.ndarray] = {}
    handles = []
    try:
        for name, spec in manifest.segments:
            shm = shared_memory.SharedMemory(name=spec.shm_name)
            _unregister_from_tracker(shm)
            handles.append(shm)
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
            )
            view.setflags(write=False)
            arrays[name] = view
    except BaseException:
        for shm in handles:
            try:
                shm.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        raise
    _ATTACHED[manifest.token] = (arrays, tuple(handles))
    return arrays


def clear_attach_cache() -> None:
    """Drop every cached attachment (unmaps; never unlinks).

    Called by the pool machinery when a worker is about to go away, and
    by tests that need a clean slate in-process.
    """
    for arrays, handles in _ATTACHED.values():
        del arrays
        for shm in handles:
            try:
                shm.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
    _ATTACHED.clear()
