"""Plain-text and CSV rendering of experiment series.

The benchmarks print the same rows the paper plots; these helpers keep the
formatting consistent between the pytest benches, the CLI and
EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import ExperimentRow

__all__ = ["format_table", "rows_to_csv", "format_experiment_rows"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table.

    Floats are shown with four significant decimals; everything else via
    ``str``.  Column widths adapt to content.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_experiment_rows(
    rows: Sequence[ExperimentRow],
    series_names: Sequence[str],
    x_label: str = "x",
    include_srcc: bool = False,
) -> str:
    """Render experiment rows as a table of means (one column per series)."""
    headers: List[str] = [x_label]
    if include_srcc:
        headers.append("srcc")
    headers.extend(series_names)
    table_rows: List[List[object]] = []
    for row in rows:
        cells: List[object] = [row.x]
        if include_srcc:
            cells.append(row.measured_srcc if row.measured_srcc is not None else "-")
        cells.extend(row.series[name].mean for name in series_names)
        table_rows.append(cells)
    return format_table(headers, table_rows)


def rows_to_csv(
    rows: Sequence[ExperimentRow],
    series_names: Sequence[str],
    x_label: str = "x",
) -> str:
    """Serialise rows (mean and std per series) as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = [x_label, "measured_srcc"]
    for name in series_names:
        header.extend([f"{name}_mean", f"{name}_std"])
    writer.writerow(header)
    for row in rows:
        record: List[object] = [row.x, row.measured_srcc]
        for name in series_names:
            stats = row.series[name]
            record.extend([stats.mean, stats.std])
        writer.writerow(record)
    return buffer.getvalue()
