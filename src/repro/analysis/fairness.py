"""Fairness metrics for spectrum matchings.

Social welfare (the paper's only outcome metric) says nothing about how
utility is *distributed* over buyers.  This module adds the two standard
lenses:

* **Jain's fairness index** over realised buyer utilities:
  ``(sum u)^2 / (n * sum u^2)`` -- 1 when everyone realises the same
  utility, ``1/n`` when one buyer takes everything.
* **Justified envy**: buyer ``j`` justifiably envies buyer ``k`` on
  channel ``i`` when ``k`` occupies a seat ``j`` contends for (they
  interfere on ``i``), ``j`` could feasibly replace her (no interference
  with the rest of the coalition), ``j`` would be strictly better off,
  and the seller would earn strictly more.  This is exactly a
  Definition-4 blocking pair whose eviction set is the single buyer
  ``k``, so the count doubles as a fine-grained instability census: the
  matching-theory classic "stability = no justified envy" appears here in
  its peer-effects form.

``benchmarks/bench_fairness.py`` compares the mechanisms in this
repository along these axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.errors import SpectrumMatchingError

__all__ = [
    "jain_fairness_index",
    "buyer_utilities",
    "JustifiedEnvy",
    "justified_envy_pairs",
    "fairness_report",
    "FairnessReport",
]


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain, Chiu & Hawe's fairness index of a non-negative allocation.

    Returns 1.0 for an empty or all-zero allocation by convention (nobody
    is treated worse than anybody else).
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return 1.0
    if np.any(array < 0):
        raise SpectrumMatchingError("fairness index needs non-negative values")
    total = float(array.sum())
    if total == 0.0:
        return 1.0
    return total * total / (array.size * float((array * array).sum()))


def buyer_utilities(market: SpectrumMarket, matching: Matching) -> List[float]:
    """Realised utility of every buyer (zero when unmatched)."""
    return [
        matching.buyer_utility(j, market.utilities)
        for j in range(market.num_buyers)
    ]


@dataclass(frozen=True)
class JustifiedEnvy:
    """One justified-envy triple: ``envier`` would replace ``envied``.

    ``envier`` gains (``new_utility > current_utility``) and the seller of
    ``channel`` gains (``new_utility > envied_price``), and the swap is
    interference-feasible.
    """

    envier: int
    envied: int
    channel: int
    current_utility: float
    new_utility: float
    envied_price: float


def justified_envy_pairs(
    market: SpectrumMarket, matching: Matching
) -> Iterator[JustifiedEnvy]:
    """Yield all justified-envy triples of a matching (lazy)."""
    utilities = market.utilities
    for channel in range(market.num_channels):
        graph = market.graph(channel)
        coalition = matching.coalition(channel)
        for envied in coalition:
            others = coalition - {envied}
            envied_price = float(utilities[envied, channel])
            for envier in range(market.num_buyers):
                if envier in coalition:
                    continue
                if not graph.interferes(envier, envied):
                    continue  # no seat contention: joining needs no swap
                new_utility = float(utilities[envier, channel])
                if new_utility <= envied_price:
                    continue  # the seller would not prefer the swap
                current = matching.buyer_utility(envier, utilities)
                if new_utility <= current:
                    continue  # the envier would not prefer the swap
                if graph.conflicts_with_set(envier, others):
                    continue  # infeasible replacement
                yield JustifiedEnvy(
                    envier=envier,
                    envied=envied,
                    channel=channel,
                    current_utility=current,
                    new_utility=new_utility,
                    envied_price=envied_price,
                )


@dataclass(frozen=True)
class FairnessReport:
    """Distribution summary of one matching.

    Attributes
    ----------
    jain_index:
        Jain fairness over ALL buyers (unmatched count as zero).
    jain_index_matched:
        Jain fairness over matched buyers only.
    min_utility / median_utility / max_utility:
        Realised-utility order statistics over all buyers.
    envy_count:
        Number of justified-envy triples.
    """

    jain_index: float
    jain_index_matched: float
    min_utility: float
    median_utility: float
    max_utility: float
    envy_count: int


def fairness_report(market: SpectrumMarket, matching: Matching) -> FairnessReport:
    """Compute the full fairness summary for one matching."""
    values = buyer_utilities(market, matching)
    matched = [
        matching.buyer_utility(j, market.utilities)
        for j in range(market.num_buyers)
        if matching.is_matched(j)
    ]
    return FairnessReport(
        jain_index=jain_fairness_index(values),
        jain_index_matched=jain_fairness_index(matched),
        min_utility=float(np.min(values)) if values else 0.0,
        median_utility=float(np.median(values)) if values else 0.0,
        max_utility=float(np.max(values)) if values else 0.0,
        envy_count=sum(1 for _ in justified_envy_pairs(market, matching)),
    )
