"""Persistence of experiment results.

Figure regenerations can take minutes at paper-quality repetition counts;
these helpers serialise :class:`~repro.analysis.experiments.ExperimentRow`
series to JSON (with enough metadata to know what produced them) and load
them back, so results can be archived, diffed between code versions, and
post-processed without re-running.  The CLI's ``--json`` flag uses them.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.experiments import ExperimentRow
from repro.analysis.stats import SeriesStats
from repro.errors import SpectrumMatchingError
from repro.ioutil import atomic_write_json

__all__ = ["experiment_rows_to_dict", "dict_to_experiment_rows", "save_rows", "load_rows"]

#: Format marker so future layout changes can stay loadable.
_FORMAT_VERSION = 1


def experiment_rows_to_dict(
    rows: Sequence[ExperimentRow],
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Serialise rows (plus free-form metadata) to a JSON-ready dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "rows": [
            {
                "x": row.x,
                "measured_srcc": row.measured_srcc,
                "series": {
                    name: asdict(stats) for name, stats in row.series.items()
                },
            }
            for row in rows
        ],
    }


def dict_to_experiment_rows(payload: Dict[str, object]) -> List[ExperimentRow]:
    """Inverse of :func:`experiment_rows_to_dict` (validates the format)."""
    if not isinstance(payload, dict) or "rows" not in payload:
        raise SpectrumMatchingError("not an experiment-results payload")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise SpectrumMatchingError(
            f"unsupported results format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    rows: List[ExperimentRow] = []
    for record in payload["rows"]:
        series = {
            name: SeriesStats(**stats)
            for name, stats in record["series"].items()
        }
        rows.append(
            ExperimentRow(
                x=float(record["x"]),
                series=series,
                measured_srcc=record.get("measured_srcc"),
            )
        )
    return rows


def save_rows(
    path: Union[str, Path],
    rows: Sequence[ExperimentRow],
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write rows to ``path`` as indented JSON (atomically: a crash
    mid-write leaves the previous file intact, never a torn one)."""
    payload = experiment_rows_to_dict(rows, metadata)
    atomic_write_json(path, payload)


def load_rows(path: Union[str, Path]) -> List[ExperimentRow]:
    """Load rows previously written by :func:`save_rows`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise SpectrumMatchingError(
            f"cannot load experiment results from {path}: {error}"
        ) from error
    return dict_to_experiment_rows(payload)
