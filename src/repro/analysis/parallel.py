"""Process-based parallel execution for Monte-Carlo sweeps.

The experiment sweeps of Figs. 6-8 repeat an embarrassingly parallel
unit -- *build one seeded market, run the two-stage algorithm, report a
handful of floats* -- hundreds of times.  This module runs those units
across worker processes while preserving the serial path's exact
results:

* **Seed stability.**  Tasks carry their full rng derivation
  ``[seed, value_index, repetition]`` (see
  :func:`repro.analysis.experiments._rng_for`), so a repetition computes
  the identical market no matter which worker runs it or how many
  workers exist.
* **Deterministic ordering.**  :func:`parallel_map` returns results in
  *submission* order, not completion order, so downstream aggregation
  (``summarize`` over the repetition list) sees the same sequence as a
  serial run.
* **Clean failure.**  A worker that *raises* surfaces immediately as
  :class:`~repro.errors.ParallelExecutionError` in the parent with the
  worker-side error attached; pending work is cancelled rather than
  left to hang.
* **Worker-death resilience.**  A worker that *dies* (OOM kill, signal,
  hard crash) breaks the whole :class:`ProcessPoolExecutor`; rather than
  failing a multi-hour sweep for one lost worker, :func:`parallel_map`
  discards the broken pool and resubmits only the tasks whose results
  were lost, under a bounded per-task retry budget with exponential
  backoff (``analysis.retry`` events record each resubmission).
  ``retries=0`` restores the historical strict mode: any worker death
  fails the sweep.  Retrying is safe precisely because tasks are
  deterministic pure functions of their arguments (seed stability
  above).
* **Persistent workers.**  Historically every :func:`parallel_map` call
  built a fresh pool, so a harness that sweeps repeatedly paid the
  fork + import tax per call -- the committed ``BENCH_sweep`` baseline
  even showed the parallel path *losing* to serial.  Pools are now
  module-owned and reused across calls (same worker count -> same
  processes, verified by the pool tests' pid assertions); a broken pool
  is discarded and rebuilt, and ``SPECTRUM_PERSISTENT_POOL=0`` restores
  the per-call behaviour.  :func:`shutdown_pools` (also registered via
  ``atexit``) tears the cached pool down explicitly.
* **Shared-memory task inputs.**  ``shared=`` publishes a mapping of
  numpy arrays through :mod:`repro.analysis.shm` exactly once per call;
  workers attach by segment name (cached per process) and the tasks
  themselves ship only indices/seeds.  The segments are unlinked in a
  ``finally`` -- pool crash, worker SIGKILL, or task exception included
  -- so ``/dev/shm`` never accumulates leftovers.

Worker functions and their arguments must be picklable (module-level
functions and plain dataclasses), which is why
:mod:`repro.analysis.experiments` factors its per-repetition work into
module-level task functions shared by the serial and parallel paths.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    TypeVar,
)

import numpy as np

from repro.analysis.shm import SharedArrayBundle, SharedArrayManifest, attach
from repro.errors import ParallelExecutionError, SpectrumMatchingError
from repro.obs.recorder import resolve_recorder

__all__ = [
    "resolve_jobs",
    "parallel_map",
    "persistent_pool_enabled",
    "shutdown_pools",
    "PERSISTENT_POOL_ENV",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Set to ``"0"`` to disable pool reuse across :func:`parallel_map`
#: calls (a fresh pool per call, the historical behaviour).
PERSISTENT_POOL_ENV = "SPECTRUM_PERSISTENT_POOL"


def persistent_pool_enabled() -> bool:
    """Whether pools are kept alive across ``parallel_map`` calls."""
    return os.environ.get(PERSISTENT_POOL_ENV, "1") != "0"


#: The cached executor and the worker count it was built with.
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _acquire_pool(worker_count: int) -> ProcessPoolExecutor:
    """Return a pool with ``worker_count`` workers, reusing if possible.

    Workers are forked lazily by the executor, so acquiring a large pool
    for a small task list does not spawn idle processes.
    """
    global _POOL, _POOL_WORKERS
    if not persistent_pool_enabled():
        return ProcessPoolExecutor(max_workers=worker_count)
    if _POOL is not None and _POOL_WORKERS != worker_count:
        shutdown_pools()
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=worker_count)
        _POOL_WORKERS = worker_count
    return _POOL


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Drop a pool that broke (or a one-shot pool after use)."""
    global _POOL, _POOL_WORKERS
    if pool is _POOL:
        _POOL, _POOL_WORKERS = None, 0
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken pools may misbehave
        pass


def shutdown_pools() -> None:
    """Tear down the cached persistent pool (idempotent).

    Registered with :mod:`atexit`; also callable from tests and
    long-running services that want to reclaim the workers.
    """
    global _POOL, _POOL_WORKERS
    pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial (run in the calling process);
    ``0`` means "use every core" (``os.cpu_count()``); any other
    positive integer is taken literally.  Negative counts are rejected.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise SpectrumMatchingError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _shared_call(
    fn: Callable[[_T, Mapping[str, np.ndarray]], _R],
    manifest: SharedArrayManifest,
    item: _T,
) -> _R:
    """Worker-side trampoline: attach the bundle, then run the task."""
    return fn(item, attach(manifest))


def parallel_map(
    fn: Callable[..., _R],
    items: Sequence[_T],
    jobs: Optional[int] = None,
    retries: int = 2,
    retry_backoff_s: float = 0.05,
    shared: Optional[Mapping[str, np.ndarray]] = None,
) -> List[_R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    With ``resolve_jobs(jobs) == 1`` this is a plain in-process loop --
    byte-identical behaviour to the historical serial sweeps, ambient
    recorder included.  Otherwise items are submitted to a (reused,
    see :func:`persistent_pool_enabled`) process pool and the results
    are collected in submission order.

    ``shared`` maps names to numpy arrays published once per call via
    shared memory; ``fn`` is then called as ``fn(item, arrays)`` where
    ``arrays`` holds read-only views -- the originals in the serial
    path, zero-copy shared-memory attachments in workers.  Without
    ``shared``, ``fn`` is called as ``fn(item)`` exactly as before.

    A worker *exception* fails the sweep immediately (the task itself is
    broken; re-running it would raise again).  A worker *death* breaks
    the pool and loses the results of every in-flight task; the broken
    pool is discarded and those tasks -- and only those -- are
    resubmitted to a fresh pool, each up to ``retries`` times with
    exponential backoff (``retry_backoff_s`` doubling per attempt).
    ``retries=0`` disables resubmission: any worker death fails the
    sweep (strict mode).

    Raises
    ------
    ParallelExecutionError
        If any worker raises, or a task is lost to worker death more
        than ``retries`` times.  The original exception is chained as
        ``__cause__``; remaining futures are cancelled first so the
        call never hangs.
    """
    if retries < 0:
        raise SpectrumMatchingError(f"retries must be >= 0, got {retries}")
    worker_count = resolve_jobs(jobs)
    rec = resolve_recorder(None)
    # Progress heartbeats feed the live run registry / watch console;
    # content is deterministic (completed counts in submission order).
    report = rec.events.enabled or rec.runs.enabled
    total = len(items)
    if worker_count == 1 or total <= 1:
        frozen = None
        if shared is not None:
            frozen = {}
            for name, array in shared.items():
                view = np.asarray(array).view()
                view.setflags(write=False)
                frozen[name] = view
        results = []
        for index, item in enumerate(items):
            results.append(fn(item) if frozen is None else fn(item, frozen))
            if report:
                rec.emit("analysis.progress", completed=index + 1, total=total)
        return results

    bundle: Optional[SharedArrayBundle] = None
    try:
        if shared is not None:
            bundle = SharedArrayBundle(shared)

        def submit(pool: ProcessPoolExecutor, item: _T):
            if bundle is None:
                return pool.submit(fn, item)
            return pool.submit(_shared_call, fn, bundle.manifest, item)

        done: Dict[int, _R] = {}
        attempts = [0] * total
        pending = list(range(total))
        while pending:
            lost: List[int] = []
            pool_error: Optional[BaseException] = None
            pool = _acquire_pool(worker_count)
            pool_broken = False
            try:
                try:
                    futures = {
                        index: submit(pool, items[index]) for index in pending
                    }
                except BrokenExecutor as exc:
                    # Pool died mid-submission: this round is lost.
                    pool_error, futures = exc, {}
                    pool_broken = True
                    lost.extend(pending)
                for index, future in futures.items():
                    try:
                        done[index] = future.result()
                        if report:
                            rec.emit(
                                "analysis.progress",
                                completed=len(done),
                                total=total,
                            )
                    except BrokenExecutor as exc:
                        pool_error = exc
                        pool_broken = True
                        lost.append(index)
                    except BaseException as exc:
                        for pending_future in futures.values():
                            pending_future.cancel()
                        raise ParallelExecutionError(
                            f"parallel sweep worker failed: {exc!r}"
                        ) from exc
            finally:
                if pool_broken or not persistent_pool_enabled():
                    _discard_pool(pool)
            if not lost:
                break
            # Worker death: the pool was discarded, but the completed
            # results are intact.  Resubmit only the lost tasks.
            for index in lost:
                attempts[index] += 1
            exhausted = [index for index in lost if attempts[index] > retries]
            if exhausted:
                raise ParallelExecutionError(
                    f"parallel sweep lost task(s) {exhausted} to worker death "
                    f"after {retries} retr{'y' if retries == 1 else 'ies'}: "
                    f"{pool_error!r}"
                ) from pool_error
            delay = retry_backoff_s * (
                2.0 ** (max(attempts[index] for index in lost) - 1)
            )
            if rec.enabled:
                rec.emit(
                    "analysis.retry",
                    tasks=sorted(lost),
                    attempts=[attempts[index] for index in sorted(lost)],
                    backoff_s=delay,
                    reason=repr(pool_error),
                )
            if rec.metrics.enabled:
                rec.metrics.counter("analysis.retries").inc(len(lost))
            if delay > 0:
                time.sleep(delay)
            pending = sorted(lost)
        return [done[index] for index in range(total)]
    finally:
        if bundle is not None:
            bundle.close()
