"""Process-based parallel execution for Monte-Carlo sweeps.

The experiment sweeps of Figs. 6-8 repeat an embarrassingly parallel
unit -- *build one seeded market, run the two-stage algorithm, report a
handful of floats* -- hundreds of times.  This module runs those units
across worker processes while preserving the serial path's exact
results:

* **Seed stability.**  Tasks carry their full rng derivation
  ``[seed, value_index, repetition]`` (see
  :func:`repro.analysis.experiments._rng_for`), so a repetition computes
  the identical market no matter which worker runs it or how many
  workers exist.
* **Deterministic ordering.**  :func:`parallel_map` returns results in
  *submission* order, not completion order, so downstream aggregation
  (``summarize`` over the repetition list) sees the same sequence as a
  serial run.
* **Clean failure.**  A worker that *raises* surfaces immediately as
  :class:`~repro.errors.ParallelExecutionError` in the parent with the
  worker-side error attached; pending work is cancelled rather than
  left to hang.
* **Worker-death resilience.**  A worker that *dies* (OOM kill, signal,
  hard crash) breaks the whole :class:`ProcessPoolExecutor`; rather than
  failing a multi-hour sweep for one lost worker, :func:`parallel_map`
  rebuilds the pool and resubmits only the tasks whose results were
  lost, under a bounded per-task retry budget with exponential backoff
  (``analysis.retry`` events record each resubmission).  ``retries=0``
  restores the historical strict mode: any worker death fails the
  sweep.  Retrying is safe precisely because tasks are deterministic
  pure functions of their arguments (seed stability above).

Worker functions and their arguments must be picklable (module-level
functions and plain dataclasses), which is why
:mod:`repro.analysis.experiments` factors its per-repetition work into
module-level task functions shared by the serial and parallel paths.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.errors import ParallelExecutionError, SpectrumMatchingError
from repro.obs.recorder import resolve_recorder

__all__ = ["resolve_jobs", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial (run in the calling process);
    ``0`` means "use every core" (``os.cpu_count()``); any other
    positive integer is taken literally.  Negative counts are rejected.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise SpectrumMatchingError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = None,
    retries: int = 2,
    retry_backoff_s: float = 0.05,
) -> List[_R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    With ``resolve_jobs(jobs) == 1`` this is a plain in-process list
    comprehension -- byte-identical behaviour to the historical serial
    sweeps, ambient recorder included.  Otherwise items are submitted to
    a :class:`~concurrent.futures.ProcessPoolExecutor` and the results
    are collected in submission order.

    A worker *exception* fails the sweep immediately (the task itself is
    broken; re-running it would raise again).  A worker *death* breaks
    the pool and loses the results of every in-flight task; those tasks
    -- and only those -- are resubmitted to a fresh pool, each up to
    ``retries`` times with exponential backoff (``retry_backoff_s``
    doubling per attempt).  ``retries=0`` disables resubmission: any
    worker death fails the sweep (strict mode).

    Raises
    ------
    ParallelExecutionError
        If any worker raises, or a task is lost to worker death more
        than ``retries`` times.  The original exception is chained as
        ``__cause__``; remaining futures are cancelled first so the
        call never hangs.
    """
    if retries < 0:
        raise SpectrumMatchingError(f"retries must be >= 0, got {retries}")
    worker_count = resolve_jobs(jobs)
    rec = resolve_recorder(None)
    # Progress heartbeats feed the live run registry / watch console;
    # content is deterministic (completed counts in submission order).
    report = rec.events.enabled or rec.runs.enabled
    total = len(items)
    if worker_count == 1 or total <= 1:
        if not report:
            return [fn(item) for item in items]
        results = []
        for index, item in enumerate(items):
            results.append(fn(item))
            rec.emit("analysis.progress", completed=index + 1, total=total)
        return results

    done: Dict[int, _R] = {}
    attempts = [0] * total
    pending = list(range(total))
    while pending:
        lost: List[int] = []
        pool_error: Optional[BaseException] = None
        with ProcessPoolExecutor(
            max_workers=min(worker_count, len(pending))
        ) as pool:
            try:
                futures = {
                    index: pool.submit(fn, items[index]) for index in pending
                }
            except BrokenExecutor as exc:
                # Pool died mid-submission: everything this round is lost.
                pool_error, futures = exc, {}
                lost.extend(pending)
            for index, future in futures.items():
                try:
                    done[index] = future.result()
                    if report:
                        rec.emit(
                            "analysis.progress",
                            completed=len(done),
                            total=total,
                        )
                except BrokenExecutor as exc:
                    pool_error = exc
                    lost.append(index)
                except BaseException as exc:
                    for pending_future in futures.values():
                        pending_future.cancel()
                    raise ParallelExecutionError(
                        f"parallel sweep worker failed: {exc!r}"
                    ) from exc
        if not lost:
            break
        # Worker death: the pool is unusable, but the completed results
        # are intact.  Resubmit only the lost tasks to a fresh pool.
        for index in lost:
            attempts[index] += 1
        exhausted = [index for index in lost if attempts[index] > retries]
        if exhausted:
            raise ParallelExecutionError(
                f"parallel sweep lost task(s) {exhausted} to worker death "
                f"after {retries} retr{'y' if retries == 1 else 'ies'}: "
                f"{pool_error!r}"
            ) from pool_error
        delay = retry_backoff_s * (
            2.0 ** (max(attempts[index] for index in lost) - 1)
        )
        if rec.enabled:
            rec.emit(
                "analysis.retry",
                tasks=sorted(lost),
                attempts=[attempts[index] for index in sorted(lost)],
                backoff_s=delay,
                reason=repr(pool_error),
            )
        if rec.metrics.enabled:
            rec.metrics.counter("analysis.retries").inc(len(lost))
        if delay > 0:
            time.sleep(delay)
        pending = sorted(lost)
    return [done[index] for index in range(total)]
