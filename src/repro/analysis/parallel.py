"""Process-based parallel execution for Monte-Carlo sweeps.

The experiment sweeps of Figs. 6-8 repeat an embarrassingly parallel
unit -- *build one seeded market, run the two-stage algorithm, report a
handful of floats* -- hundreds of times.  This module runs those units
across worker processes while preserving the serial path's exact
results:

* **Seed stability.**  Tasks carry their full rng derivation
  ``[seed, value_index, repetition]`` (see
  :func:`repro.analysis.experiments._rng_for`), so a repetition computes
  the identical market no matter which worker runs it or how many
  workers exist.
* **Deterministic ordering.**  :func:`parallel_map` returns results in
  *submission* order, not completion order, so downstream aggregation
  (``summarize`` over the repetition list) sees the same sequence as a
  serial run.
* **Clean failure.**  A worker that raises -- or dies outright, breaking
  the pool -- surfaces as :class:`~repro.errors.ParallelExecutionError`
  in the parent with the worker-side error attached; pending work is
  cancelled rather than left to hang.

Worker functions and their arguments must be picklable (module-level
functions and plain dataclasses), which is why
:mod:`repro.analysis.experiments` factors its per-repetition work into
module-level task functions shared by the serial and parallel paths.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ParallelExecutionError, SpectrumMatchingError
from repro.obs.recorder import resolve_recorder

__all__ = ["resolve_jobs", "parallel_map"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial (run in the calling process);
    ``0`` means "use every core" (``os.cpu_count()``); any other
    positive integer is taken literally.  Negative counts are rejected.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise SpectrumMatchingError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    jobs: Optional[int] = None,
) -> List[_R]:
    """Apply ``fn`` to every item, optionally across worker processes.

    With ``resolve_jobs(jobs) == 1`` this is a plain in-process list
    comprehension -- byte-identical behaviour to the historical serial
    sweeps, ambient recorder included.  Otherwise items are submitted to
    a :class:`~concurrent.futures.ProcessPoolExecutor` and the results
    are collected in submission order.

    Raises
    ------
    ParallelExecutionError
        If any worker raises or the pool breaks (worker killed).  The
        original exception is chained as ``__cause__``; remaining
        futures are cancelled first so the call never hangs.
    """
    worker_count = resolve_jobs(jobs)
    rec = resolve_recorder(None)
    # Progress heartbeats feed the live run registry / watch console;
    # content is deterministic (completed counts in submission order).
    report = rec.events.enabled or rec.runs.enabled
    if worker_count == 1 or len(items) <= 1:
        if not report:
            return [fn(item) for item in items]
        results = []
        for index, item in enumerate(items):
            results.append(fn(item))
            rec.emit(
                "analysis.progress", completed=index + 1, total=len(items)
            )
        return results
    results: List[_R] = []
    with ProcessPoolExecutor(max_workers=min(worker_count, len(items))) as pool:
        futures = [pool.submit(fn, item) for item in items]
        try:
            for future in futures:
                results.append(future.result())
                if report:
                    rec.emit(
                        "analysis.progress",
                        completed=len(results),
                        total=len(futures),
                    )
        except BaseException as exc:
            for future in futures:
                future.cancel()
            raise ParallelExecutionError(
                f"parallel sweep worker failed: {exc!r}"
            ) from exc
    return results
