"""Analysis layer: metrics, replication, statistics and reporting.

The benchmarks (one per paper figure) and the CLI both drive the
experiment functions in :mod:`~repro.analysis.experiments`, which generate
markets with the Section V-A workloads, run the solvers, and aggregate
repeated trials into the exact series the paper plots:

* Fig. 6 -- proposed vs optimal social welfare (small markets);
* Fig. 7 -- cumulative welfare after Stage I / Phase 1 / Phase 2;
* Fig. 8 -- running time (rounds) of each stage/phase.
"""

from repro.analysis.metrics import (
    MatchingReport,
    demand_satisfaction,
    evaluate_matching,
)
from repro.analysis.stats import SeriesStats, summarize
from repro.analysis.experiments import (
    ExperimentRow,
    optimal_comparison_series,
    solver_grid_series,
    stage_breakdown_series,
    SweepAxis,
)
from repro.analysis.reporting import format_table, rows_to_csv
from repro.analysis.fairness import (
    fairness_report,
    jain_fairness_index,
    justified_envy_pairs,
)
from repro.analysis.manipulation import (
    find_profitable_misreport,
    manipulability_rate,
)
from repro.analysis.sensing import perturb_interference, run_sensing_study
from repro.analysis.persistence import load_rows, save_rows
from repro.analysis.visualization import (
    render_deployment_map,
    render_interference_summary,
    render_matching_table,
    render_protocol_timeline,
)

__all__ = [
    "MatchingReport",
    "evaluate_matching",
    "demand_satisfaction",
    "SeriesStats",
    "summarize",
    "ExperimentRow",
    "optimal_comparison_series",
    "solver_grid_series",
    "stage_breakdown_series",
    "SweepAxis",
    "format_table",
    "rows_to_csv",
    "fairness_report",
    "jain_fairness_index",
    "justified_envy_pairs",
    "find_profitable_misreport",
    "manipulability_rate",
    "perturb_interference",
    "run_sensing_study",
    "load_rows",
    "save_rows",
    "render_deployment_map",
    "render_interference_summary",
    "render_matching_table",
    "render_protocol_timeline",
]
