"""Strategic-behaviour analysis: is the matching mechanism truthful?

The paper treats ``b_{i,j}`` both as buyer ``j``'s *true* utility and as
her *reported* price, implicitly assuming truthful reporting.  Unlike the
double auctions it replaces (McAfee / TRUST, dominant-strategy truthful
-- see :mod:`repro.auction`), the two-stage matching offers no such
guarantee: a buyer's report steers both her proposal order and her
priority in sellers' coalition choices, so a strategic misreport can land
her a better channel.

This module quantifies that:

* :func:`evaluate_report` -- run the mechanism with one buyer's report
  replaced and score her outcome by her TRUE utilities;
* :func:`candidate_misreports` -- a standard lie portfolio (scalings,
  single-channel concentration, rank swaps, random vectors);
* :func:`find_profitable_misreport` -- search the portfolio for a
  strictly profitable lie;
* :func:`manipulability_rate` -- fraction of (market, buyer) pairs where
  one exists.

Finding: manipulation opportunities exist (``demonstration_instance``
constructs one deterministically) but are rare on the paper's random
workloads -- the mechanism is "usually truthful in practice", which is
the honest footnote to the paper's implicit assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.two_stage import run_two_stage
from repro.errors import MarketConfigurationError

__all__ = [
    "ManipulationResult",
    "evaluate_report",
    "candidate_misreports",
    "find_profitable_misreport",
    "manipulability_rate",
    "demonstration_instance",
]


@dataclass(frozen=True)
class ManipulationResult:
    """Outcome of a misreport search for one buyer.

    Attributes
    ----------
    buyer:
        The strategic buyer.
    truthful_utility:
        Her TRUE utility under truthful reporting.
    best_utility:
        Best TRUE utility achieved by any candidate report.
    best_report:
        The report achieving it (``None`` if truth is already best).
    profitable:
        Whether a strictly profitable lie was found.
    """

    buyer: int
    truthful_utility: float
    best_utility: float
    best_report: Optional[Tuple[float, ...]]

    @property
    def profitable(self) -> bool:
        return self.best_utility > self.truthful_utility + 1e-9

    @property
    def gain(self) -> float:
        return max(0.0, self.best_utility - self.truthful_utility)


def _with_report(
    market: SpectrumMarket, buyer: int, report: Sequence[float]
) -> SpectrumMarket:
    """Market copy where ``buyer``'s utility row is replaced by ``report``."""
    report = np.asarray(report, dtype=float)
    if report.shape != (market.num_channels,):
        raise MarketConfigurationError(
            f"report must have length M={market.num_channels}, "
            f"got shape {report.shape}"
        )
    utilities = np.array(market.utilities)
    utilities[buyer, :] = report
    return SpectrumMarket(
        utilities,
        market.interference,
        mwis_algorithm=market.mwis_algorithm,
        buyer_names=market.buyer_names,
        channel_names=market.channel_names,
        buyer_owner=market.buyer_owner,
        channel_owner=market.channel_owner,
    )


def evaluate_report(
    market: SpectrumMarket,
    buyer: int,
    report: Sequence[float],
    mechanism: Callable[[SpectrumMarket], "object"] = None,
) -> float:
    """Run the mechanism under a report; return the buyer's TRUE utility.

    ``mechanism`` maps a market to an object with a ``matching``
    attribute; the default is the two-stage algorithm.
    """
    if mechanism is None:
        mechanism = lambda m: run_two_stage(m, record_trace=False)
    manipulated = _with_report(market, buyer, report)
    outcome = mechanism(manipulated)
    channel = outcome.matching.channel_of(buyer)
    if channel is None:
        return 0.0
    # Score with the TRUE utilities, not the reported ones.
    return float(market.utilities[buyer, channel])


def candidate_misreports(
    market: SpectrumMarket,
    buyer: int,
    rng: np.random.Generator,
    num_random: int = 10,
) -> List[np.ndarray]:
    """A portfolio of candidate lies for one buyer.

    Deterministic families: global up/down scalings (prices are also
    priority, so inflation buys seniority), concentrating the full budget
    on each single channel, swapping the top two channels' reports, and
    zeroing the top channel (skip-my-favourite).  Plus ``num_random``
    uniform random vectors.
    """
    truth = np.array(market.buyer_vector(buyer))
    candidates: List[np.ndarray] = []
    for factor in (0.25, 0.5, 2.0, 4.0):
        candidates.append(np.clip(truth * factor, 0.0, None))
    order = np.argsort(-truth)
    if truth[order[0]] > 0:
        for channel in range(market.num_channels):
            concentrated = np.zeros_like(truth)
            concentrated[channel] = float(truth.max() * 2.0)
            candidates.append(concentrated)
        if market.num_channels >= 2:
            swapped = truth.copy()
            swapped[order[0]], swapped[order[1]] = (
                truth[order[1]],
                truth[order[0]],
            )
            candidates.append(swapped)
            skip_top = truth.copy()
            skip_top[order[0]] = 0.0
            candidates.append(skip_top)
    for _ in range(num_random):
        candidates.append(rng.random(market.num_channels) * max(truth.max(), 1.0))
    return candidates


def find_profitable_misreport(
    market: SpectrumMarket,
    buyer: int,
    rng: np.random.Generator,
    num_random: int = 10,
    mechanism: Callable[[SpectrumMarket], "object"] = None,
) -> ManipulationResult:
    """Search the candidate portfolio for a strictly profitable lie."""
    truthful = evaluate_report(
        market, buyer, market.buyer_vector(buyer), mechanism
    )
    best_utility = truthful
    best_report: Optional[Tuple[float, ...]] = None
    for report in candidate_misreports(market, buyer, rng, num_random):
        utility = evaluate_report(market, buyer, report, mechanism)
        if utility > best_utility + 1e-9:
            best_utility = utility
            best_report = tuple(float(x) for x in report)
    return ManipulationResult(
        buyer=buyer,
        truthful_utility=truthful,
        best_utility=best_utility,
        best_report=best_report,
    )


def manipulability_rate(
    markets: Sequence[SpectrumMarket],
    rng: np.random.Generator,
    num_random: int = 10,
) -> Tuple[float, int, int]:
    """Fraction of (market, buyer) pairs with a profitable lie found.

    Returns ``(rate, manipulable_pairs, total_pairs)``.  A lower bound on
    true manipulability: the search is a finite portfolio, not an
    optimiser.
    """
    manipulable = 0
    total = 0
    for market in markets:
        for buyer in range(market.num_buyers):
            total += 1
            result = find_profitable_misreport(
                market, buyer, rng, num_random=num_random
            )
            if result.profitable:
                manipulable += 1
    return (manipulable / total if total else 0.0), manipulable, total


def demonstration_instance() -> Tuple[SpectrumMarket, int, Tuple[float, ...]]:
    """A deterministic instance where lying strictly pays.

    Returns ``(market, strategic_buyer, profitable_report)``.

    The canonical manipulation is **price inflation**: the reported
    ``b_{i,j}`` doubles as the buyer's priority in sellers' coalition
    choices, and the matching collects no actual payment, so overstating
    is free.  Here buyer 0 truly values channel 0 at 5 but loses it to a
    rival reporting 6 (they interfere); she settles for channel 1 (true
    value 4).  Reporting 20 for channel 0 evicts the rival and wins her
    the true-value-5 channel.  Verified in
    ``tests/analysis/test_manipulation.py``.
    """
    from repro.interference.generators import interference_map_from_edge_lists

    # Channels: 0, 1.  Buyers: 0 (strategic), 1 (rival on ch0).
    utilities = np.array(
        [
            [5.0, 4.0],  # buyer 0: truth, loses ch0 to the rival
            [6.0, 0.0],  # buyer 1: wants only channel 0
        ]
    )
    interference = interference_map_from_edge_lists(2, [[(0, 1)], []])
    market = SpectrumMarket(utilities, interference)
    lie = (20.0, 4.0)  # inflate the contested channel's price
    return market, 0, lie
