"""Canonical parameterisations of the paper's figures.

One :class:`FigureSpec` per panel, with exactly the sweep ranges and fixed
parameters printed in the paper's captions:

* Fig. 6(a): ``M = 4``, N = 6..10 -- optimal vs proposed welfare.
* Fig. 6(b): ``N = 8``, M = 2..6.
* Fig. 6(c): ``M = 5, N = 8``, similarity 0..1.
* Fig. 7/8(a): ``M = 10``, N = 200..320.
* Fig. 7/8(b): ``N = 500``, M = 4..16.
* Fig. 7/8(c): ``M = 8, N = 300``, similarity 0..1.

(The paper plots Figs. 7 and 8 from the same runs -- welfare and rounds
respectively -- so their specs coincide and the harness reuses results.)

The benchmark modules and the CLI both resolve panels through
:func:`figure_spec`, so the numbers printed by ``pytest benchmarks`` and
``spectrum-matching fig7 --panel b`` can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    ExperimentRow,
    SweepAxis,
    optimal_comparison_series,
    stage_breakdown_series,
)
from repro.errors import SpectrumMatchingError
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = ["FigureSpec", "figure_spec", "run_figure", "FIGURE_SPECS"]


@dataclass(frozen=True)
class FigureSpec:
    """One figure panel's experiment description.

    Attributes
    ----------
    figure:
        ``6``, ``7`` or ``8`` (7 and 8 share specs).
    panel:
        ``"a"``, ``"b"`` or ``"c"``.
    axis / values:
        Sweep axis and x-values.
    num_buyers / num_channels:
        The fixed dimensions (``None`` for the swept one).
    kind:
        ``"optimal_comparison"`` (Fig. 6) or ``"stage_breakdown"``
        (Figs. 7/8).
    default_repetitions:
        Repetitions used when the caller does not override.
    """

    figure: int
    panel: str
    axis: SweepAxis
    values: Tuple[float, ...]
    num_buyers: Optional[int]
    num_channels: Optional[int]
    kind: str
    default_repetitions: int


_SIMILARITY_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

FIGURE_SPECS: Dict[Tuple[int, str], FigureSpec] = {
    (6, "a"): FigureSpec(
        figure=6,
        panel="a",
        axis=SweepAxis.BUYERS,
        values=(6, 7, 8, 9, 10),
        num_buyers=None,
        num_channels=4,
        kind="optimal_comparison",
        default_repetitions=100,
    ),
    (6, "b"): FigureSpec(
        figure=6,
        panel="b",
        axis=SweepAxis.SELLERS,
        values=(2, 3, 4, 5, 6),
        num_buyers=8,
        num_channels=None,
        kind="optimal_comparison",
        default_repetitions=100,
    ),
    (6, "c"): FigureSpec(
        figure=6,
        panel="c",
        axis=SweepAxis.SIMILARITY,
        values=_SIMILARITY_VALUES,
        num_buyers=8,
        num_channels=5,
        kind="optimal_comparison",
        default_repetitions=100,
    ),
    (7, "a"): FigureSpec(
        figure=7,
        panel="a",
        axis=SweepAxis.BUYERS,
        values=(200, 220, 240, 260, 280, 300, 320),
        num_buyers=None,
        num_channels=10,
        kind="stage_breakdown",
        default_repetitions=10,
    ),
    (7, "b"): FigureSpec(
        figure=7,
        panel="b",
        axis=SweepAxis.SELLERS,
        values=(4, 6, 8, 10, 12, 14, 16),
        num_buyers=500,
        num_channels=None,
        kind="stage_breakdown",
        default_repetitions=10,
    ),
    (7, "c"): FigureSpec(
        figure=7,
        panel="c",
        axis=SweepAxis.SIMILARITY,
        values=_SIMILARITY_VALUES,
        num_buyers=300,
        num_channels=8,
        kind="stage_breakdown",
        default_repetitions=10,
    ),
}
# Fig. 8 reuses the Fig. 7 runs (same experiment, different columns).
for _panel in ("a", "b", "c"):
    _spec = FIGURE_SPECS[(7, _panel)]
    FIGURE_SPECS[(8, _panel)] = FigureSpec(
        figure=8,
        panel=_panel,
        axis=_spec.axis,
        values=_spec.values,
        num_buyers=_spec.num_buyers,
        num_channels=_spec.num_channels,
        kind=_spec.kind,
        default_repetitions=_spec.default_repetitions,
    )


def figure_spec(figure: int, panel: str) -> FigureSpec:
    """Look up a panel's spec (raises for unknown panels)."""
    try:
        return FIGURE_SPECS[(figure, panel)]
    except KeyError:
        raise SpectrumMatchingError(
            f"no spec for figure {figure} panel {panel!r}"
        ) from None


def run_figure(
    spec: FigureSpec,
    repetitions: Optional[int] = None,
    seed: int = 0,
    values: Optional[Sequence[float]] = None,
    recorder: Optional[Recorder] = None,
    jobs: Optional[int] = None,
) -> List[ExperimentRow]:
    """Execute a panel's experiment and return its rows.

    ``repetitions`` and ``values`` allow scaled-down runs (used by the
    test suite and quick CLI invocations) without changing the canonical
    spec.  ``recorder`` (``None`` resolves to the ambient recorder) frames
    the sweep with a ``figure`` span, announces it with a ``figure.start``
    event and emits one ``figure.row`` event per x-axis point with the
    aggregated series means.  ``jobs`` fans repetitions out over worker
    processes (``None``/1 serial, 0 = all cores) with results identical
    to the serial run; see :mod:`repro.analysis.parallel`.
    """
    reps = spec.default_repetitions if repetitions is None else repetitions
    xs = tuple(spec.values if values is None else values)
    rec = resolve_recorder(recorder)
    if rec.enabled:
        rec.emit(
            "figure.start",
            figure=spec.figure,
            panel=spec.panel,
            axis=spec.axis.value,
            values=list(xs),
            repetitions=reps,
            seed=seed,
        )
    with rec.span(f"figure.fig{spec.figure}{spec.panel}"):
        if spec.kind == "optimal_comparison":
            rows = optimal_comparison_series(
                spec.axis,
                xs,
                num_buyers=spec.num_buyers,
                num_channels=spec.num_channels,
                repetitions=reps,
                seed=seed,
                jobs=jobs,
            )
        elif spec.kind == "stage_breakdown":
            rows = stage_breakdown_series(
                spec.axis,
                xs,
                num_buyers=spec.num_buyers,
                num_channels=spec.num_channels,
                repetitions=reps,
                seed=seed,
                jobs=jobs,
            )
        else:
            raise SpectrumMatchingError(
                f"unknown experiment kind {spec.kind!r}"
            )
    if rec.enabled:
        rec.metrics.counter("figure.markets").inc(len(rows) * reps)
        for row in rows:
            rec.emit(
                "figure.row",
                figure=spec.figure,
                panel=spec.panel,
                x=row.x,
                series={
                    name: stats.mean for name, stats in row.series.items()
                },
                measured_srcc=row.measured_srcc,
            )
    return rows
