"""Terminal-friendly visualisations of markets and matchings.

Everything in the repository runs headless, so these renderers emit plain
ASCII: a spatial map of the deployment (with per-buyer channel
assignments once matched), per-channel interference summaries with a
degree histogram, and a coalition table.  They exist for the examples,
the CLI and debugging sessions -- all output is deterministic and
snapshot-testable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.errors import MarketConfigurationError
from repro.interference.graph import InterferenceMap

__all__ = [
    "render_deployment_map",
    "render_interference_summary",
    "render_matching_table",
    "render_protocol_timeline",
]

#: Channel markers used on the map; unmatched buyers render as '.'.
_CHANNEL_MARKS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
_UNMATCHED_MARK = "."
_COLLISION_MARK = "*"


def render_deployment_map(
    locations: np.ndarray,
    area_side: float,
    matching: Optional[Matching] = None,
    width: int = 48,
    height: int = 20,
) -> str:
    """Render buyer positions on an ASCII grid.

    Each buyer prints as the letter of her matched channel (``A`` =
    channel 0, ...), ``.`` when unmatched, and ``*`` where several buyers
    share one cell.  A border frames the area.
    """
    locations = np.asarray(locations, dtype=float)
    if locations.ndim != 2 or locations.shape[1] != 2:
        raise MarketConfigurationError("locations must be an (N, 2) array")
    if width < 2 or height < 2:
        raise MarketConfigurationError("grid must be at least 2x2")
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for buyer, (x, y) in enumerate(locations):
        col = min(width - 1, int(x / area_side * width))
        row = min(height - 1, int(y / area_side * height))
        row = height - 1 - row  # y grows upward on the map
        if matching is not None:
            channel = matching.channel_of(buyer)
            mark = (
                _CHANNEL_MARKS[channel % len(_CHANNEL_MARKS)]
                if channel is not None
                else _UNMATCHED_MARK
            )
        else:
            mark = _UNMATCHED_MARK
        grid[row][col] = _COLLISION_MARK if grid[row][col] != " " else mark
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = ""
    if matching is not None:
        used = sorted(
            {
                matching.channel_of(j)
                for j in range(locations.shape[0])
                if matching.channel_of(j) is not None
            }
        )
        legend = "\nlegend: " + "  ".join(
            f"{_CHANNEL_MARKS[c % len(_CHANNEL_MARKS)]}=ch{c}" for c in used
        ) + f"  {_UNMATCHED_MARK}=unmatched  {_COLLISION_MARK}=overlap"
    return f"{border}\n{body}\n{border}{legend}"


def _sparkline(values: Sequence[int]) -> str:
    """Tiny histogram bar using ASCII shade characters."""
    marks = " .:-=+*#%@"
    peak = max(values) if values else 0
    if peak == 0:
        return " " * len(values)
    return "".join(
        marks[min(len(marks) - 1, int(v / peak * (len(marks) - 1)))]
        for v in values
    )


def render_interference_summary(interference: InterferenceMap) -> str:
    """Per-channel interference statistics with a degree histogram.

    Columns: channel id, edge count, density, max degree, and a degree
    histogram sparkline (buckets 0..max_degree).
    """
    lines = ["channel  edges  density  maxdeg  degree histogram"]
    for channel in range(interference.num_channels):
        graph = interference.graph(channel)
        degrees = [graph.degree(j) for j in range(graph.num_buyers)]
        max_degree = max(degrees) if degrees else 0
        buckets = [0] * (max_degree + 1)
        for degree in degrees:
            buckets[degree] += 1
        lines.append(
            f"{channel:>7}  {graph.num_edges:>5}  "
            f"{interference.density(channel):>7.3f}  {max_degree:>6}  "
            f"[{_sparkline(buckets)}]"
        )
    return "\n".join(lines)


def render_protocol_timeline(
    events: Sequence,
    max_rows: int = 40,
) -> str:
    """Render a distributed run's message trace as a per-slot timeline.

    ``events`` is the :class:`~repro.distributed.simulator.MessageEvent`
    sequence of a run executed with ``record_events=True``.  One row per
    active slot: total messages sent, a volume bar, and the per-type
    breakdown (dropped messages flagged with ``!``).  Long runs are
    subsampled to ``max_rows`` rows, keeping the busiest slots.
    """
    if not events:
        return "(no events recorded -- run with record_events=True)"
    by_slot: dict = {}
    for event in events:
        record = by_slot.setdefault(event.slot, {})
        key = event.message_type + ("!" if event.dropped else "")
        record[key] = record.get(key, 0) + 1
    slots = sorted(by_slot)
    if len(slots) > max_rows:
        # Keep the busiest slots, then re-sort chronologically.
        slots = sorted(
            sorted(slots, key=lambda s: -sum(by_slot[s].values()))[:max_rows]
        )
        header = (
            f"slot  msgs  breakdown  (busiest {max_rows} of "
            f"{len(by_slot)} active slots)"
        )
    else:
        header = "slot  msgs  breakdown"
    peak = max(sum(counts.values()) for counts in by_slot.values())
    lines = [header]
    for slot in slots:
        counts = by_slot[slot]
        total = sum(counts.values())
        bar = "#" * max(1, int(total / peak * 12))
        detail = " ".join(
            f"{name}x{count}" for name, count in sorted(counts.items())
        )
        lines.append(f"{slot:>4}  {total:>4}  {bar:<12} {detail}")
    return "\n".join(lines)


def render_matching_table(market: SpectrumMarket, matching: Matching) -> str:
    """Coalition table: members, revenue and load per channel."""
    lines = ["channel  members                                  revenue"]
    for channel in range(market.num_channels):
        members = sorted(matching.coalition(channel))
        names = ", ".join(market.buyer_names[j] for j in members) or "-"
        if len(names) > 40:
            names = names[:37] + "..."
        revenue = matching.seller_revenue(channel, market.utilities)
        label = market.channel_names[channel]
        lines.append(f"{label:>7}  {names:<40} {revenue:>8.4f}")
    unmatched = [
        market.buyer_names[j]
        for j in range(market.num_buyers)
        if not matching.is_matched(j)
    ]
    lines.append(
        f"unmatched ({len(unmatched)}): "
        + (", ".join(unmatched) if unmatched else "-")
    )
    return "\n".join(lines)
