"""Matching-quality metrics.

:func:`evaluate_matching` condenses one matching into the quantities the
paper reports or that are useful for diagnosing a run: social welfare,
matched-buyer counts, per-agent utilities, and the stability verdicts of
Section III.

The scoring itself lives in the engine's shared validation pipeline
(:mod:`repro.engine.validation`) -- the same code path behind every
:class:`~repro.engine.report.SolveReport` -- so analysis numbers can
never drift from solver-report numbers.  :class:`MatchingReport` is the
historical name for that pipeline's report and is kept as an alias.
"""

from __future__ import annotations

from typing import Dict

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.engine.validation import ValidationReport, validate_matching

__all__ = ["MatchingReport", "evaluate_matching", "demand_satisfaction"]

#: Historical alias: analysis code predates the engine's validation layer.
MatchingReport = ValidationReport


def demand_satisfaction(market: SpectrumMarket, matching: Matching) -> Dict[int, float]:
    """Per-physical-buyer fraction of demanded channels obtained.

    Uses the market's ``buyer_owner`` map: physical buyer ``p`` demanded
    as many channels as she has clones; the satisfaction is the fraction
    of those clones that ended up matched.  For single-demand markets
    (owner == virtual id) this is simply 0/1 per buyer.
    """
    demanded: Dict[int, int] = {}
    granted: Dict[int, int] = {}
    for virtual, owner in enumerate(market.buyer_owner):
        demanded[owner] = demanded.get(owner, 0) + 1
        if matching.is_matched(virtual):
            granted[owner] = granted.get(owner, 0) + 1
    return {
        owner: granted.get(owner, 0) / count
        for owner, count in demanded.items()
    }


def evaluate_matching(
    market: SpectrumMarket,
    matching: Matching,
    check_stability: bool = True,
) -> MatchingReport:
    """Score ``matching`` on ``market`` via the shared validation pipeline.

    ``check_stability=False`` skips the (O(MN)-ish) stability scans for
    tight benchmark loops; the three stability verdicts then report
    ``None`` -- feasibility and welfare are always computed.
    """
    return validate_matching(market, matching, check_stability)
