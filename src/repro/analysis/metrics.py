"""Matching-quality metrics.

:func:`evaluate_matching` condenses one matching into the quantities the
paper reports or that are useful for diagnosing a run: social welfare,
matched-buyer counts, per-seller revenue, and the stability verdicts of
Section III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
    is_pairwise_stable,
)

__all__ = ["MatchingReport", "evaluate_matching", "demand_satisfaction"]


def demand_satisfaction(market: SpectrumMarket, matching: Matching) -> Dict[int, float]:
    """Per-physical-buyer fraction of demanded channels obtained.

    Uses the market's ``buyer_owner`` map: physical buyer ``p`` demanded
    as many channels as she has clones; the satisfaction is the fraction
    of those clones that ended up matched.  For single-demand markets
    (owner == virtual id) this is simply 0/1 per buyer.
    """
    demanded: Dict[int, int] = {}
    granted: Dict[int, int] = {}
    for virtual, owner in enumerate(market.buyer_owner):
        demanded[owner] = demanded.get(owner, 0) + 1
        if matching.is_matched(virtual):
            granted[owner] = granted.get(owner, 0) + 1
    return {
        owner: granted.get(owner, 0) / count
        for owner, count in demanded.items()
    }


@dataclass(frozen=True)
class MatchingReport:
    """A scored matching.

    Attributes
    ----------
    social_welfare:
        Objective (1): total matched price.
    num_matched / num_buyers:
        Matched-buyer count and population size.
    matched_fraction:
        ``num_matched / num_buyers``.
    seller_revenue:
        Per-channel revenue (seller utility).
    interference_free / individually_rational / nash_stable / pairwise_stable:
        Feasibility and the stability ladder of Section III.  Note
        ``pairwise_stable`` is expected ``False`` on many instances -- the
        paper proves the algorithm does not guarantee it.
    """

    social_welfare: float
    num_matched: int
    num_buyers: int
    matched_fraction: float
    seller_revenue: Tuple[float, ...]
    interference_free: bool
    individually_rational: bool
    nash_stable: bool
    pairwise_stable: bool


def evaluate_matching(
    market: SpectrumMarket,
    matching: Matching,
    check_stability: bool = True,
) -> MatchingReport:
    """Score ``matching`` on ``market``.

    ``check_stability=False`` skips the (O(MN)-ish) stability scans for
    tight benchmark loops; the three verdicts then report ``False``
    conservatively only for fields that were actually computed --
    feasibility is always checked.
    """
    utilities = market.utilities
    welfare = matching.social_welfare(utilities)
    num_matched = matching.num_matched()
    revenue = tuple(
        matching.seller_revenue(channel, utilities)
        for channel in range(market.num_channels)
    )
    interference_free = matching.is_interference_free(market.interference)
    if check_stability:
        rational = is_individually_rational(market, matching)
        nash = is_nash_stable(market, matching)
        pairwise = is_pairwise_stable(market, matching)
    else:
        rational = nash = pairwise = False
    return MatchingReport(
        social_welfare=welfare,
        num_matched=num_matched,
        num_buyers=market.num_buyers,
        matched_fraction=num_matched / market.num_buyers,
        seller_revenue=revenue,
        interference_free=interference_free,
        individually_rational=rational,
        nash_stable=nash,
        pairwise_stable=pairwise,
    )
