"""Small statistics helpers for repeated-trial aggregation.

Every experiment point in the paper's figures is a Monte-Carlo average;
:class:`SeriesStats` carries the mean together with dispersion and a
t-based confidence interval so EXPERIMENTS.md can report uncertainty, not
just point estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import SpectrumMatchingError

__all__ = ["SeriesStats", "summarize"]


@dataclass(frozen=True)
class SeriesStats:
    """Summary of one repeated measurement.

    Attributes
    ----------
    mean / std:
        Sample mean and (ddof=1) standard deviation (std is 0 for a single
        sample).
    count:
        Number of repetitions.
    ci_low / ci_high:
        95 % t-interval for the mean (equal to the mean when ``count < 2``
        or the dispersion is zero).
    """

    mean: float
    std: float
    count: int
    ci_low: float
    ci_high: float

    @property
    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SeriesStats:
    """Summarise a sample of repeated measurements.

    Raises on an empty sample -- an experiment that produced no data
    should fail loudly rather than propagate NaNs into reports.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise SpectrumMatchingError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise SpectrumMatchingError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    mean = float(values.mean())
    if values.size < 2:
        return SeriesStats(mean=mean, std=0.0, count=1, ci_low=mean, ci_high=mean)
    std = float(values.std(ddof=1))
    if std == 0.0:
        return SeriesStats(
            mean=mean, std=0.0, count=int(values.size), ci_low=mean, ci_high=mean
        )
    sem = std / np.sqrt(values.size)
    t_crit = float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, df=values.size - 1))
    half = t_crit * sem
    return SeriesStats(
        mean=mean,
        std=std,
        count=int(values.size),
        ci_low=mean - half,
        ci_high=mean + half,
    )
