"""Sensing-noise robustness: matching under a mis-estimated graph.

The paper (like the auction literature it builds on) assumes the
per-channel interference graphs are known exactly.  In practice they come
from spectrum sensing, which both *misses* real conflicts (miss
probability) and *hallucinates* absent ones (false-alarm probability).
The two error types hurt differently:

* a **missed edge** lets the algorithm co-locate truly interfering
  buyers: per the paper's utility model both victims realise ZERO utility
  -- nominal welfare overstates reality;
* a **false edge** merely forbids a reuse opportunity: feasibility is
  untouched but capacity (and welfare) shrinks.

This module perturbs a true interference map, runs the matching on the
*estimate*, and scores the result against the *truth*:

* :func:`perturb_interference` -- flip edges with given miss/false-alarm
  probabilities;
* :func:`effective_welfare` -- realised welfare under the true graphs
  (victims of real interference contribute nothing) plus the violation
  census;
* :func:`run_sensing_study` -- the full Monte-Carlo sweep used by
  ``benchmarks/bench_sensing.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.two_stage import run_two_stage
from repro.errors import MarketConfigurationError
from repro.interference.graph import InterferenceGraph, InterferenceMap
from repro.workloads.scenarios import paper_simulation_market

__all__ = [
    "perturb_interference",
    "effective_welfare",
    "SensingStudyPoint",
    "run_sensing_study",
]


def perturb_interference(
    interference: InterferenceMap,
    miss_prob: float,
    false_prob: float,
    rng: np.random.Generator,
) -> InterferenceMap:
    """Simulate imperfect sensing of an interference map.

    Every true edge is independently *missed* with probability
    ``miss_prob``; every absent pair is independently *reported* with
    probability ``false_prob``.  Each channel is perturbed independently.
    """
    if not 0.0 <= miss_prob <= 1.0 or not 0.0 <= false_prob <= 1.0:
        raise MarketConfigurationError(
            f"probabilities must lie in [0, 1], got miss={miss_prob}, "
            f"false={false_prob}"
        )
    n = interference.num_buyers
    estimated: List[InterferenceGraph] = []
    for channel in range(interference.num_channels):
        graph = interference.graph(channel)
        edges = []
        for j in range(n):
            for k in range(j + 1, n):
                if graph.interferes(j, k):
                    if rng.random() >= miss_prob:
                        edges.append((j, k))
                else:
                    if rng.random() < false_prob:
                        edges.append((j, k))
        estimated.append(InterferenceGraph(n, edges))
    return InterferenceMap(estimated)


def effective_welfare(
    true_market: SpectrumMarket, matching: Matching
) -> Tuple[float, int, int]:
    """Score a matching against the TRUE interference.

    Returns ``(welfare, violating_pairs, victim_buyers)``: a matched buyer
    sharing her channel with a truly interfering neighbour realises zero
    utility (the paper's peer-effect model); others realise ``b``.
    """
    utilities = true_market.utilities
    welfare = 0.0
    violating_pairs = 0
    victims = 0
    for channel in range(true_market.num_channels):
        graph = true_market.graph(channel)
        members = sorted(matching.coalition(channel))
        harmed = set()
        for idx, j in enumerate(members):
            for k in members[idx + 1 :]:
                if graph.interferes(j, k):
                    violating_pairs += 1
                    harmed.add(j)
                    harmed.add(k)
        victims += len(harmed)
        for j in members:
            if j not in harmed:
                welfare += float(utilities[j, channel])
    return welfare, violating_pairs, victims


@dataclass(frozen=True)
class SensingStudyPoint:
    """Aggregated outcome of one (miss, false-alarm) setting.

    Attributes
    ----------
    miss_prob / false_prob:
        The sensing-error setting.
    nominal_welfare:
        Mean welfare the algorithm *believes* it achieved (scored on the
        estimated graphs).
    effective_welfare:
        Mean welfare actually realised under the true graphs.
    violating_pairs / victim_buyers:
        Mean per-run counts of truly interfering co-located pairs and of
        buyers whose utility they destroy.
    clean_welfare:
        Mean welfare of matching with perfect sensing on the same
        markets (the common-random-numbers baseline).
    """

    miss_prob: float
    false_prob: float
    nominal_welfare: float
    effective_welfare: float
    violating_pairs: float
    victim_buyers: float
    clean_welfare: float


def run_sensing_study(
    miss_prob: float,
    false_prob: float,
    num_buyers: int = 40,
    num_channels: int = 5,
    repetitions: int = 8,
    seed: int = 0,
) -> SensingStudyPoint:
    """Monte-Carlo estimate of the cost of imperfect sensing.

    Uses common random numbers: each repetition builds one true market
    and evaluates both perfect-sensing and noisy-sensing matchings on it.
    """
    nominal = effective = pairs = victims = clean = 0.0
    for rep in range(repetitions):
        market_rng = np.random.default_rng([seed, rep])
        true_market = paper_simulation_market(
            num_buyers, num_channels, market_rng
        )
        clean_result = run_two_stage(true_market, record_trace=False)
        clean += clean_result.social_welfare

        noise_rng = np.random.default_rng([seed, rep, 1])
        estimated = perturb_interference(
            true_market.interference, miss_prob, false_prob, noise_rng
        )
        estimated_market = SpectrumMarket(
            np.array(true_market.utilities),
            estimated,
            mwis_algorithm=true_market.mwis_algorithm,
        )
        result = run_two_stage(estimated_market, record_trace=False)
        nominal += result.social_welfare
        welfare, violating, harmed = effective_welfare(
            true_market, result.matching
        )
        effective += welfare
        pairs += violating
        victims += harmed
    return SensingStudyPoint(
        miss_prob=miss_prob,
        false_prob=false_prob,
        nominal_welfare=nominal / repetitions,
        effective_welfare=effective / repetitions,
        violating_pairs=pairs / repetitions,
        victim_buyers=victims / repetitions,
        clean_welfare=clean / repetitions,
    )
