"""End-to-end distributed matching runs.

:func:`run_distributed_matching` wires one :class:`BuyerAgent` per virtual
buyer and one :class:`SellerAgent` per channel into the time-slotted
kernel, runs to quiescence, and extracts the final matching from the
agents' local views -- cross-checking that every buyer's belief about her
seller agrees with that seller's coalition (any divergence is a protocol
bug and raises).

The returned :class:`DistributedResult` carries slot and message counts so
the transition-rule benchmark can compare the default rule's ``MN + M + N``
slot cost against the adaptive rules' much shorter runs (the paper's
"23 slots vs 7 slots" observation for the toy example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.distributed.buyer_agent import BuyerAgent
from repro.distributed.network import Network
from repro.distributed.seller_agent import SellerAgent
from repro.distributed.simulator import MessageEvent, TimeSlottedSimulator
from typing import Tuple
from repro.distributed.transition import TransitionPolicy, default_policy
from repro.errors import ProtocolError
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = ["DistributedResult", "run_distributed_matching"]


@dataclass(frozen=True)
class DistributedResult:
    """Outcome of a message-passing run.

    Attributes
    ----------
    matching:
        Final matching assembled from the sellers' coalitions.
    slots:
        Total time slots until quiescence (the distributed running time).
    messages_sent / messages_delivered / messages_dropped:
        Wire traffic accounting from the kernel.
    social_welfare:
        Final welfare under the market's utilities.
    """

    matching: Matching
    slots: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    social_welfare: float
    #: Per-message trace (empty unless ``record_events=True``).
    events: Tuple[MessageEvent, ...] = ()


def run_distributed_matching(
    market: SpectrumMarket,
    policy: Optional[TransitionPolicy] = None,
    network: Optional[Network] = None,
    seed: int = 0,
    max_slots: int = 1_000_000,
    reliable_transport: bool = False,
    retransmit_interval: int = 4,
    initial_matching: Optional[Matching] = None,
    record_events: bool = False,
    recorder: Optional[Recorder] = None,
) -> DistributedResult:
    """Run the full message-level protocol on ``market``.

    Parameters
    ----------
    market:
        The virtual-level spectrum market.
    policy:
        Transition policy; the paper's conservative default rule if omitted.
    network:
        Delivery model; reliable synchronous delivery if omitted.
    seed:
        Seed for the simulation RNG (only consulted by randomised
        networks; the protocol itself is deterministic).
    max_slots:
        Safety bound handed to the kernel.
    reliable_transport:
        Wrap every agent in the ARQ layer of
        :mod:`repro.distributed.transport`, making the protocol live over
        lossy networks (message counters then include transport frames
        and acknowledgements).
    retransmit_interval:
        ARQ retransmission period in slots (ignored unless
        ``reliable_transport``).
    initial_matching:
        Warm start (dynamic re-matching, see :mod:`repro.dynamic`): every
        agent begins directly in Stage II with this interference-free
        matching as its state -- buyers try to transfer upward, sellers
        accept compatible applications and invite rejects.  ``None``
        (default) runs the full two-stage protocol from scratch.
    recorder:
        Observability backend (``None`` resolves to the ambient recorder).
        Passed through to the kernel for per-slot metrics, and used to
        frame the run with ``distributed.run_start`` /
        ``distributed.run_end`` lifecycle events.

    Returns
    -------
    DistributedResult
        Final matching plus run accounting.

    Raises
    ------
    ProtocolError
        If buyers' and sellers' final local views disagree (would indicate
        a protocol bug) or the final matching violates interference.
    SimulationError
        If the run fails to quiesce within ``max_slots`` (e.g. under a
        lossy network, which the protocol does not tolerate).
    """
    if policy is None:
        policy = default_policy()
    rec = resolve_recorder(recorder)
    if rec.enabled:
        rec.emit(
            "distributed.run_start",
            buyers=market.num_buyers,
            channels=market.num_channels,
            seed=seed,
            warm_start=initial_matching is not None,
            reliable_transport=reliable_transport,
        )

    if initial_matching is not None:
        if (
            initial_matching.num_buyers != market.num_buyers
            or initial_matching.num_channels != market.num_channels
        ):
            raise ProtocolError(
                "initial_matching dimensions do not match the market"
            )
        if not initial_matching.is_interference_free(market.interference):
            raise ProtocolError("initial_matching violates interference")
        buyers = [
            BuyerAgent(
                j, market, policy,
                initial_channel=initial_matching.channel_of(j),
            )
            for j in range(market.num_buyers)
        ]
        sellers = [
            SellerAgent(
                i, market, policy,
                initial_coalition=set(initial_matching.coalition(i)),
            )
            for i in range(market.num_channels)
        ]
    else:
        buyers = [
            BuyerAgent(j, market, policy) for j in range(market.num_buyers)
        ]
        sellers = [
            SellerAgent(i, market, policy) for i in range(market.num_channels)
        ]
    agents = [*buyers, *sellers]
    if reliable_transport:
        from repro.distributed.transport import wrap_reliable

        agents = wrap_reliable(agents, retransmit_interval)
    simulator = TimeSlottedSimulator(
        agents=agents,
        network=network,
        seed=seed,
        record_events=record_events,
        recorder=rec,
    )
    slots = simulator.run(max_slots=max_slots)

    matching = Matching(market.num_channels, market.num_buyers)
    for seller in sellers:
        for buyer in sorted(seller.waitlist):
            matching.match(buyer, seller.channel)

    # Cross-check both sides' local views.
    for buyer_agent in buyers:
        believed = buyer_agent.current_channel
        actual = matching.channel_of(buyer_agent.buyer)
        if believed != actual:
            raise ProtocolError(
                f"buyer {buyer_agent.buyer} believes she is matched to "
                f"{believed} but sellers record {actual}"
            )
    if not matching.is_interference_free(market.interference):
        raise ProtocolError("distributed run produced an interfering matching")

    result = DistributedResult(
        matching=matching,
        slots=slots,
        messages_sent=simulator.messages_sent,
        messages_delivered=simulator.messages_delivered,
        messages_dropped=simulator.messages_dropped,
        social_welfare=matching.social_welfare(market.utilities),
        events=simulator.events,
    )
    if rec.enabled:
        rec.emit(
            "distributed.run_end",
            slots=result.slots,
            messages_sent=result.messages_sent,
            messages_delivered=result.messages_delivered,
            messages_dropped=result.messages_dropped,
            social_welfare=result.social_welfare,
            matched=matching.num_matched(),
        )
    return result
