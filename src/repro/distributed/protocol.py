"""End-to-end distributed matching runs.

:func:`run_distributed_matching` wires one :class:`BuyerAgent` per virtual
buyer and one :class:`SellerAgent` per channel into the time-slotted
kernel, runs to quiescence, and extracts the final matching from the
agents' local views -- cross-checking that every buyer's belief about her
seller agrees with that seller's coalition (any divergence is a protocol
bug and raises).

The returned :class:`DistributedResult` carries slot and message counts so
the transition-rule benchmark can compare the default rule's ``MN + M + N``
slot cost against the adaptive rules' much shorter runs (the paper's
"23 slots vs 7 slots" observation for the toy example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.distributed.buyer_agent import BuyerAgent
from repro.distributed.faults import FaultSchedule, PartitionedNetwork
from repro.distributed.network import Network
from repro.distributed.seller_agent import SellerAgent
from repro.distributed.simulator import MessageEvent, TimeSlottedSimulator
from repro.distributed.transition import TransitionPolicy, default_policy
from repro.engine.validation import matching_welfare, require_interference_free
from repro.errors import ProtocolError
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = [
    "DistributedResult",
    "DistributedSimulation",
    "build_distributed_simulation",
    "run_distributed_matching",
]


@dataclass(frozen=True)
class DistributedResult:
    """Outcome of a message-passing run.

    Attributes
    ----------
    matching:
        Final matching assembled from the sellers' coalitions.
    slots:
        Total time slots until quiescence (the distributed running time).
    messages_sent / messages_delivered / messages_dropped:
        Wire traffic accounting from the kernel.
    social_welfare:
        Final welfare under the market's utilities.
    status:
        ``"converged"`` -- the protocol quiesced and the matching is its
        agreed outcome.  ``"degraded"`` -- the run hit its deadline under
        ``on_timeout="degrade"`` and the matching is the best
        interference-free *partial* matching salvageable from seller
        state (safety invariants validated; optimality and two-sided
        agreement are not claimed).
    crashes / restarts / messages_lost_to_crash:
        Node-fault accounting from the kernel (all zero without a
        :class:`~repro.distributed.faults.FaultSchedule`).
    partition_drops:
        Messages dropped by partitions / targeted message faults.
    recovery_slots:
        Downtime of each executed restart, in restart order (the raw
        series behind the ``sim.recovery_slots`` histogram).
    view_divergences:
        Buyer/seller view disagreements reconciled while extracting the
        matching.  Always 0 for a converged fault-free run (a divergence
        there raises :class:`~repro.errors.ProtocolError` instead).
    """

    matching: Matching
    slots: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    social_welfare: float
    #: Per-message trace (empty unless ``record_events=True``).
    events: Tuple[MessageEvent, ...] = ()
    status: str = "converged"
    crashes: int = 0
    restarts: int = 0
    messages_lost_to_crash: int = 0
    partition_drops: int = 0
    recovery_slots: Tuple[int, ...] = ()
    view_divergences: int = 0


def _extract_reconciled(
    market: SpectrumMarket,
    buyers: List[BuyerAgent],
    sellers: List["SellerAgent"],
) -> Tuple[Matching, int]:
    """Best-effort matching from possibly-inconsistent agent views.

    Faults can leave the two sides' local views divergent: a crashed
    buyer's ``Leave`` may never have reached her old seller, a partition
    can freeze a transfer mid-handshake.  Sellers own the resource, so
    seller waitlists are the source of truth; when several sellers claim
    one buyer, the buyer's own belief breaks the tie (she knows where she
    last moved), falling back to her highest-utility claimant.  Buyers no
    seller claims stay unmatched.  Every resolved disagreement is counted.

    Safety survives reconciliation by construction: each seller's waitlist
    is kept interference-free by her own commit checks, and dropping
    members of an independent set keeps it independent.
    """
    claims: dict = {}
    for seller in sellers:
        for buyer in seller.waitlist:
            claims.setdefault(buyer, []).append(seller.channel)
    matching = Matching(market.num_channels, market.num_buyers)
    divergences = 0
    for buyer_agent in buyers:
        j = buyer_agent.buyer
        belief = buyer_agent.current_channel
        claiming = claims.get(j, [])
        if belief is not None and belief in claiming:
            chosen = belief
            divergences += len(claiming) - 1
        elif claiming:
            chosen = max(
                claiming, key=lambda i: (float(market.utilities[j, i]), -i)
            )
            divergences += 1
        else:
            if belief is not None:
                divergences += 1
            continue
        matching.match(j, chosen)
    return matching, divergences


@dataclass
class DistributedSimulation:
    """A built-but-not-finalised distributed run.

    Produced by :func:`build_distributed_simulation`; holds the simulator
    plus the agent lists and enough context to extract the final
    :class:`DistributedResult` once the kernel quiesces.  Splitting
    construction from finalisation is what lets the durable runtime
    (:mod:`repro.runtime`) restore a checkpointed simulator into a
    freshly built population and then finalise exactly like an
    uninterrupted run would.
    """

    market: SpectrumMarket
    simulator: TimeSlottedSimulator
    buyers: List[BuyerAgent]
    sellers: List[SellerAgent]
    recorder: Recorder
    seed: int
    reliable_transport: bool
    warm_start: bool
    #: Strict two-sided extraction applies only to fault-free runs.
    fault_free: bool

    def emit_run_start(self) -> None:
        """Emit the ``distributed.run_start`` lifecycle event."""
        if self.recorder.enabled:
            self.recorder.emit(
                "distributed.run_start",
                buyers=self.market.num_buyers,
                channels=self.market.num_channels,
                seed=self.seed,
                warm_start=self.warm_start,
                reliable_transport=self.reliable_transport,
            )

    def finalize(self, slots: int) -> DistributedResult:
        """Extract the result and emit ``distributed.run_end``.

        ``slots`` is the kernel's return value from ``run()``.  Fault-free
        converged runs use the strict historical extraction (buyer and
        seller views must agree exactly); fault or timed-out runs use the
        reconciling extraction.  Safety is validated on every path.
        """
        market = self.market
        simulator = self.simulator
        divergences = 0
        if self.fault_free and not simulator.timed_out:
            # Fault-free convergence: the strict historical path, unchanged.
            matching = Matching(market.num_channels, market.num_buyers)
            for seller in self.sellers:
                for buyer in sorted(seller.waitlist):
                    matching.match(buyer, seller.channel)
            # Cross-check both sides' local views.
            for buyer_agent in self.buyers:
                believed = buyer_agent.current_channel
                actual = matching.channel_of(buyer_agent.buyer)
                if believed != actual:
                    raise ProtocolError(
                        f"buyer {buyer_agent.buyer} believes she is matched "
                        f"to {believed} but sellers record {actual}"
                    )
        else:
            matching, divergences = _extract_reconciled(
                market, self.buyers, self.sellers
            )
        require_interference_free(
            market,
            matching,
            error=ProtocolError,
            context="distributed run output",
        )

        effective_network = simulator.network
        partition_drops = 0
        if isinstance(effective_network, PartitionedNetwork):
            partition_drops = (
                effective_network.partition_drops
                + effective_network.targeted_drops
            )
        result = DistributedResult(
            matching=matching,
            slots=slots,
            messages_sent=simulator.messages_sent,
            messages_delivered=simulator.messages_delivered,
            messages_dropped=simulator.messages_dropped,
            social_welfare=matching_welfare(market.utilities, matching),
            events=simulator.events,
            status="degraded" if simulator.timed_out else "converged",
            crashes=simulator.crashes,
            restarts=simulator.restarts,
            messages_lost_to_crash=simulator.messages_lost_to_crash,
            partition_drops=partition_drops,
            recovery_slots=simulator.recovery_slots,
            view_divergences=divergences,
        )
        rec = self.recorder
        if rec.enabled:
            rec.emit(
                "distributed.run_end",
                slots=result.slots,
                status=result.status,
                messages_sent=result.messages_sent,
                messages_delivered=result.messages_delivered,
                messages_dropped=result.messages_dropped,
                social_welfare=result.social_welfare,
                matched=matching.num_matched(),
                crashes=result.crashes,
                restarts=result.restarts,
                messages_lost_to_crash=result.messages_lost_to_crash,
            )
        return result


def build_distributed_simulation(
    market: SpectrumMarket,
    policy: Optional[TransitionPolicy] = None,
    network: Optional[Network] = None,
    seed: int = 0,
    reliable_transport: bool = False,
    retransmit_interval: int = 4,
    initial_matching: Optional[Matching] = None,
    record_events: bool = False,
    recorder: Optional[Recorder] = None,
    fault_schedule: Optional[FaultSchedule] = None,
) -> DistributedSimulation:
    """Wire agents and kernel for a distributed run without running it.

    Construction is deterministic in its arguments, which is what makes
    checkpoint/resume sound: the durable runtime rebuilds the identical
    population from the run manifest, restores the kernel snapshot into
    it, and continues.  Does *not* emit ``distributed.run_start`` -- call
    :meth:`DistributedSimulation.emit_run_start` for fresh runs (resumed
    runs already carry the original event in their trace).
    """
    if policy is None:
        policy = default_policy()
    rec = resolve_recorder(recorder)
    if initial_matching is not None:
        if (
            initial_matching.num_buyers != market.num_buyers
            or initial_matching.num_channels != market.num_channels
        ):
            raise ProtocolError(
                "initial_matching dimensions do not match the market"
            )
        require_interference_free(
            market,
            initial_matching,
            error=ProtocolError,
            context="initial_matching",
        )
        buyers = [
            BuyerAgent(
                j, market, policy,
                initial_channel=initial_matching.channel_of(j),
            )
            for j in range(market.num_buyers)
        ]
        sellers = [
            SellerAgent(
                i, market, policy,
                initial_coalition=set(initial_matching.coalition(i)),
            )
            for i in range(market.num_channels)
        ]
    else:
        buyers = [
            BuyerAgent(j, market, policy) for j in range(market.num_buyers)
        ]
        sellers = [
            SellerAgent(i, market, policy) for i in range(market.num_channels)
        ]
    agents = [*buyers, *sellers]
    if reliable_transport:
        from repro.distributed.transport import wrap_reliable

        agents = wrap_reliable(agents, retransmit_interval)
    simulator = TimeSlottedSimulator(
        agents=agents,
        network=network,
        seed=seed,
        record_events=record_events,
        recorder=rec,
        fault_schedule=fault_schedule,
    )
    return DistributedSimulation(
        market=market,
        simulator=simulator,
        buyers=buyers,
        sellers=sellers,
        recorder=rec,
        seed=seed,
        reliable_transport=reliable_transport,
        warm_start=initial_matching is not None,
        fault_free=fault_schedule is None,
    )


def run_distributed_matching(
    market: SpectrumMarket,
    policy: Optional[TransitionPolicy] = None,
    network: Optional[Network] = None,
    seed: int = 0,
    max_slots: int = 1_000_000,
    reliable_transport: bool = False,
    retransmit_interval: int = 4,
    initial_matching: Optional[Matching] = None,
    record_events: bool = False,
    recorder: Optional[Recorder] = None,
    fault_schedule: Optional[FaultSchedule] = None,
    deadline_slots: Optional[int] = None,
    on_timeout: str = "raise",
) -> DistributedResult:
    """Run the full message-level protocol on ``market``.

    Parameters
    ----------
    market:
        The virtual-level spectrum market.
    policy:
        Transition policy; the paper's conservative default rule if omitted.
    network:
        Delivery model; reliable synchronous delivery if omitted.
    seed:
        Seed for the simulation RNG (only consulted by randomised
        networks; the protocol itself is deterministic).
    max_slots:
        Safety bound handed to the kernel.
    reliable_transport:
        Wrap every agent in the ARQ layer of
        :mod:`repro.distributed.transport`, making the protocol live over
        lossy networks (message counters then include transport frames
        and acknowledgements).
    retransmit_interval:
        ARQ retransmission period in slots (ignored unless
        ``reliable_transport``).
    initial_matching:
        Warm start (dynamic re-matching, see :mod:`repro.dynamic`): every
        agent begins directly in Stage II with this interference-free
        matching as its state -- buyers try to transfer upward, sellers
        accept compatible applications and invite rejects.  ``None``
        (default) runs the full two-stage protocol from scratch.
    recorder:
        Observability backend (``None`` resolves to the ambient recorder).
        Passed through to the kernel for per-slot metrics, and used to
        frame the run with ``distributed.run_start`` /
        ``distributed.run_end`` lifecycle events.
    fault_schedule:
        Declarative node/link faults
        (:class:`~repro.distributed.faults.FaultSchedule`): crash/restart
        agents, partition the population, drop or delay targeted message
        types.  Partitions and message faults are enforced by wrapping
        ``network`` in a :class:`~repro.distributed.faults.
        PartitionedNetwork` automatically.  Fault runs use a reconciling
        matching extraction (seller waitlists are authoritative; buyer
        beliefs break ties) instead of the strict two-sided cross-check,
        because faults can legitimately leave views divergent.
    deadline_slots:
        Slot budget for graceful degradation; defaults to ``max_slots``.
    on_timeout:
        ``"raise"`` (default): exceeding the budget raises
        :class:`~repro.errors.SimulationError`, as before.  ``"degrade"``:
        return a :class:`DistributedResult` with ``status="degraded"``
        carrying the best interference-free partial matching salvageable
        from seller state -- for markets that must produce *some* safe
        assignment under unrecoverable faults.

    Returns
    -------
    DistributedResult
        Final matching plus run and fault accounting.

    Raises
    ------
    ProtocolError
        If buyers' and sellers' final local views disagree on a fault-free
        run (would indicate a protocol bug) or the final matching violates
        interference (safety is validated on every path, degraded
        included).
    SimulationError
        If the run fails to quiesce within its slot budget and
        ``on_timeout="raise"`` (e.g. under a lossy network without the
        ARQ transport, which the bare protocol does not tolerate).

    This is now a shim over
    :func:`repro.run.session.execute_distributed`, which holds the
    execution body; behaviour and the emitted event stream are unchanged.
    """
    from repro.run.session import execute_distributed

    return execute_distributed(
        market,
        policy=policy,
        network=network,
        seed=seed,
        max_slots=max_slots,
        reliable_transport=reliable_transport,
        retransmit_interval=retransmit_interval,
        initial_matching=initial_matching,
        record_events=record_events,
        recorder=recorder,
        fault_schedule=fault_schedule,
        deadline_slots=deadline_slots,
        on_timeout=on_timeout,
    )
