"""Buyer agent: the buyer-side protocol state machine.

A buyer runs through two stages mirroring Algorithms 1 and 2, but drives
every step off received messages and local knowledge only:

* her own utility vector (private valuation);
* her interference neighbourhoods per channel (obtainable by spectrum
  sensing, as assumed throughout the paper);
* the coalition/proposer digests her current seller includes in
  ``WaitlistUpdate`` messages (what makes transition rules I/II evaluable).

Stage I: propose down the preference list, one outstanding proposal at a
time; on eviction resume proposing.  Transition to Stage II per the
configured rule, on the seller's notification (rule III), or when the
proposal list is exhausted.

Stage II: send transfer applications down ``T_j`` (one outstanding at a
time, skipping channels no longer strictly better than the current match),
confirm or decline the resulting offers, and answer invitations at any
time.  On every move the buyer explicitly informs her previous seller with
a ``Leave`` message.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.preferences import buyer_preference_order
from repro.distributed.messages import (
    Evict,
    Invite,
    InviteAccept,
    InviteDecline,
    Leave,
    Message,
    ProposalReject,
    Propose,
    SellerStageNotify,
    TransferApply,
    TransferConfirm,
    TransferDecline,
    TransferOffer,
    TransferReject,
    WaitlistUpdate,
)
from repro.distributed.probability import eviction_probability
from repro.distributed.simulator import Agent, SlotContext
from repro.distributed.transition import BuyerTransitionRule, TransitionPolicy
from repro.errors import ProtocolError

__all__ = ["BuyerAgent", "buyer_agent_id", "seller_agent_id"]


def buyer_agent_id(buyer: int) -> str:
    """Wire id of buyer ``buyer``."""
    return f"buyer:{buyer}"


def seller_agent_id(channel: int) -> str:
    """Wire id of the seller owning ``channel``."""
    return f"seller:{channel}"


class BuyerAgent(Agent):
    """One virtual buyer of the distributed protocol.

    Parameters
    ----------
    buyer:
        The buyer's id ``j``.
    market:
        Market instance (utilities + interference neighbourhoods are the
        buyer's local knowledge).
    policy:
        The transition policy in force.
    """

    #: Buyers step before sellers so a slot carries a full propose/decide round.
    PRIORITY = 0

    def __init__(
        self,
        buyer: int,
        market: SpectrumMarket,
        policy: TransitionPolicy,
        initial_channel: Optional[int] = None,
    ) -> None:
        super().__init__(buyer_agent_id(buyer), priority=self.PRIORITY)
        self.buyer = buyer
        self._market = market
        self._policy = policy
        self._utilities = market.utilities[buyer, :]

        # Stage I state.
        self.stage = 1
        self._unproposed: List[int] = buyer_preference_order(market, buyer)
        self._outstanding_proposal: Optional[int] = None
        self.current_channel: Optional[int] = None
        #: Cumulative proposer set reported by the current seller.
        self._proposers_at_current: Set[int] = set()

        # Stage II state.
        self._unapplied: List[int] = []
        self._applied: Set[int] = set()
        self._outstanding_application: Optional[int] = None

        self._default_slot = policy.default_stage2_slot(
            market.num_channels, market.num_buyers
        )

        if initial_channel is not None:
            # Warm start (dynamic re-matching): the buyer already holds a
            # channel from the previous epoch and begins directly in
            # Stage II, trying to transfer upward.
            self.current_channel = initial_channel
            self._enter_stage2()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def current_utility(self) -> float:
        """Realised utility of the current match (0 when unmatched)."""
        if self.current_channel is None:
            return 0.0
        return float(self._utilities[self.current_channel])

    def _become_unmatched(self) -> None:
        self.current_channel = None
        self._proposers_at_current = set()
        if self.stage == 2:
            # Evicted after an early transition (the risk Section IV-A
            # quantifies): rebuild the transfer list against a baseline of
            # zero, minus channels already applied to.
            self._rebuild_unapplied()

    def _rebuild_unapplied(self) -> None:
        baseline = self.current_utility()
        candidates = [
            i
            for i in range(self._market.num_channels)
            if self._utilities[i] > baseline and i not in self._applied
        ]
        candidates.sort(key=lambda i: (-self._utilities[i], i))
        self._unapplied = candidates

    def _enter_stage2(self) -> None:
        if self.stage == 2:
            return
        self.stage = 2
        self._outstanding_proposal = None
        self._rebuild_unapplied()

    def _move_to(self, channel: int, ctx: SlotContext) -> None:
        """Commit a move (transfer confirm or invite accept)."""
        previous = self.current_channel
        if previous is not None and previous != channel:
            ctx.send(seller_agent_id(previous), Leave(self.agent_id, self.buyer))
        self.current_channel = channel
        self._proposers_at_current = set()

    # ------------------------------------------------------------------
    # Transition rules
    # ------------------------------------------------------------------
    def _stage1_transition_due(self, now: int) -> bool:
        """Evaluate the configured buyer rule (matched buyers only)."""
        if now >= self._default_slot:
            return True  # default rule / fallback of the adaptive rules
        rule = self._policy.buyer_rule
        if rule is BuyerTransitionRule.DEFAULT:
            return False
        if self.current_channel is None:
            return False
        channel = self.current_channel
        neighbors = self._market.graph(channel).neighbors(self.buyer)
        unseen = [k for k in neighbors if k not in self._proposers_at_current]
        if rule is BuyerTransitionRule.NEIGHBORS_PROPOSED:
            return not unseen
        if rule is BuyerTransitionRule.EVICTION_PROBABILITY:
            risk = eviction_probability(
                round_index=now + 1,
                num_unseen_neighbors=len(unseen),
                num_channels=self._market.num_channels,
                num_buyers=self._market.num_buyers,
                own_price=float(self._utilities[channel]),
                cdf=self._policy.price_cdf,
            )
            return risk < self._policy.buyer_threshold
        raise ProtocolError(f"unknown buyer rule {rule!r}")

    # ------------------------------------------------------------------
    # Agent interface
    # ------------------------------------------------------------------
    def step(self, inbox: List[Message], ctx: SlotContext) -> None:
        for message in inbox:
            ctx.set_cause(message)
            self._handle(message, ctx)

        if self.stage == 1:
            self._act_stage1(ctx)
        if self.stage == 2:
            self._act_stage2(ctx)

    def _handle(self, message: Message, ctx: SlotContext) -> None:
        if isinstance(message, WaitlistUpdate):
            if self._outstanding_proposal == message.channel:
                self._outstanding_proposal = None
            self.current_channel = message.channel
            self._proposers_at_current = set(message.proposers_so_far)
        elif isinstance(message, Evict):
            if self.current_channel == message.channel:
                self._become_unmatched()
        elif isinstance(message, ProposalReject):
            if self._outstanding_proposal == message.channel:
                self._outstanding_proposal = None
        elif isinstance(message, SellerStageNotify):
            if self.current_channel == message.channel and self.stage == 1:
                self._enter_stage2()  # rule III
        elif isinstance(message, TransferOffer):
            if self._outstanding_application == message.channel:
                self._outstanding_application = None
            if float(self._utilities[message.channel]) > self.current_utility():
                ctx.send(
                    seller_agent_id(message.channel),
                    TransferConfirm(self.agent_id, self.buyer),
                )
                self._move_to(message.channel, ctx)
            else:
                ctx.send(
                    seller_agent_id(message.channel),
                    TransferDecline(self.agent_id, self.buyer),
                )
        elif isinstance(message, TransferReject):
            if self._outstanding_application == message.channel:
                self._outstanding_application = None
        elif isinstance(message, Invite):
            if float(self._utilities[message.channel]) > self.current_utility():
                ctx.send(
                    seller_agent_id(message.channel),
                    InviteAccept(self.agent_id, self.buyer),
                )
                self._move_to(message.channel, ctx)
            else:
                ctx.send(
                    seller_agent_id(message.channel),
                    InviteDecline(self.agent_id, self.buyer),
                )
        else:
            raise ProtocolError(
                f"buyer {self.buyer} cannot handle message {message!r}"
            )

    def _act_stage1(self, ctx: SlotContext) -> None:
        if self.current_channel is None:
            if self._outstanding_proposal is not None:
                return  # stop-and-wait: a proposal is in flight
            if self._unproposed:
                channel = self._unproposed.pop(0)
                self._outstanding_proposal = channel
                ctx.send(
                    seller_agent_id(channel), Propose(self.agent_id, self.buyer)
                )
                return
            # Exhausted all proposals: nothing left to try in Stage I.
            self._enter_stage2()
            return
        if self._stage1_transition_due(ctx.now):
            self._enter_stage2()

    def _act_stage2(self, ctx: SlotContext) -> None:
        if self._outstanding_application is not None:
            return
        current = self.current_utility()
        while self._unapplied and float(
            self._utilities[self._unapplied[0]]
        ) <= current:
            self._unapplied.pop(0)  # stale: no longer strictly better
        if not self._unapplied:
            return
        channel = self._unapplied.pop(0)
        self._applied.add(channel)
        self._outstanding_application = channel
        ctx.send(seller_agent_id(channel), TransferApply(self.agent_id, self.buyer))

    def is_done(self) -> bool:
        return (
            self.stage == 2
            and self._outstanding_application is None
            and not self._has_live_applications()
        )

    # ------------------------------------------------------------------
    # Crash/restart support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint all mutable protocol state (market knowledge is
        static and shared, so only the state machine is captured)."""
        return {
            "stage": self.stage,
            "unproposed": list(self._unproposed),
            "outstanding_proposal": self._outstanding_proposal,
            "current_channel": self.current_channel,
            "proposers_at_current": set(self._proposers_at_current),
            "unapplied": list(self._unapplied),
            "applied": set(self._applied),
            "outstanding_application": self._outstanding_application,
        }

    def restore(self, state: dict) -> None:
        self.stage = state["stage"]
        self._unproposed = list(state["unproposed"])
        self._outstanding_proposal = state["outstanding_proposal"]
        self.current_channel = state["current_channel"]
        self._proposers_at_current = set(state["proposers_at_current"])
        self._unapplied = list(state["unapplied"])
        self._applied = set(state["applied"])
        self._outstanding_application = state["outstanding_application"]

    def _has_live_applications(self) -> bool:
        current = self.current_utility()
        return any(float(self._utilities[i]) > current for i in self._unapplied)
