"""Stage-transition policies (Section IV).

The two-stage algorithm is distributed *within* each stage, but stage
boundaries need coordination: a buyer cannot observe that all other buyers
have stopped proposing.  The paper proposes per-participant rules:

* **Default rule** -- wait out the worst-case horizons: ``MN`` slots for
  Stage I, then ``M`` for Stage II Phase 1, then ``N`` for Phase 2.  Safe
  but extremely slow (23 slots for the toy example that actually needs 7).
* **Buyer rule I** -- transition once all interfering neighbours have
  proposed to the buyer's current seller (her match can no longer change).
* **Buyer rule II** -- transition once the estimated eviction probability
  ``P^k`` (eqs. 7-8) falls below a threshold.
* **Buyer rule III** -- transition upon the matched seller's notification
  (always active: it costs nothing and is exact).
* **Seller rule** -- transition once the estimated better-proposal
  probability ``Q^k`` (eq. 9) falls below a threshold.

A :class:`TransitionPolicy` bundles one buyer rule and one seller rule with
their thresholds.  Adaptive rules always keep the default slot as a
fallback so liveness never depends on a probability estimate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.distributed.probability import PriceCdf, uniform_price_cdf
from repro.errors import SpectrumMatchingError

__all__ = [
    "BuyerTransitionRule",
    "SellerTransitionRule",
    "TransitionPolicy",
    "default_policy",
    "adaptive_policy",
    "neighbor_rule_policy",
]


class BuyerTransitionRule(str, enum.Enum):
    """Which Stage-I exit condition buyers evaluate while matched."""

    #: Wait for the default slot ``MN`` (plus rule III notifications).
    DEFAULT = "default"
    #: Rule I: all interfering neighbours have proposed to my seller.
    NEIGHBORS_PROPOSED = "neighbors_proposed"
    #: Rule II: estimated eviction probability ``P^k`` below threshold.
    EVICTION_PROBABILITY = "eviction_probability"


class SellerTransitionRule(str, enum.Enum):
    """Which Stage-I exit condition sellers evaluate."""

    #: Wait for the default slot ``MN``.
    DEFAULT = "default"
    #: Estimated better-proposal probability ``Q^k`` below threshold.
    BETTER_PROPOSAL_PROBABILITY = "better_proposal_probability"


@dataclass(frozen=True)
class TransitionPolicy:
    """Configuration of the distributed run's stage transitions.

    Attributes
    ----------
    buyer_rule / seller_rule:
        Rule selectors (see the enums above).  Rule III (seller
        notification) and the exhausted-proposal-list exit are always
        active regardless of the selector.
    buyer_threshold / seller_threshold:
        Probability thresholds for the adaptive rules.
    price_cdf:
        The price distribution ``F`` used by eqs. (7)-(9); uniform [0, 1]
        by default, matching the paper's workloads.
    phase1_grace_slots:
        Extra slots a seller waits (beyond ``M``, the Phase-1 horizon of
        Proposition 2) after her own stage transition before starting
        Phase 2, absorbing the offer/confirm handshake latency.
    """

    buyer_rule: BuyerTransitionRule = BuyerTransitionRule.DEFAULT
    seller_rule: SellerTransitionRule = SellerTransitionRule.DEFAULT
    buyer_threshold: float = 0.05
    seller_threshold: float = 0.05
    price_cdf: PriceCdf = uniform_price_cdf
    phase1_grace_slots: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.buyer_threshold < 1.0:
            raise SpectrumMatchingError(
                f"buyer_threshold must lie in (0, 1), got {self.buyer_threshold}"
            )
        if not 0.0 < self.seller_threshold < 1.0:
            raise SpectrumMatchingError(
                f"seller_threshold must lie in (0, 1), got {self.seller_threshold}"
            )
        if self.phase1_grace_slots < 0:
            raise SpectrumMatchingError("phase1_grace_slots must be >= 0")

    def default_stage2_slot(self, num_channels: int, num_buyers: int) -> int:
        """The default rule's Stage-II entry slot: ``MN``."""
        return num_channels * num_buyers

    def phase1_duration(self, num_channels: int) -> int:
        """Slots a seller spends in Phase 1 before starting Phase 2.

        The paper's default is ``M`` rounds (Proposition 2 bounds Phase 1
        by ``O(M)``); the grace slots absorb the explicit offer/confirm
        handshake of the message-level protocol.
        """
        return num_channels + self.phase1_grace_slots


def default_policy() -> TransitionPolicy:
    """The paper's conservative default transition rule."""
    return TransitionPolicy(
        buyer_rule=BuyerTransitionRule.DEFAULT,
        seller_rule=SellerTransitionRule.DEFAULT,
    )


def adaptive_policy(
    buyer_threshold: float = 0.05,
    seller_threshold: float = 0.05,
    price_cdf: PriceCdf = uniform_price_cdf,
) -> TransitionPolicy:
    """Probability-driven rules (buyer rule II + seller ``Q^k`` rule)."""
    return TransitionPolicy(
        buyer_rule=BuyerTransitionRule.EVICTION_PROBABILITY,
        seller_rule=SellerTransitionRule.BETTER_PROPOSAL_PROBABILITY,
        buyer_threshold=buyer_threshold,
        seller_threshold=seller_threshold,
        price_cdf=price_cdf,
    )


def neighbor_rule_policy() -> TransitionPolicy:
    """Buyer rule I (exact but conservative) with the default seller rule."""
    return TransitionPolicy(
        buyer_rule=BuyerTransitionRule.NEIGHBORS_PROPOSED,
        seller_rule=SellerTransitionRule.DEFAULT,
    )
