"""Declarative node- and link-level fault injection for the kernel.

The message-level fault models in :mod:`repro.distributed.network`
(loss, delay) perturb *individual packets*; a production DSA market must
also survive *node* faults: agents crashing mid-handshake, rejoining
later, or being partitioned away from part of the population.  This
module supplies the declarative vocabulary:

* :class:`CrashFault` -- take an agent down at a slot, optionally restart
  it later, either from a checkpoint (``Agent.snapshot()`` taken at crash
  time and ``restore()``-d on restart) or *amnesiac* (restored to its
  state at simulation start, forgetting everything learned since --
  recovered buyers then re-enter Stage II through the protocol's existing
  invitation path).
* :class:`PartitionFault` -- split the agent population into groups over
  a slot window; messages crossing group boundaries are dropped.
* :class:`MessageFault` -- drop or delay only messages of given types
  (optionally restricted to one sender/destination) over a slot window,
  e.g. a blackout window for ``TransferConfirm`` only.
* :class:`FaultSchedule` -- an immutable bundle of the above, executed by
  :class:`~repro.distributed.simulator.TimeSlottedSimulator` (crashes and
  restarts) and :class:`PartitionedNetwork` (partitions and message
  faults).

:class:`PartitionedNetwork` extends the per-message ``Network.route``
interface with sender/destination visibility (``route_message``); the
kernel always routes through ``route_message``, so existing networks that
only override ``route`` keep working unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributed.messages import Message
from repro.distributed.network import Network, ReliableNetwork
from repro.errors import SimulationError

__all__ = [
    "RestartMode",
    "CrashFault",
    "PartitionFault",
    "MessageFault",
    "FaultSchedule",
    "PartitionedNetwork",
]


class RestartMode(enum.Enum):
    """How a crashed agent comes back.

    ``CHECKPOINT`` restores the ``Agent.snapshot()`` taken at crash time
    (durable local state survives the crash).  ``AMNESIA`` restores the
    snapshot taken at simulation start: the agent forgets everything it
    learned during the run, modelling a node that lost its disk.  Note
    amnesiac restart composes with plain networks but not with the ARQ
    transport (a reborn peer restarting its sequence numbers at zero looks
    like a flood of duplicates); checkpoint restart is the supported mode
    under :class:`~repro.distributed.transport.ReliableAgent`.
    """

    CHECKPOINT = "checkpoint"
    AMNESIA = "amnesia"


@dataclass(frozen=True)
class CrashFault:
    """Crash ``agent_id`` at ``crash_slot``; optionally restart later.

    While down the agent is not stepped, its queued messages are dropped
    (counted by the kernel as ``messages_lost_to_crash``), and new
    messages addressed to it are lost on send -- exactly a dead host.
    ``restart_slot=None`` means the agent never comes back.
    """

    agent_id: str
    crash_slot: int
    restart_slot: Optional[int] = None
    mode: RestartMode = RestartMode.CHECKPOINT

    def __post_init__(self) -> None:
        if self.crash_slot < 0:
            raise SimulationError(
                f"crash_slot must be >= 0, got {self.crash_slot}"
            )
        if self.restart_slot is not None and self.restart_slot <= self.crash_slot:
            raise SimulationError(
                f"restart_slot must be after crash_slot, got crash at "
                f"{self.crash_slot}, restart at {self.restart_slot}"
            )

    @classmethod
    def parse(cls, spec: str) -> "CrashFault":
        """Parse ``AGENT@CRASH[-RESTART][/MODE]`` (the CLI/manifest syntax).

        Examples: ``buyer:3@10`` (permanent crash at slot 10),
        ``seller:0@5-12/amnesia`` (restart at slot 12, amnesiac).  The
        same strings round-trip through durable-run manifests, so a
        resumed run reconstructs its fault schedule exactly.
        """
        body, _, mode_text = spec.partition("/")
        agent, at, window = body.rpartition("@")
        if not at or not agent:
            raise SimulationError(
                f"bad crash spec {spec!r}: missing 'AGENT@CRASH_SLOT'"
            )
        crash_text, dash, restart_text = window.partition("-")
        try:
            mode = RestartMode(mode_text) if mode_text else RestartMode.CHECKPOINT
            return cls(
                agent_id=agent,
                crash_slot=int(crash_text),
                restart_slot=int(restart_text) if dash else None,
                mode=mode,
            )
        except ValueError as exc:
            raise SimulationError(f"bad crash spec {spec!r}: {exc}") from None

    def to_spec(self) -> str:
        """Inverse of :meth:`parse` (used by durable-run manifests)."""
        window = str(self.crash_slot)
        if self.restart_slot is not None:
            window += f"-{self.restart_slot}"
        suffix = "" if self.mode is RestartMode.CHECKPOINT else f"/{self.mode.value}"
        return f"{self.agent_id}@{window}{suffix}"


@dataclass(frozen=True)
class PartitionFault:
    """Split the population into groups over ``[start_slot, end_slot)``.

    ``groups`` name disjoint sets of agent ids; agents named in no group
    implicitly form one extra group together.  While the partition is
    active, any message whose sender and destination fall in different
    groups is dropped by :class:`PartitionedNetwork`.
    ``end_slot=None`` expresses an unrecoverable partition (never heals).
    """

    groups: Tuple[FrozenSet[str], ...]
    start_slot: int
    end_slot: Optional[int] = None

    def __post_init__(self) -> None:
        groups = tuple(frozenset(group) for group in self.groups)
        object.__setattr__(self, "groups", groups)
        if not groups:
            raise SimulationError("a partition needs at least one group")
        named: set = set()
        for group in groups:
            overlap = named & group
            if overlap:
                raise SimulationError(
                    f"partition groups overlap on {sorted(overlap)}"
                )
            named |= group
        if self.start_slot < 0:
            raise SimulationError(
                f"start_slot must be >= 0, got {self.start_slot}"
            )
        if self.end_slot is not None and self.end_slot <= self.start_slot:
            raise SimulationError(
                f"end_slot must be after start_slot, got "
                f"[{self.start_slot}, {self.end_slot})"
            )

    @classmethod
    def parse(cls, spec: str) -> "PartitionFault":
        """Parse ``G1|G2|...@START[-END]`` (the CLI/manifest syntax).

        Groups are comma-separated agent ids; the literal group ``rest``
        is shorthand for the implicit remainder group and is dropped
        (unnamed agents always form their own group).  Example:
        ``buyer:0,buyer:1|rest@5-20``.
        """
        body, at, window = spec.rpartition("@")
        if not at or not body:
            raise SimulationError(
                f"bad partition spec {spec!r}: missing 'GROUPS@START_SLOT'"
            )
        start_text, dash, end_text = window.partition("-")
        groups = tuple(
            frozenset(part for part in group.split(",") if part)
            for group in body.split("|")
            if group and group != "rest"
        )
        try:
            return cls(
                groups=groups,
                start_slot=int(start_text),
                end_slot=int(end_text) if dash else None,
            )
        except ValueError as exc:
            raise SimulationError(
                f"bad partition spec {spec!r}: {exc}"
            ) from None

    def to_spec(self) -> str:
        """Inverse of :meth:`parse` (used by durable-run manifests)."""
        body = "|".join(
            ",".join(sorted(group)) for group in self.groups
        ) or "rest"
        window = str(self.start_slot)
        if self.end_slot is not None:
            window += f"-{self.end_slot}"
        return f"{body}@{window}"

    def active(self, now: int) -> bool:
        """Whether the partition is in force at slot ``now``."""
        if now < self.start_slot:
            return False
        return self.end_slot is None or now < self.end_slot

    def separates(self, sender: str, destination: str) -> bool:
        """Whether a ``sender -> destination`` message crosses groups."""
        sender_group = destination_group = -1  # -1: the implicit remainder
        for index, group in enumerate(self.groups):
            if sender in group:
                sender_group = index
            if destination in group:
                destination_group = index
        return sender_group != destination_group


@dataclass(frozen=True)
class MessageFault:
    """Drop or delay messages of the named types over a slot window.

    ``message_types`` are message *class names* (``"Propose"``,
    ``"TransferConfirm"``, ...; for ARQ-wrapped populations the wire types
    are ``"DataFrame"`` / ``"AckFrame"``).  ``sender`` / ``destination``
    of ``None`` match any endpoint.  ``action="drop"`` loses the message;
    ``action="delay"`` defers its delivery by ``delay`` extra slots.
    """

    message_types: Tuple[str, ...]
    start_slot: int = 0
    end_slot: Optional[int] = None
    action: str = "drop"
    delay: int = 0
    sender: Optional[str] = None
    destination: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "message_types", tuple(self.message_types))
        if not self.message_types:
            raise SimulationError("a message fault needs at least one type")
        if self.action not in ("drop", "delay"):
            raise SimulationError(
                f"action must be 'drop' or 'delay', got {self.action!r}"
            )
        if self.action == "delay" and self.delay < 1:
            raise SimulationError(
                f"a delay fault needs delay >= 1, got {self.delay}"
            )
        if self.end_slot is not None and self.end_slot <= self.start_slot:
            raise SimulationError(
                f"end_slot must be after start_slot, got "
                f"[{self.start_slot}, {self.end_slot})"
            )

    def matches(self, now: int, sender: str, destination: str,
                message: Message) -> bool:
        """Whether this fault applies to ``message`` at slot ``now``."""
        if now < self.start_slot:
            return False
        if self.end_slot is not None and now >= self.end_slot:
            return False
        if type(message).__name__ not in self.message_types:
            return False
        if self.sender is not None and sender != self.sender:
            return False
        if self.destination is not None and destination != self.destination:
            return False
        return True


class FaultSchedule:
    """Immutable, validated bundle of crash/partition/message faults.

    The kernel executes crashes and restarts (node faults); partitions and
    message faults (link faults) need per-message sender/destination
    visibility and are enforced by :class:`PartitionedNetwork` -- the
    kernel auto-wraps its network when :attr:`has_network_faults` is set,
    so passing one ``FaultSchedule`` to the simulator (or to
    ``run_distributed_matching``) activates everything declared here.
    """

    def __init__(
        self,
        crashes: Sequence[CrashFault] = (),
        partitions: Sequence[PartitionFault] = (),
        message_faults: Sequence[MessageFault] = (),
    ) -> None:
        self.crashes: Tuple[CrashFault, ...] = tuple(crashes)
        self.partitions: Tuple[PartitionFault, ...] = tuple(partitions)
        self.message_faults: Tuple[MessageFault, ...] = tuple(message_faults)

        # Per agent: crash windows must be chronological and disjoint
        # (an agent cannot crash again before its previous restart).
        by_agent: Dict[str, List[CrashFault]] = {}
        for crash in self.crashes:
            by_agent.setdefault(crash.agent_id, []).append(crash)
        for agent_id, faults in by_agent.items():
            faults.sort(key=lambda f: f.crash_slot)
            for earlier, later in zip(faults, faults[1:]):
                if earlier.restart_slot is None:
                    raise SimulationError(
                        f"agent {agent_id!r} crashes at "
                        f"{later.crash_slot} but never restarts from the "
                        f"crash at {earlier.crash_slot}"
                    )
                if later.crash_slot < earlier.restart_slot:
                    raise SimulationError(
                        f"agent {agent_id!r} crash windows overlap: "
                        f"restart at {earlier.restart_slot} vs crash at "
                        f"{later.crash_slot}"
                    )
        self._crashes_by_slot: Dict[int, List[CrashFault]] = {}
        self._restarts_by_slot: Dict[int, List[CrashFault]] = {}
        for crash in self.crashes:
            self._crashes_by_slot.setdefault(crash.crash_slot, []).append(crash)
            if crash.restart_slot is not None:
                self._restarts_by_slot.setdefault(
                    crash.restart_slot, []
                ).append(crash)
        #: Slot after which no crash/restart event remains.
        self.last_node_event_slot = max(
            [
                *(c.crash_slot for c in self.crashes),
                *(
                    c.restart_slot
                    for c in self.crashes
                    if c.restart_slot is not None
                ),
            ],
            default=-1,
        )

    # ------------------------------------------------------------------
    # Queries used by the kernel
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not (self.crashes or self.partitions or self.message_faults)

    @property
    def has_network_faults(self) -> bool:
        """Whether enforcement needs a :class:`PartitionedNetwork`."""
        return bool(self.partitions or self.message_faults)

    def crashes_at(self, slot: int) -> List[CrashFault]:
        return self._crashes_by_slot.get(slot, [])

    def restarts_at(self, slot: int) -> List[CrashFault]:
        return self._restarts_by_slot.get(slot, [])

    def partitions_starting_at(self, slot: int) -> List[PartitionFault]:
        return [p for p in self.partitions if p.start_slot == slot]

    def partitions_ending_at(self, slot: int) -> List[PartitionFault]:
        return [p for p in self.partitions if p.end_slot == slot]

    def amnesiac_agents(self) -> List[str]:
        """Agents needing a pristine snapshot at simulation start."""
        return sorted(
            {
                c.agent_id
                for c in self.crashes
                if c.restart_slot is not None and c.mode is RestartMode.AMNESIA
            }
        )

    def blocks(self, now: int, sender: str, destination: str) -> bool:
        """Whether an active partition separates the two endpoints."""
        return any(
            p.active(now) and p.separates(sender, destination)
            for p in self.partitions
        )

    def message_fault_for(
        self, now: int, sender: str, destination: str, message: Message
    ) -> Optional[MessageFault]:
        """First message fault applying to ``message``, if any."""
        for fault in self.message_faults:
            if fault.matches(now, sender, destination, message):
                return fault
        return None


class PartitionedNetwork(Network):
    """Network wrapper enforcing a schedule's partitions and message faults.

    Surviving messages are routed by ``base`` (reliable by default).  The
    wrapper needs to see each message's endpoints, so it implements the
    extended :meth:`Network.route_message` interface; the kernel always
    routes through ``route_message``, making the wrapper transparent to
    agents.  Partition and targeted-type drops are counted separately
    (:attr:`partition_drops` / :attr:`targeted_drops`) on top of the
    kernel's aggregate ``messages_dropped``.
    """

    def __init__(
        self, schedule: FaultSchedule, base: Optional[Network] = None
    ) -> None:
        self._schedule = schedule
        self._base = base if base is not None else ReliableNetwork()
        self._partition_drops = 0
        self._targeted_drops = 0

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def partition_drops(self) -> int:
        """Messages dropped because a partition separated the endpoints."""
        return self._partition_drops

    @property
    def targeted_drops(self) -> int:
        """Messages dropped by type-targeted :class:`MessageFault` rules."""
        return self._targeted_drops

    def drops_snapshot(self) -> Dict[str, int]:
        """Checkpointable view of the wrapper's drop counters.

        The wrapped ``base`` network is stateless (its verdicts depend
        only on the simulator RNG, which is checkpointed separately), so
        these two counters are the only mutable state a durable run must
        carry across a crash/resume boundary.
        """
        return {
            "partition_drops": self._partition_drops,
            "targeted_drops": self._targeted_drops,
        }

    def restore_drops(self, state: Dict[str, int]) -> None:
        """Reset the drop counters from a :meth:`drops_snapshot`."""
        self._partition_drops = int(state["partition_drops"])
        self._targeted_drops = int(state["targeted_drops"])

    def route(self, now: int, rng: np.random.Generator) -> Optional[int]:
        raise SimulationError(
            "PartitionedNetwork needs sender/destination visibility; "
            "route messages through route_message()"
        )

    def route_message(
        self,
        now: int,
        rng: np.random.Generator,
        sender: str,
        destination: str,
        message: Message,
    ) -> Optional[int]:
        if self._schedule.blocks(now, sender, destination):
            self._partition_drops += 1
            return None
        fault = self._schedule.message_fault_for(now, sender, destination, message)
        if fault is not None and fault.action == "drop":
            self._targeted_drops += 1
            return None
        verdict = self._base.route_message(now, rng, sender, destination, message)
        if verdict is None:
            return None
        if fault is not None:  # action == "delay"
            verdict += fault.delay
        return verdict
