"""Transition-probability estimates: eqs. (7)-(9) of the paper.

Buyers and sellers decide locally when to move from Stage I to Stage II by
estimating how risky an early transition is:

* A buyer matched to seller ``i`` risks being **evicted** after she stops
  proposing.  Eq. (7) gives the single-round probability ``p^k`` that some
  of her ``n`` not-yet-proposed interfering neighbours both propose to her
  seller this round and outbid her; eq. (8) compounds it over the at most
  ``MN - k + 1`` remaining rounds into ``P^k``.

* A seller risks forgoing a **better proposal** by refusing to evict.
  Eq. (9) gives the analogous single-round probability ``q^k`` that an
  unseen buyer proposes, outbids her cheapest member ``j``, and interferes
  with nobody else in the coalition (the empirical compatibility
  probability ``theta``); the same geometric compounding yields ``Q^k``.

All prices are assumed i.i.d. with a known CDF ``F`` (uniform on [0, 1] in
the paper's simulations; any callable CDF is accepted).
"""

from __future__ import annotations

from math import comb
from typing import Callable

from repro.errors import SpectrumMatchingError

__all__ = [
    "uniform_price_cdf",
    "eviction_probability_single_round",
    "eviction_probability",
    "better_proposal_probability_single_round",
    "better_proposal_probability",
]

PriceCdf = Callable[[float], float]


def uniform_price_cdf(price: float) -> float:
    """CDF of U[0, 1] prices (the paper's simulation distribution)."""
    if price <= 0.0:
        return 0.0
    if price >= 1.0:
        return 1.0
    return float(price)


def _check_common(num_unseen: int, num_channels: int) -> None:
    if num_unseen < 0:
        raise SpectrumMatchingError(
            f"number of not-yet-proposed buyers must be >= 0, got {num_unseen}"
        )
    if num_channels < 1:
        raise SpectrumMatchingError(
            f"number of channels must be >= 1, got {num_channels}"
        )


def eviction_probability_single_round(
    num_unseen_neighbors: int,
    num_channels: int,
    own_price: float,
    cdf: PriceCdf = uniform_price_cdf,
) -> float:
    """``p^k`` of eq. (7): probability of losing the slot in one round.

    Parameters
    ----------
    num_unseen_neighbors:
        ``n`` -- interfering neighbours who have not proposed to the
        buyer's current seller yet.
    num_channels:
        ``M`` -- each unseen neighbour proposes to this seller with
        probability ``1/M`` in a round.
    own_price:
        ``b_{i,j}`` -- the buyer's own offered price on the channel.
    cdf:
        Price distribution ``F``.
    """
    _check_common(num_unseen_neighbors, num_channels)
    n = num_unseen_neighbors
    m = num_channels
    f_value = cdf(own_price)
    total = 0.0
    for x in range(1, n + 1):
        binomial = comb(n, x) * (1.0 / m) ** x * (1.0 - 1.0 / m) ** (n - x)
        total += binomial * (1.0 - f_value**x)
    return total


def eviction_probability(
    round_index: int,
    num_unseen_neighbors: int,
    num_channels: int,
    num_buyers: int,
    own_price: float,
    cdf: PriceCdf = uniform_price_cdf,
) -> float:
    """``P^k`` of eq. (8): probability of eviction any time from round ``k`` on.

    ``P^k = 1 - (1 - p^k)^(MN - k + 1)`` -- the compounded risk over the
    remaining Stage-I horizon.  Decreases in ``k``: the later a buyer
    waits, the safer the transition (Section IV-A).
    """
    if round_index < 1:
        raise SpectrumMatchingError(f"round index must be >= 1, got {round_index}")
    single = eviction_probability_single_round(
        num_unseen_neighbors, num_channels, own_price, cdf
    )
    horizon = num_channels * num_buyers - round_index + 1
    if horizon <= 0:
        return 0.0
    return 1.0 - (1.0 - single) ** horizon


def better_proposal_probability_single_round(
    num_unseen_buyers: int,
    num_channels: int,
    lowest_price: float,
    theta: float,
    cdf: PriceCdf = uniform_price_cdf,
) -> float:
    """``q^k`` of eq. (9): chance of a strictly better proposal in one round.

    Parameters
    ----------
    num_unseen_buyers:
        ``n`` -- buyers who have not proposed to this seller yet.
    num_channels:
        ``M``.
    lowest_price:
        ``b_{i,j}`` -- the lowest offered price in the current coalition.
    theta:
        Probability that an unseen buyer does not interfere with anyone in
        the coalition except the cheapest member ``j`` (an empirical value
        the seller estimates from her interference graph).
    cdf:
        Price distribution ``F``.
    """
    _check_common(num_unseen_buyers, num_channels)
    if not 0.0 <= theta <= 1.0:
        raise SpectrumMatchingError(f"theta must lie in [0, 1], got {theta}")
    n = num_unseen_buyers
    m = num_channels
    f_value = cdf(lowest_price)
    # Probability that one proposing buyer is NOT an improvement: either
    # her price is no better (F(b)) or it is better but she interferes
    # with someone besides j ((1 - theta)(1 - F(b))).
    not_improving = f_value + (1.0 - theta) * (1.0 - f_value)
    total = 0.0
    for y in range(1, n + 1):
        binomial = comb(n, y) * (1.0 / m) ** y * ((m - 1.0) / m) ** (n - y)
        total += binomial * (1.0 - not_improving**y)
    return total


def better_proposal_probability(
    round_index: int,
    num_unseen_buyers: int,
    num_channels: int,
    num_buyers: int,
    lowest_price: float,
    theta: float,
    cdf: PriceCdf = uniform_price_cdf,
) -> float:
    """``Q^k``: compounded better-proposal probability from round ``k`` on.

    ``Q^k = 1 - (1 - q^k)^(MN - k + 1)``; decreases in ``k`` like ``P^k``.
    """
    if round_index < 1:
        raise SpectrumMatchingError(f"round index must be >= 1, got {round_index}")
    single = better_proposal_probability_single_round(
        num_unseen_buyers, num_channels, lowest_price, theta, cdf
    )
    horizon = num_channels * num_buyers - round_index + 1
    if horizon <= 0:
        return 0.0
    return 1.0 - (1.0 - single) ** horizon
