"""Message-delivery models for the time-slotted simulator.

The paper assumes a reliable synchronous network (one round per slot).
Real deployments are messier, so the kernel accepts a pluggable
:class:`Network` deciding, per message, the delivery slot -- or that the
message is lost.  The failure-injection tests use :class:`DelayedNetwork`
and :class:`LossyNetwork` to check which protocol invariants survive
(interference-freedom always; Nash stability only under reliable
delivery, mirroring the paper's assumption).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (messages only)
    from repro.distributed.messages import Message

__all__ = ["Network", "ReliableNetwork", "DelayedNetwork", "LossyNetwork"]


class Network:
    """Delivery-model interface.

    :meth:`route` is called once per message and returns the delivery slot,
    or ``None`` to drop the message.  Models that need to see *which*
    message is travelling between *whom* (partitions, targeted drops)
    override :meth:`route_message` instead -- the kernel always routes
    through it, and the default implementation delegates to :meth:`route`,
    so endpoint-oblivious models keep their two-argument interface.
    """

    def route(self, now: int, rng: np.random.Generator) -> Optional[int]:
        raise NotImplementedError

    def route_message(
        self,
        now: int,
        rng: np.random.Generator,
        sender: str,
        destination: str,
        message: "Message",
    ) -> Optional[int]:
        """Endpoint-aware routing hook; defaults to :meth:`route`."""
        return self.route(now, rng)


class ReliableNetwork(Network):
    """Same-slot delivery (the paper's synchronous model).

    Combined with the kernel's priority scheduling, a buyer's slot-``t``
    message is processed by a seller in slot ``t`` and the reply reaches
    the buyer in slot ``t+1`` -- one paper round per slot.
    """

    def route(self, now: int, rng: np.random.Generator) -> Optional[int]:
        return now


class DelayedNetwork(Network):
    """Delivery after a (possibly random) positive delay.

    Parameters
    ----------
    min_delay / max_delay:
        Delivery happens uniformly in ``[now + min_delay, now + max_delay]``
        (inclusive).  ``min_delay=0, max_delay=0`` reduces to
        :class:`ReliableNetwork`.
    """

    def __init__(self, min_delay: int = 1, max_delay: int = 1) -> None:
        if min_delay < 0 or max_delay < min_delay:
            raise SimulationError(
                f"need 0 <= min_delay <= max_delay, got [{min_delay}, {max_delay}]"
            )
        self._min = min_delay
        self._max = max_delay

    def route(self, now: int, rng: np.random.Generator) -> Optional[int]:
        if self._min == self._max:
            return now + self._min
        return now + int(rng.integers(self._min, self._max + 1))


class LossyNetwork(Network):
    """Drop each message independently with probability ``loss_rate``.

    Surviving messages are routed by the wrapped ``base`` network
    (reliable by default).  Note the matching protocol is NOT designed to
    tolerate loss -- the paper assumes reliability -- so this model exists
    to *demonstrate* which safety invariants still hold and which liveness
    properties break; see ``tests/distributed/test_failure_injection.py``.
    """

    def __init__(self, loss_rate: float, base: Optional[Network] = None) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise SimulationError(
                f"loss_rate must lie in [0, 1], got {loss_rate}"
            )
        self._loss_rate = loss_rate
        self._base = base if base is not None else ReliableNetwork()

    def route(self, now: int, rng: np.random.Generator) -> Optional[int]:
        if rng.random() < self._loss_rate:
            return None
        return self._base.route(now, rng)
