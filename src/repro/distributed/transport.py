"""Reliable in-order transport over unreliable networks.

The matching protocol's handshakes assume reliable delivery (Section IV;
see ``tests/distributed/test_failure_injection.py`` for how they deadlock
under loss).  This module supplies the classic remedy: a per-agent
transport layer providing **at-least-once delivery with deduplication and
per-sender FIFO ordering** -- i.e. the protocol-visible semantics of the
reliable network -- on top of an arbitrary lossy/delaying
:class:`~repro.distributed.network.Network`.

Mechanics (positive-acknowledgement ARQ):

* every application message is wrapped in a :class:`DataFrame` carrying a
  per-(sender, receiver) sequence number and buffered until acknowledged;
* receivers acknowledge every data frame (including duplicates, covering
  lost acks), deduplicate by sequence number, and release payloads to the
  wrapped agent strictly in sequence order (a hold-back queue reorders
  late frames);
* unacknowledged frames are retransmitted every ``retransmit_interval``
  slots.

Wrap a whole agent population with :func:`wrap_reliable` and run it on a
:class:`LossyNetwork`; the end-to-end test shows the matching protocol
then terminates with the same matching as over a perfect network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distributed.messages import Message
from repro.distributed.simulator import Agent, SlotContext
from repro.errors import SimulationError

__all__ = ["DataFrame", "AckFrame", "ReliableAgent", "wrap_reliable"]


@dataclass(frozen=True)
class DataFrame(Message):
    """Transport envelope: ``payload`` is the application message."""

    seq: int
    payload: Message


@dataclass(frozen=True)
class AckFrame(Message):
    """Acknowledgement of the data frame with sequence number ``seq``."""

    seq: int


@dataclass
class _PendingFrame:
    destination: str
    frame: DataFrame
    last_sent: int
    #: Causal msg id of the original send (None when tracing is off or the
    #: frame was restored from a pre-crash checkpoint).
    sent_id: Optional[int] = None


class ReliableAgent(Agent):
    """Decorator agent adding ARQ semantics around an inner agent.

    The wrapper keeps the inner agent's id and priority, so populations
    can be wrapped transparently.  The inner agent never sees transport
    frames -- only deduplicated, in-order application messages -- and its
    outgoing sends are transparently wrapped and buffered.

    Parameters
    ----------
    inner:
        The application agent.
    retransmit_interval:
        Slots between retransmissions of an unacknowledged frame.
    """

    def __init__(self, inner: Agent, retransmit_interval: int = 4) -> None:
        super().__init__(inner.agent_id, priority=inner.priority)
        if retransmit_interval < 1:
            raise SimulationError(
                f"retransmit_interval must be >= 1, got {retransmit_interval}"
            )
        self.inner = inner
        self._interval = retransmit_interval
        self._next_seq: Dict[str, int] = {}
        self._pending: List[_PendingFrame] = []
        #: Highest contiguously delivered sequence number per sender.
        self._delivered_up_to: Dict[str, int] = {}
        #: Out-of-order frames held back per sender: seq -> payload.
        self._holdback: Dict[str, Dict[int, Message]] = {}
        self._retransmissions = 0

    # ------------------------------------------------------------------
    # Introspection (used by tests and traffic accounting)
    # ------------------------------------------------------------------
    @property
    def retransmissions(self) -> int:
        """Total frames retransmitted so far."""
        return self._retransmissions

    @property
    def unacknowledged(self) -> int:
        """Frames currently awaiting acknowledgement."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Agent interface
    # ------------------------------------------------------------------
    def step(self, inbox: List[Message], ctx: SlotContext) -> None:
        deliverable: List[Message] = []
        for message in inbox:
            ctx.set_cause(message)
            if isinstance(message, AckFrame):
                self._pending = [
                    p
                    for p in self._pending
                    if not (
                        p.destination == message.sender
                        and p.frame.seq == message.seq
                    )
                ]
            elif isinstance(message, DataFrame):
                # Always ack, even duplicates: the previous ack may be lost.
                ctx.send(message.sender, AckFrame(self.agent_id, message.seq))
                released = self._accept(message)
                # Payloads inherit the delivering frame's causal id, so the
                # inner agent's sends chain through the transport envelope.
                ctx.alias_cause(message, released)
                deliverable.extend(released)
            else:
                raise SimulationError(
                    f"reliable agent {self.agent_id} received a bare "
                    f"application message {message!r}; wrap ALL agents"
                )

        shim = SlotContext(
            now=ctx.now,
            rng=ctx.rng,
            _send=lambda destination, payload: self._buffer_send(
                destination, payload, ctx
            ),
            _causal=ctx._causal,
        )
        self.inner.step(deliverable, shim)

        # Retransmit anything that has been in flight too long.  Each
        # retransmission is parented to the original send occurrence, so
        # duplicate deliveries show up on the same causal chain.
        for pending in self._pending:
            if ctx.now - pending.last_sent >= self._interval:
                pending.last_sent = ctx.now
                self._retransmissions += 1
                ctx.set_cause_id(pending.sent_id)
                ctx.send(pending.destination, pending.frame)

    def _accept(self, frame: DataFrame) -> List[Message]:
        """Dedup + reorder; return payloads now deliverable in order."""
        sender = frame.sender
        delivered = self._delivered_up_to.get(sender, -1)
        if frame.seq <= delivered:
            return []  # duplicate
        held = self._holdback.setdefault(sender, {})
        held[frame.seq] = frame.payload
        released: List[Message] = []
        while delivered + 1 in held:
            delivered += 1
            released.append(held.pop(delivered))
        self._delivered_up_to[sender] = delivered
        return released

    def _buffer_send(
        self, destination: str, payload: Message, ctx: SlotContext
    ) -> Optional[int]:
        seq = self._next_seq.get(destination, 0)
        self._next_seq[destination] = seq + 1
        frame = DataFrame(self.agent_id, seq, payload)
        pending = _PendingFrame(
            destination=destination, frame=frame, last_sent=ctx.now
        )
        self._pending.append(pending)
        pending.sent_id = ctx.send(destination, frame)
        return pending.sent_id

    def is_done(self) -> bool:
        return (
            self.inner.is_done()
            and not self._pending
            and not any(self._holdback.values())
        )

    # ------------------------------------------------------------------
    # Crash/restart support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint transport state *and* the inner agent's state.

        The sequence counters, unacknowledged send buffer and receive-side
        dedup/hold-back state are all part of the checkpoint: a restarted
        agent resumes retransmitting exactly the frames its peers never
        acknowledged, and keeps deduplicating frames its pre-crash self
        already delivered.  (Amnesiac restart is deliberately unsupported
        under ARQ -- sequence numbers reborn at zero are indistinguishable
        from duplicates; see :class:`~repro.distributed.faults.RestartMode`.)
        """
        return {
            "next_seq": dict(self._next_seq),
            "pending": [
                (p.destination, p.frame, p.last_sent) for p in self._pending
            ],
            "delivered_up_to": dict(self._delivered_up_to),
            "holdback": {
                sender: dict(held) for sender, held in self._holdback.items()
            },
            "retransmissions": self._retransmissions,
            "inner": self.inner.snapshot(),
        }

    def restore(self, state: dict) -> None:
        self._next_seq = dict(state["next_seq"])
        self._pending = [
            _PendingFrame(destination=destination, frame=frame, last_sent=last_sent)
            for destination, frame, last_sent in state["pending"]
        ]
        self._delivered_up_to = dict(state["delivered_up_to"])
        self._holdback = {
            sender: dict(held) for sender, held in state["holdback"].items()
        }
        self._retransmissions = state["retransmissions"]
        self.inner.restore(state["inner"])

    def causal_sent_ids(self) -> List[Optional[int]]:
        """Causal msg ids of the pending frames, in buffer order.

        Not part of :meth:`snapshot`: an *in-world* restarted agent
        legitimately forgets the causal ids of its pre-crash sends (its
        retransmissions start fresh chains).  A *process-level* resume
        (:mod:`repro.runtime`) must instead reproduce the uninterrupted
        trace exactly, so the kernel snapshot carries these separately
        and reapplies them after :meth:`restore`.
        """
        return [pending.sent_id for pending in self._pending]

    def restore_causal_sent_ids(self, ids: List[Optional[int]]) -> None:
        for pending, sent_id in zip(self._pending, ids):
            pending.sent_id = sent_id


def wrap_reliable(
    agents: List[Agent], retransmit_interval: int = 4
) -> List[ReliableAgent]:
    """Wrap an agent population for ARQ transport (all or nothing)."""
    return [ReliableAgent(agent, retransmit_interval) for agent in agents]
