"""Generic time-slotted simulation kernel.

The paper's implementation model (Section IV) is a synchronous,
slot-structured network: "assume that each round in the proposed algorithm
takes one time slot".  The kernel here makes that executable:

* Agents are stepped once per slot in deterministic ``(priority, agent_id)``
  order.  Buyer agents use a lower priority number than seller agents, so
  within a single slot buyers act first and sellers react to the same
  slot's proposals -- exactly the paper's one-round-per-slot accounting.
* Messages travel through a pluggable :class:`~repro.distributed.network.
  Network` which assigns each message a delivery slot (and may drop it).
  A message delivered "at slot t" is visible to its recipient when the
  recipient is stepped in slot t; messages that arrive after the recipient
  was already stepped this slot are seen next slot.
* The simulation terminates when every agent reports ``is_done()`` and no
  message is in flight, or when ``max_slots`` is hit (which raises --
  a protocol that fails to quiesce is a bug, not a result).

The kernel knows nothing about spectrum matching; it is reused by the
tests for unrelated toy protocols, which is the usual sign the abstraction
is cut in the right place.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.distributed.messages import Message
from repro.distributed.network import Network, ReliableNetwork
from repro.errors import SimulationError
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = ["Agent", "SlotContext", "TimeSlottedSimulator"]


class Agent:
    """Base class for simulation agents.

    Subclasses implement :meth:`step` (called once per slot with the
    drained inbox) and :meth:`is_done` (quiescence flag used for
    termination detection).

    Attributes
    ----------
    agent_id:
        Unique wire identifier (e.g. ``"buyer:3"``).
    priority:
        Scheduling key; lower numbers step earlier within a slot.
    """

    def __init__(self, agent_id: str, priority: int = 0) -> None:
        self.agent_id = agent_id
        self.priority = priority

    def step(self, inbox: List[Message], ctx: "SlotContext") -> None:
        """Handle this slot: consume ``inbox``, optionally send messages."""
        raise NotImplementedError

    def is_done(self) -> bool:
        """Return ``True`` when the agent has nothing left to do."""
        raise NotImplementedError


@dataclass
class SlotContext:
    """Per-step facade handed to agents.

    Provides the current slot number, a ``send`` function, and a seeded RNG
    shared by the whole simulation (deterministic runs).
    """

    now: int
    rng: np.random.Generator
    _send: Callable[[str, Message], None]

    def send(self, destination: str, message: Message) -> None:
        """Send ``message`` to the agent with id ``destination``."""
        self._send(destination, message)


@dataclass(frozen=True)
class MessageEvent:
    """One sent message, as recorded by the kernel's optional tracer.

    Attributes
    ----------
    slot:
        Slot in which the message was sent.
    sender / destination:
        Wire ids of the endpoints.
    message_type:
        Class name of the message (payload bodies are not retained --
        traces of long runs stay small).
    dropped:
        ``True`` when the network dropped the message.
    """

    slot: int
    sender: str
    destination: str
    message_type: str
    dropped: bool


@dataclass(frozen=True)
class _QueuedMessage:
    delivery_slot: int
    sequence: int
    destination: str
    message: Message

    def __lt__(self, other: "_QueuedMessage") -> bool:
        return (self.delivery_slot, self.sequence) < (
            other.delivery_slot,
            other.sequence,
        )


class TimeSlottedSimulator:
    """Deterministic synchronous-round simulator.

    Parameters
    ----------
    agents:
        The agent population; ids must be unique.
    network:
        Message-delivery model; defaults to :class:`ReliableNetwork`
        (delivery in the sending slot, so a lower-priority recipient sees
        the message within the same slot).
    seed:
        Seed for the shared RNG handed to agents and the network.
    record_events:
        Keep a per-message :class:`MessageEvent` trace in memory.
    recorder:
        Observability backend (``None`` resolves to the ambient recorder).
        When live, each slot reports message deltas, in-flight depth and
        agent-step latency, and ``run`` executes under a
        ``simulator.run`` span and ends with a ``sim.done`` event.
    """

    def __init__(
        self,
        agents: Iterable[Agent],
        network: Optional[Network] = None,
        seed: int = 0,
        record_events: bool = False,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self._agents: Dict[str, Agent] = {}
        for agent in agents:
            if agent.agent_id in self._agents:
                raise SimulationError(f"duplicate agent id {agent.agent_id!r}")
            self._agents[agent.agent_id] = agent
        if not self._agents:
            raise SimulationError("a simulation needs at least one agent")
        self._order = sorted(
            self._agents.values(), key=lambda a: (a.priority, a.agent_id)
        )
        self._network = network if network is not None else ReliableNetwork()
        self._rng = np.random.default_rng(seed)
        self._queue: List[_QueuedMessage] = []
        self._sequence = 0
        self._now = 0
        self._stepped_this_slot: set = set()
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._finished = False
        self._record_events = record_events
        self._events: List[MessageEvent] = []
        # Observability: resolved once here, then consulted as a plain
        # bool per slot -- a disabled recorder costs the kernel nothing.
        self._obs = resolve_recorder(recorder)
        self._observing = self._obs.enabled

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current slot index (0 before the first slot runs)."""
        return self._now

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        return self._messages_dropped

    @property
    def events(self) -> Tuple[MessageEvent, ...]:
        """Recorded message events (empty unless ``record_events=True``)."""
        return tuple(self._events)

    def agent(self, agent_id: str) -> Agent:
        """Look up an agent by id (raises for unknown ids)."""
        try:
            return self._agents[agent_id]
        except KeyError:
            raise SimulationError(f"unknown agent {agent_id!r}") from None

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _enqueue(self, destination: str, message: Message) -> None:
        if destination not in self._agents:
            raise SimulationError(
                f"message to unknown agent {destination!r}: {message!r}"
            )
        self._messages_sent += 1
        verdict = self._network.route(self._now, self._rng)
        if self._record_events:
            self._events.append(
                MessageEvent(
                    slot=self._now,
                    sender=message.sender,
                    destination=destination,
                    message_type=type(message).__name__,
                    dropped=verdict is None,
                )
            )
        if verdict is None:
            self._messages_dropped += 1
            return
        delivery_slot = verdict
        if delivery_slot < self._now:
            raise SimulationError(
                f"network produced delivery slot {delivery_slot} in the past "
                f"(now={self._now})"
            )
        # A message "delivered" in the current slot to an agent that has
        # already been stepped is effectively a next-slot delivery.
        if delivery_slot == self._now and destination in self._stepped_this_slot:
            delivery_slot += 1
        heapq.heappush(
            self._queue,
            _QueuedMessage(delivery_slot, self._sequence, destination, message),
        )
        self._sequence += 1

    def _drain_inbox(self, agent_id: str) -> List[Message]:
        inbox: List[Message] = []
        remainder: List[_QueuedMessage] = []
        while self._queue and self._queue[0].delivery_slot <= self._now:
            item = heapq.heappop(self._queue)
            if item.destination == agent_id:
                inbox.append(item.message)
                self._messages_delivered += 1
            else:
                remainder.append(item)
        for item in remainder:
            heapq.heappush(self._queue, item)
        return inbox

    def run_slot(self) -> None:
        """Execute one time slot (all agents, in scheduling order)."""
        if self._finished:
            raise SimulationError("simulation already finished")
        self._stepped_this_slot = set()
        ctx = SlotContext(now=self._now, rng=self._rng, _send=self._enqueue)
        if self._observing:
            self._run_slot_observed(ctx)
        else:
            for agent in self._order:
                inbox = self._drain_inbox(agent.agent_id)
                agent.step(inbox, ctx)
                self._stepped_this_slot.add(agent.agent_id)
        self._now += 1

    def _run_slot_observed(self, ctx: SlotContext) -> None:
        """The observed twin of :meth:`run_slot`'s agent loop.

        Identical stepping semantics, plus: per-agent step latency into a
        histogram, per-slot message deltas and in-flight queue depth into
        the metrics registry, and one ``sim.slot`` event per slot.
        """
        rec = self._obs
        metrics = rec.metrics
        step_hist = metrics.histogram("sim.agent_step_s")
        sent0 = self._messages_sent
        delivered0 = self._messages_delivered
        dropped0 = self._messages_dropped
        for agent in self._order:
            inbox = self._drain_inbox(agent.agent_id)
            started = time.perf_counter()
            agent.step(inbox, ctx)
            step_hist.observe(time.perf_counter() - started)
            self._stepped_this_slot.add(agent.agent_id)
        inflight = len(self._queue)
        sent = self._messages_sent - sent0
        delivered = self._messages_delivered - delivered0
        dropped = self._messages_dropped - dropped0
        metrics.counter("sim.slots").inc()
        metrics.counter("sim.messages_sent").inc(sent)
        metrics.counter("sim.messages_delivered").inc(delivered)
        metrics.counter("sim.messages_dropped").inc(dropped)
        metrics.gauge("sim.inflight_depth").set(inflight)
        metrics.histogram("sim.slot_messages").observe(sent)
        if rec.events.enabled:
            rec.events.emit(
                {
                    "event": "sim.slot",
                    "slot": self._now,
                    "sent": sent,
                    "delivered": delivered,
                    "dropped": dropped,
                    "inflight": inflight,
                }
            )

    def is_quiescent(self) -> bool:
        """All agents done and no messages in flight."""
        return not self._queue and all(a.is_done() for a in self._order)

    def run(self, max_slots: int = 100_000) -> int:
        """Run until quiescence; returns the number of slots executed.

        Raises
        ------
        SimulationError
            If the protocol fails to quiesce within ``max_slots`` slots.
        """
        with self._obs.span("simulator.run"):
            while not self.is_quiescent():
                if self._now >= max_slots:
                    busy = [a.agent_id for a in self._order if not a.is_done()]
                    raise SimulationError(
                        f"no quiescence after {max_slots} slots; "
                        f"{len(self._queue)} messages in flight, busy agents: "
                        f"{busy[:10]}"
                    )
                self.run_slot()
        self._finished = True
        if self._observing:
            self._obs.emit(
                "sim.done",
                slots=self._now,
                messages_sent=self._messages_sent,
                messages_delivered=self._messages_delivered,
                messages_dropped=self._messages_dropped,
            )
        return self._now
