"""Generic time-slotted simulation kernel.

The paper's implementation model (Section IV) is a synchronous,
slot-structured network: "assume that each round in the proposed algorithm
takes one time slot".  The kernel here makes that executable:

* Agents are stepped once per slot in deterministic ``(priority, agent_id)``
  order.  Buyer agents use a lower priority number than seller agents, so
  within a single slot buyers act first and sellers react to the same
  slot's proposals -- exactly the paper's one-round-per-slot accounting.
* Messages travel through a pluggable :class:`~repro.distributed.network.
  Network` which assigns each message a delivery slot (and may drop it).
  A message delivered "at slot t" is visible to its recipient when the
  recipient is stepped in slot t; messages that arrive after the recipient
  was already stepped this slot are seen next slot.
* The simulation terminates when every agent reports ``is_done()`` and no
  message is in flight, or when ``max_slots`` is hit (which raises --
  a protocol that fails to quiesce is a bug, not a result -- unless the
  caller opted into ``on_timeout="stop"`` graceful degradation).
* Node faults are injected declaratively: a
  :class:`~repro.distributed.faults.FaultSchedule` crashes agents (not
  stepped; queued/incoming messages lost and counted as
  ``messages_lost_to_crash``) and restarts them later from a checkpoint
  (``Agent.snapshot()`` / ``restore()``) or amnesiac.  Partitions and
  type-targeted faults in the schedule are enforced by auto-wrapping the
  network in a :class:`~repro.distributed.faults.PartitionedNetwork`.

The kernel knows nothing about spectrum matching; it is reused by the
tests for unrelated toy protocols, which is the usual sign the abstraction
is cut in the right place.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.distributed.faults import FaultSchedule, PartitionedNetwork, RestartMode
from repro.distributed.messages import Message
from repro.distributed.network import Network, ReliableNetwork
from repro.errors import SimulationError
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = ["Agent", "SlotContext", "TimeSlottedSimulator"]


class Agent:
    """Base class for simulation agents.

    Subclasses implement :meth:`step` (called once per slot with the
    drained inbox) and :meth:`is_done` (quiescence flag used for
    termination detection).  Agents that should survive crash/restart
    faults additionally implement :meth:`snapshot` / :meth:`restore`.

    Attributes
    ----------
    agent_id:
        Unique wire identifier (e.g. ``"buyer:3"``).
    priority:
        Scheduling key; lower numbers step earlier within a slot.
    """

    def __init__(self, agent_id: str, priority: int = 0) -> None:
        self.agent_id = agent_id
        self.priority = priority

    def step(self, inbox: List[Message], ctx: "SlotContext") -> None:
        """Handle this slot: consume ``inbox``, optionally send messages."""
        raise NotImplementedError

    def is_done(self) -> bool:
        """Return ``True`` when the agent has nothing left to do."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Return an opaque checkpoint of all mutable local state.

        The kernel calls this when a :class:`CrashFault` with a scheduled
        restart fires (checkpoint mode: at crash time; amnesia mode: once
        at simulation start).  The default refuses, so only agents that
        explicitly opt into durability can be crash/restart targets.
        """
        raise SimulationError(
            f"agent {self.agent_id!r} does not implement snapshot(); "
            f"it cannot be restarted after a crash"
        )

    def restore(self, state: Any) -> None:
        """Reset local state from a :meth:`snapshot` checkpoint."""
        raise SimulationError(
            f"agent {self.agent_id!r} does not implement restore(); "
            f"it cannot be restarted after a crash"
        )


class _CausalTracker:
    """Causal bookkeeping behind the kernel's ``msg.*`` event stream.

    Active only when the simulator's recorder has a live event sink; the
    null path never allocates one.  Every *send occurrence* (not message
    object -- a shared immutable message sent to N recipients is N
    occurrences) gets a fresh ``msg_id``.  ``parent`` is the id of the
    delivered message the sending agent was reacting to (``None`` for
    spontaneous sends), and ``trace`` is the root id of the causal chain,
    propagated parent-to-child so a whole propose -> accept -> transfer
    chain shares one trace id.
    """

    __slots__ = (
        "next_id",
        "current_parent",
        "trace_of",
        "delivered_ids",
        "inbox_ids",
    )

    def __init__(self) -> None:
        self.next_id = 0
        #: Parent id applied to the next send (set via the ctx cause API).
        self.current_parent: Optional[int] = None
        #: msg_id -> root id of its causal chain.
        self.trace_of: Dict[int, int] = {}
        #: id(message object) -> msg_id, for the agent step in progress.
        self.delivered_ids: Dict[int, int] = {}
        #: Per-destination ids mirroring the kernel's slot inboxes.
        self.inbox_ids: Dict[str, List[int]] = {}

    def assign(self) -> Tuple[int, Optional[int], int]:
        """Allocate ``(msg_id, parent_id, trace_id)`` for one send."""
        msg_id = self.next_id
        self.next_id += 1
        parent = self.current_parent
        trace = self.trace_of.get(parent, msg_id) if parent is not None else msg_id
        self.trace_of[msg_id] = trace
        return msg_id, parent, trace


@dataclass
class SlotContext:
    """Per-step facade handed to agents.

    Provides the current slot number, a ``send`` function, and a seeded RNG
    shared by the whole simulation (deterministic runs).  When the kernel
    traces message causality it also carries the (kernel-owned) causal
    tracker; the cause methods are no-ops otherwise, so agents may call
    them unconditionally.
    """

    now: int
    rng: np.random.Generator
    _send: Callable[[str, Message], Optional[int]]
    _causal: Optional[_CausalTracker] = None

    def send(self, destination: str, message: Message) -> Optional[int]:
        """Send ``message`` to ``destination``; returns its causal msg id
        when the kernel is tracing message causality (``None`` otherwise)."""
        return self._send(destination, message)

    def set_cause(self, message: Optional[Message]) -> None:
        """Declare the delivered ``message`` as the cause of upcoming sends.

        Agents call this as they pick each inbox message up; sends issued
        while it is in force are stamped with that message's id as their
        ``parent``.  ``None`` clears the cause (spontaneous sends).
        """
        tracker = self._causal
        if tracker is not None:
            if message is None:
                tracker.current_parent = None
            else:
                tracker.current_parent = tracker.delivered_ids.get(id(message))

    def set_cause_id(self, msg_id: Optional[int]) -> None:
        """Declare a known msg id as the cause (e.g. ARQ retransmissions)."""
        tracker = self._causal
        if tracker is not None:
            tracker.current_parent = msg_id

    def alias_cause(
        self, carrier: Message, payloads: Iterable[Message]
    ) -> None:
        """Attribute unwrapped ``payloads`` to the ``carrier`` envelope.

        Transport wrappers use this so an application message released
        from a :class:`~repro.distributed.transport.DataFrame` (or a
        hold-back queue) inherits the frame's delivered id.
        """
        tracker = self._causal
        if tracker is not None:
            carrier_id = tracker.delivered_ids.get(id(carrier))
            if carrier_id is not None:
                for payload in payloads:
                    tracker.delivered_ids[id(payload)] = carrier_id


@dataclass(frozen=True)
class MessageEvent:
    """One sent message, as recorded by the kernel's optional tracer.

    Attributes
    ----------
    slot:
        Slot in which the message was sent.
    sender / destination:
        Wire ids of the endpoints.
    message_type:
        Class name of the message (payload bodies are not retained --
        traces of long runs stay small).
    dropped:
        ``True`` when the network dropped the message.
    """

    slot: int
    sender: str
    destination: str
    message_type: str
    dropped: bool


@dataclass(frozen=True)
class _QueuedMessage:
    delivery_slot: int
    sequence: int
    destination: str
    message: Message
    #: Causal msg id of this send occurrence (-1 when not tracing).
    msg_id: int = -1

    def __lt__(self, other: "_QueuedMessage") -> bool:
        return (self.delivery_slot, self.sequence) < (
            other.delivery_slot,
            other.sequence,
        )


class TimeSlottedSimulator:
    """Deterministic synchronous-round simulator.

    Parameters
    ----------
    agents:
        The agent population; ids must be unique.
    network:
        Message-delivery model; defaults to :class:`ReliableNetwork`
        (delivery in the sending slot, so a lower-priority recipient sees
        the message within the same slot).
    seed:
        Seed for the shared RNG handed to agents and the network.
    record_events:
        Keep a per-message :class:`MessageEvent` trace in memory.
    recorder:
        Observability backend (``None`` resolves to the ambient recorder).
        When live, each slot reports message deltas, in-flight depth and
        agent-step latency, and ``run`` executes under a
        ``simulator.run`` span and ends with a ``sim.done`` event.  When
        the recorder's *event sink* is live the kernel additionally
        traces message causality: every send occurrence is stamped with
        an ``id``/``parent``/``trace`` triple and emitted as ``msg.sent``,
        matched later by ``msg.delivered`` or ``msg.dropped`` (reason
        ``network``, ``crashed_destination`` or ``crash_purge``), which is
        what :mod:`repro.trace` reconstructs causal chains from.
    fault_schedule:
        Declarative node/link faults to execute
        (:class:`~repro.distributed.faults.FaultSchedule`).  Crashes and
        restarts are handled by the kernel; if the schedule carries
        partitions or message faults, ``network`` is automatically wrapped
        in a :class:`~repro.distributed.faults.PartitionedNetwork`
        enforcing them.  ``None`` (or an empty schedule) leaves every code
        path identical to the fault-free kernel.
    """

    def __init__(
        self,
        agents: Iterable[Agent],
        network: Optional[Network] = None,
        seed: int = 0,
        record_events: bool = False,
        recorder: Optional[Recorder] = None,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        self._agents: Dict[str, Agent] = {}
        for agent in agents:
            if agent.agent_id in self._agents:
                raise SimulationError(f"duplicate agent id {agent.agent_id!r}")
            self._agents[agent.agent_id] = agent
        if not self._agents:
            raise SimulationError("a simulation needs at least one agent")
        self._order = sorted(
            self._agents.values(), key=lambda a: (a.priority, a.agent_id)
        )
        if fault_schedule is not None and fault_schedule.empty:
            fault_schedule = None
        self._schedule = fault_schedule
        if fault_schedule is not None:
            for crash in fault_schedule.crashes:
                if crash.agent_id not in self._agents:
                    raise SimulationError(
                        f"fault schedule crashes unknown agent "
                        f"{crash.agent_id!r}"
                    )
            if fault_schedule.has_network_faults and not isinstance(
                network, PartitionedNetwork
            ):
                network = PartitionedNetwork(fault_schedule, base=network)
        self._network = network if network is not None else ReliableNetwork()
        self._rng = np.random.default_rng(seed)
        self._queue: List[_QueuedMessage] = []
        self._sequence = 0
        self._now = 0
        self._stepped_this_slot: set = set()
        #: Due messages bucketed per destination for the current slot.
        self._slot_inboxes: Dict[str, List[Message]] = {}
        self._messages_sent = 0
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._finished = False
        self._timed_out = False
        self._record_events = record_events
        self._events: List[MessageEvent] = []
        # Fault-execution state (all dormant without a schedule).
        self._crashed: set = set()
        self._checkpoints: Dict[str, Any] = {}
        self._crash_slot: Dict[str, int] = {}
        self._crash_count = 0
        self._restart_count = 0
        self._messages_lost_to_crash = 0
        self._recovery_slots: List[int] = []
        if fault_schedule is not None:
            # Amnesiac restarts restore the state at simulation start.
            self._pristine: Dict[str, Any] = {
                agent_id: self._agents[agent_id].snapshot()
                for agent_id in fault_schedule.amnesiac_agents()
            }
        else:
            self._pristine = {}
        # Observability: resolved once here, then consulted as a plain
        # bool per slot -- a disabled recorder costs the kernel nothing.
        self._obs = resolve_recorder(recorder)
        self._observing = self._obs.enabled
        # Causal message tracing rides on the event sink: without one the
        # tracker stays None and every causal hook is a no-op.
        self._causal: Optional[_CausalTracker] = (
            _CausalTracker() if self._obs.events.enabled else None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current slot index (0 before the first slot runs)."""
        return self._now

    @property
    def network(self) -> Network:
        """The effective delivery model (after any fault-schedule wrapping)."""
        return self._network

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        return self._messages_dropped

    @property
    def messages_lost_to_crash(self) -> int:
        """Messages lost because their destination was crashed."""
        return self._messages_lost_to_crash

    @property
    def crashes(self) -> int:
        """Crash faults executed so far."""
        return self._crash_count

    @property
    def restarts(self) -> int:
        """Restart faults executed so far."""
        return self._restart_count

    @property
    def crashed_agents(self) -> Tuple[str, ...]:
        """Ids of agents currently down, sorted."""
        return tuple(sorted(self._crashed))

    @property
    def recovery_slots(self) -> Tuple[int, ...]:
        """Downtime (slots) of each executed restart, in restart order."""
        return tuple(self._recovery_slots)

    @property
    def timed_out(self) -> bool:
        """Whether :meth:`run` stopped at the slot bound without quiescing."""
        return self._timed_out

    @property
    def events(self) -> Tuple[MessageEvent, ...]:
        """Recorded message events (empty unless ``record_events=True``)."""
        return tuple(self._events)

    def agent(self, agent_id: str) -> Agent:
        """Look up an agent by id (raises for unknown ids)."""
        try:
            return self._agents[agent_id]
        except KeyError:
            raise SimulationError(f"unknown agent {agent_id!r}") from None

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _emit_msg_dropped(self, msg_id: int, reason: str) -> None:
        """One ``msg.dropped`` causal event (tracing is known to be on)."""
        self._obs.events.emit(
            {
                "event": "msg.dropped",
                "id": msg_id,
                "slot": self._now,
                "reason": reason,
            }
        )

    def _enqueue(self, destination: str, message: Message) -> Optional[int]:
        if destination not in self._agents:
            raise SimulationError(
                f"message to unknown agent {destination!r}: {message!r}"
            )
        self._messages_sent += 1
        tracker = self._causal
        msg_id = -1
        if tracker is not None:
            msg_id, parent, trace = tracker.assign()
            self._obs.events.emit(
                {
                    "event": "msg.sent",
                    "id": msg_id,
                    "trace": trace,
                    "parent": parent,
                    "slot": self._now,
                    "src": message.sender,
                    "dst": destination,
                    "type": type(message).__name__,
                }
            )
        if destination in self._crashed:
            # A dead host: the packet is lost on the wire, accounted
            # separately from network drops.
            self._messages_lost_to_crash += 1
            if tracker is not None:
                self._emit_msg_dropped(msg_id, "crashed_destination")
            if self._record_events:
                self._events.append(
                    MessageEvent(
                        slot=self._now,
                        sender=message.sender,
                        destination=destination,
                        message_type=type(message).__name__,
                        dropped=True,
                    )
                )
            return msg_id if tracker is not None else None
        verdict = self._network.route_message(
            self._now, self._rng, message.sender, destination, message
        )
        if self._record_events:
            self._events.append(
                MessageEvent(
                    slot=self._now,
                    sender=message.sender,
                    destination=destination,
                    message_type=type(message).__name__,
                    dropped=verdict is None,
                )
            )
        if verdict is None:
            self._messages_dropped += 1
            if tracker is not None:
                self._emit_msg_dropped(msg_id, "network")
            return msg_id if tracker is not None else None
        delivery_slot = verdict
        if delivery_slot < self._now:
            raise SimulationError(
                f"network produced delivery slot {delivery_slot} in the past "
                f"(now={self._now})"
            )
        # A message "delivered" in the current slot to an agent that has
        # already been stepped is effectively a next-slot delivery.
        if delivery_slot == self._now and destination in self._stepped_this_slot:
            delivery_slot += 1
        if delivery_slot == self._now:
            # Same-slot delivery to a not-yet-stepped agent: straight into
            # its per-slot bucket (sequence order == append order).
            self._slot_inboxes.setdefault(destination, []).append(message)
            if tracker is not None:
                tracker.inbox_ids.setdefault(destination, []).append(msg_id)
            return msg_id if tracker is not None else None
        heapq.heappush(
            self._queue,
            _QueuedMessage(
                delivery_slot, self._sequence, destination, message, msg_id
            ),
        )
        self._sequence += 1
        return msg_id if tracker is not None else None

    def _bucket_due_messages(self) -> None:
        """Move every due message into its destination's slot bucket.

        One heap scan per slot instead of one per (agent, slot): the old
        per-agent drain re-popped and re-pushed the whole due prefix for
        every agent, costing O(agents x queue log queue) per slot.  Heap
        order is (delivery_slot, send sequence), so per-destination append
        order is exactly the old drain order.
        """
        tracker = self._causal
        while self._queue and self._queue[0].delivery_slot <= self._now:
            item = heapq.heappop(self._queue)
            if item.destination in self._crashed:
                self._messages_lost_to_crash += 1
                if tracker is not None:
                    self._emit_msg_dropped(item.msg_id, "crashed_destination")
                continue
            self._slot_inboxes.setdefault(item.destination, []).append(
                item.message
            )
            if tracker is not None:
                tracker.inbox_ids.setdefault(item.destination, []).append(
                    item.msg_id
                )

    def _drain_inbox(self, agent_id: str) -> List[Message]:
        inbox = self._slot_inboxes.pop(agent_id, [])
        self._messages_delivered += len(inbox)
        tracker = self._causal
        if tracker is not None:
            ids = tracker.inbox_ids.pop(agent_id, [])
            tracker.delivered_ids = {
                id(message): msg_id for message, msg_id in zip(inbox, ids)
            }
            tracker.current_parent = None
            emit = self._obs.events.emit
            for msg_id in ids:
                emit(
                    {
                        "event": "msg.delivered",
                        "id": msg_id,
                        "slot": self._now,
                        "dst": agent_id,
                    }
                )
        return inbox

    # ------------------------------------------------------------------
    # Fault execution
    # ------------------------------------------------------------------
    def _purge_messages_to(self, agent_id: str) -> None:
        """Drop every queued/bucketed message addressed to ``agent_id``."""
        tracker = self._causal
        survivors = [q for q in self._queue if q.destination != agent_id]
        lost = len(self._queue) - len(survivors)
        if lost:
            if tracker is not None:
                for item in self._queue:
                    if item.destination == agent_id:
                        self._emit_msg_dropped(item.msg_id, "crash_purge")
            self._queue = survivors
            heapq.heapify(self._queue)
        lost += len(self._slot_inboxes.pop(agent_id, []))
        if tracker is not None:
            for msg_id in tracker.inbox_ids.pop(agent_id, []):
                self._emit_msg_dropped(msg_id, "crash_purge")
        self._messages_lost_to_crash += lost

    def _apply_faults(self) -> None:
        """Execute the schedule's node events due at the current slot."""
        schedule = self._schedule
        assert schedule is not None
        observing = self._observing
        for fault in schedule.crashes_at(self._now):
            agent_id = fault.agent_id
            if agent_id in self._crashed:  # pragma: no cover - validated
                raise SimulationError(f"agent {agent_id!r} is already down")
            if fault.restart_slot is not None and (
                fault.mode is RestartMode.CHECKPOINT
            ):
                self._checkpoints[agent_id] = self._agents[agent_id].snapshot()
            self._crashed.add(agent_id)
            self._crash_slot[agent_id] = self._now
            self._crash_count += 1
            self._purge_messages_to(agent_id)
            if observing:
                self._obs.metrics.counter("sim.crashes").inc()
                self._obs.emit(
                    "sim.crash",
                    slot=self._now,
                    agent=agent_id,
                    restart_slot=fault.restart_slot,
                    mode=fault.mode.value,
                )
        for fault in schedule.restarts_at(self._now):
            agent_id = fault.agent_id
            self._crashed.discard(agent_id)
            if fault.mode is RestartMode.CHECKPOINT:
                state = self._checkpoints.pop(agent_id)
            else:
                state = self._pristine[agent_id]
            self._agents[agent_id].restore(state)
            down = self._now - self._crash_slot[agent_id]
            self._recovery_slots.append(down)
            self._restart_count += 1
            if observing:
                self._obs.metrics.counter("sim.restarts").inc()
                self._obs.metrics.histogram("sim.recovery_slots").observe(down)
                self._obs.emit(
                    "sim.restart",
                    slot=self._now,
                    agent=agent_id,
                    mode=fault.mode.value,
                    down_slots=down,
                )
        if observing:
            for partition in schedule.partitions_starting_at(self._now):
                self._obs.metrics.counter("sim.partitions").inc()
                self._obs.emit(
                    "sim.partition",
                    slot=self._now,
                    groups=[sorted(group) for group in partition.groups],
                    end_slot=partition.end_slot,
                )
            for partition in schedule.partitions_ending_at(self._now):
                self._obs.emit(
                    "sim.partition_healed",
                    slot=self._now,
                    groups=[sorted(group) for group in partition.groups],
                )

    def run_slot(self) -> None:
        """Execute one time slot (all agents, in scheduling order)."""
        if self._finished:
            raise SimulationError("simulation already finished")
        self._stepped_this_slot = set()
        if self._schedule is not None:
            self._apply_faults()
        self._bucket_due_messages()
        ctx = SlotContext(
            now=self._now,
            rng=self._rng,
            _send=self._enqueue,
            _causal=self._causal,
        )
        if self._observing:
            self._run_slot_observed(ctx)
        else:
            crashed = self._crashed
            for agent in self._order:
                if agent.agent_id in crashed:
                    continue
                self._stepped_this_slot.add(agent.agent_id)
                agent.step(self._drain_inbox(agent.agent_id), ctx)
        self._now += 1

    def _run_slot_observed(self, ctx: SlotContext) -> None:
        """The observed twin of :meth:`run_slot`'s agent loop.

        Identical stepping semantics, plus: per-agent step latency into a
        histogram, per-slot message deltas and in-flight queue depth into
        the metrics registry, and one ``sim.slot`` event per slot.
        """
        rec = self._obs
        metrics = rec.metrics
        step_hist = metrics.histogram("sim.agent_step_s")
        sent0 = self._messages_sent
        delivered0 = self._messages_delivered
        dropped0 = self._messages_dropped
        crashed = self._crashed
        for agent in self._order:
            if agent.agent_id in crashed:
                continue
            self._stepped_this_slot.add(agent.agent_id)
            inbox = self._drain_inbox(agent.agent_id)
            started = time.perf_counter()
            agent.step(inbox, ctx)
            step_hist.observe(time.perf_counter() - started)
        inflight = len(self._queue)
        sent = self._messages_sent - sent0
        delivered = self._messages_delivered - delivered0
        dropped = self._messages_dropped - dropped0
        metrics.counter("sim.slots").inc()
        metrics.counter("sim.messages_sent").inc(sent)
        metrics.counter("sim.messages_delivered").inc(delivered)
        metrics.counter("sim.messages_dropped").inc(dropped)
        metrics.gauge("sim.inflight_depth").set(inflight)
        metrics.histogram("sim.slot_messages").observe(sent)
        if rec.events.enabled or rec.runs.enabled:
            rec.forward(
                {
                    "event": "sim.slot",
                    "slot": self._now,
                    "sent": sent,
                    "delivered": delivered,
                    "dropped": dropped,
                    "inflight": inflight,
                }
            )

    def is_quiescent(self) -> bool:
        """All agents done and no messages in flight.

        Under a fault schedule, three extra conditions: pending node
        events (a crash or restart yet to fire) keep the simulation
        running; an agent that is down but will restart blocks quiescence
        (it may act again); an agent that is down forever does not -- it
        is gone, and the market settles without it.
        """
        if self._queue or any(self._slot_inboxes.values()):
            return False
        if self._schedule is not None:
            if self._now <= self._schedule.last_node_event_slot:
                return False
            # Past the last event every remaining crashed agent is
            # permanently gone; the population quiesces without them.
            return all(
                a.is_done()
                for a in self._order
                if a.agent_id not in self._crashed
            )
        return all(a.is_done() for a in self._order)

    # ------------------------------------------------------------------
    # Process-level durability (crash-consistent resume)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Capture the whole simulation at a slot boundary.

        Unlike the per-agent :meth:`Agent.snapshot` hooks (which model
        *node* crashes inside the simulated world), this captures the
        entire kernel -- agents, in-flight messages, RNG stream, fault
        bookkeeping, causal-tracing cursors -- so that the *process*
        hosting the simulation can be SIGKILLed and a fresh process can
        continue the run deterministically (:mod:`repro.runtime`).

        Must be called between slots (never from inside an agent step).
        The returned dict holds arbitrary picklable Python objects, not
        JSON; the checkpoint layer serialises it opaquely.  Every agent
        must implement ``snapshot()``/``restore()``.
        """
        state: Dict[str, Any] = {
            "now": self._now,
            "sequence": self._sequence,
            "rng_state": self._rng.bit_generator.state,
            "agents": {
                agent_id: agent.snapshot()
                for agent_id, agent in sorted(self._agents.items())
            },
            "queue": list(self._queue),
            "slot_inboxes": {
                dst: list(msgs) for dst, msgs in self._slot_inboxes.items()
            },
            "messages_sent": self._messages_sent,
            "messages_delivered": self._messages_delivered,
            "messages_dropped": self._messages_dropped,
            "finished": self._finished,
            "timed_out": self._timed_out,
            "events": list(self._events),
            "crashed": sorted(self._crashed),
            "checkpoints": dict(self._checkpoints),
            "crash_slot": dict(self._crash_slot),
            "crash_count": self._crash_count,
            "restart_count": self._restart_count,
            "messages_lost_to_crash": self._messages_lost_to_crash,
            "recovery_slots": list(self._recovery_slots),
            "pristine": dict(self._pristine),
        }
        if isinstance(self._network, PartitionedNetwork):
            state["network_drops"] = self._network.drops_snapshot()
        # ARQ wrappers drop pending frames' causal ids from their in-world
        # snapshots on purpose; a process-level resume must keep them so
        # post-resume retransmissions stay on their original causal chains.
        transport_ids = {
            agent_id: agent.causal_sent_ids()
            for agent_id, agent in sorted(self._agents.items())
            if hasattr(agent, "causal_sent_ids")
        }
        if transport_ids:
            state["transport_sent_ids"] = transport_ids
        tracker = self._causal
        if tracker is not None:
            state["causal"] = {
                "next_id": tracker.next_id,
                "trace_of": dict(tracker.trace_of),
                "inbox_ids": {
                    dst: list(ids) for dst, ids in tracker.inbox_ids.items()
                },
            }
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Reset the kernel from a :meth:`snapshot_state` checkpoint.

        The simulator must have been constructed with the same agent
        population, network model, fault schedule and observability wiring
        as the one that took the snapshot (the durable runtime rebuilds it
        from the run manifest before calling this).
        """
        unknown = set(state["agents"]) - set(self._agents)
        if unknown:
            raise SimulationError(
                f"checkpoint names unknown agents: {sorted(unknown)[:5]}"
            )
        for agent_id, agent_state in state["agents"].items():
            self._agents[agent_id].restore(agent_state)
        self._now = int(state["now"])
        self._sequence = int(state["sequence"])
        self._rng.bit_generator.state = state["rng_state"]
        self._queue = list(state["queue"])
        heapq.heapify(self._queue)
        self._slot_inboxes = {
            dst: list(msgs) for dst, msgs in state["slot_inboxes"].items()
        }
        self._stepped_this_slot = set()
        self._messages_sent = int(state["messages_sent"])
        self._messages_delivered = int(state["messages_delivered"])
        self._messages_dropped = int(state["messages_dropped"])
        self._finished = bool(state["finished"])
        self._timed_out = bool(state["timed_out"])
        self._events = list(state["events"])
        self._crashed = set(state["crashed"])
        self._checkpoints = dict(state["checkpoints"])
        self._crash_slot = dict(state["crash_slot"])
        self._crash_count = int(state["crash_count"])
        self._restart_count = int(state["restart_count"])
        self._messages_lost_to_crash = int(state["messages_lost_to_crash"])
        self._recovery_slots = list(state["recovery_slots"])
        self._pristine = dict(state["pristine"])
        if isinstance(self._network, PartitionedNetwork) and (
            "network_drops" in state
        ):
            self._network.restore_drops(state["network_drops"])
        for agent_id, ids in state.get("transport_sent_ids", {}).items():
            agent = self._agents.get(agent_id)
            if agent is not None and hasattr(agent, "restore_causal_sent_ids"):
                agent.restore_causal_sent_ids(ids)
        tracker = self._causal
        causal_state = state.get("causal")
        if tracker is not None and causal_state is not None:
            tracker.next_id = int(causal_state["next_id"])
            tracker.current_parent = None
            tracker.trace_of = dict(causal_state["trace_of"])
            tracker.delivered_ids = {}
            tracker.inbox_ids = {
                dst: list(ids)
                for dst, ids in causal_state["inbox_ids"].items()
            }

    def run(
        self,
        max_slots: int = 100_000,
        on_timeout: str = "raise",
        on_slot: Optional[Callable[["TimeSlottedSimulator"], None]] = None,
    ) -> int:
        """Run until quiescence; returns the number of slots executed.

        Parameters
        ----------
        max_slots:
            Slot budget.
        on_timeout:
            ``"raise"`` (default): failing to quiesce within ``max_slots``
            raises -- a protocol that cannot terminate is a bug, not a
            result.  ``"stop"``: stop stepping instead and mark
            :attr:`timed_out`; callers (e.g. the degraded-result path of
            ``run_distributed_matching``) then salvage what the agents
            agreed on so far.
        on_slot:
            Optional callback invoked with the simulator after every
            completed slot (a safe boundary for
            :meth:`snapshot_state`).  The durable runtime hooks its WAL
            append and periodic checkpointing here.

        Raises
        ------
        SimulationError
            If the protocol fails to quiesce within ``max_slots`` slots
            and ``on_timeout="raise"``.
        """
        if on_timeout not in ("raise", "stop"):
            raise SimulationError(
                f"on_timeout must be 'raise' or 'stop', got {on_timeout!r}"
            )
        with self._obs.span("simulator.run"):
            while not self.is_quiescent():
                if self._now >= max_slots:
                    if on_timeout == "stop":
                        self._timed_out = True
                        break
                    busy = [a.agent_id for a in self._order if not a.is_done()]
                    raise SimulationError(
                        f"no quiescence after {max_slots} slots; "
                        f"{len(self._queue)} messages in flight, busy agents: "
                        f"{busy[:10]}"
                    )
                self.run_slot()
                if on_slot is not None:
                    on_slot(self)
        self._finished = True
        if self._observing:
            fields = dict(
                slots=self._now,
                messages_sent=self._messages_sent,
                messages_delivered=self._messages_delivered,
                messages_dropped=self._messages_dropped,
            )
            if self._timed_out:
                fields["timed_out"] = True
            self._obs.emit("sim.done", **fields)
            if self._schedule is not None:
                self._obs.emit(
                    "sim.fault_summary",
                    crashes=self._crash_count,
                    restarts=self._restart_count,
                    messages_lost_to_crash=self._messages_lost_to_crash,
                    recovery_slots=list(self._recovery_slots),
                )
        return self._now
