"""Seller agent: the seller-side protocol state machine.

A seller moves through three local phases:

1. **Stage I** -- each slot, fold fresh proposals into the waitlist by
   re-solving the coalition MWIS (identical selection logic to the
   centralised Algorithm 1, including the monotone guard), sending
   ``Evict`` / ``ProposalReject`` to losers and ``WaitlistUpdate`` (with
   the cumulative proposer digest) to members.  Transfer applications that
   arrive early are queued.  The configured transition rule -- the default
   ``MN`` slot or the ``Q^k`` estimate of eq. (9) -- decides when to move
   on; on transition the seller notifies her coalition (enabling buyer
   rule III) and stops granting proposals.

2. **Stage II Phase 1** -- process queued/incoming transfer applications
   in slot batches: offer the best compatible extension (MWIS over
   applicants compatible with the coalition), reject the rest into the
   invitation list, and commit offers on ``TransferConfirm``.  After the
   Phase-1 horizon (``M`` + grace slots) with no outstanding offers, move
   to Phase 2.

3. **Stage II Phase 2** -- screen the invitation list against the current
   coalition and invite survivors one at a time in descending price order
   (at most one invitation outstanding, so acceptances can never
   conflict).  Late transfer applications are rejected but appended to the
   invitation list, preserving the paper's "invite whom I rejected"
   semantics under asynchrony.  The seller is done when the list empties.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.deferred_acceptance import seller_select_coalition
from repro.core.market import SpectrumMarket
from repro.distributed.buyer_agent import buyer_agent_id
from repro.distributed.messages import (
    Evict,
    Invite,
    InviteAccept,
    InviteDecline,
    Leave,
    Message,
    ProposalReject,
    Propose,
    SellerStageNotify,
    TransferApply,
    TransferConfirm,
    TransferDecline,
    TransferOffer,
    TransferReject,
    WaitlistUpdate,
)
from repro.distributed.probability import better_proposal_probability
from repro.distributed.simulator import Agent, SlotContext
from repro.distributed.transition import SellerTransitionRule, TransitionPolicy
from repro.errors import ProtocolError
from repro.interference.mwis import mwis_solve

__all__ = ["SellerAgent"]

#: Local phase markers (seller-internal, not wire-visible).
_STAGE1 = 1
_PHASE1 = 2
_PHASE2 = 3


class SellerAgent(Agent):
    """One virtual seller (channel owner) of the distributed protocol."""

    #: Sellers step after buyers so a slot carries a full round.
    PRIORITY = 1

    def __init__(
        self,
        channel: int,
        market: SpectrumMarket,
        policy: TransitionPolicy,
        initial_coalition: Optional[Set[int]] = None,
    ) -> None:
        super().__init__(f"seller:{channel}", priority=self.PRIORITY)
        self.channel = channel
        self._market = market
        self._policy = policy
        self._graph = market.graph(channel)
        self._prices = market.channel_prices(channel)

        self.phase = _STAGE1
        self.waitlist: Set[int] = set()
        self._proposers_so_far: Set[int] = set()
        self._pending_applications: List[int] = []
        self._outstanding_offers: Set[int] = set()
        self._invitation_list: List[int] = []
        self._outstanding_invite: Optional[int] = None
        self._transition_slot: Optional[int] = None

        self._default_slot = policy.default_stage2_slot(
            market.num_channels, market.num_buyers
        )
        self._phase1_duration = policy.phase1_duration(market.num_channels)

        if initial_coalition is not None:
            # Warm start: the seller carries her previous-epoch coalition
            # and begins directly in Stage II Phase 1 -- no Stage-I
            # proposals will come, only transfer applications.
            if not self._graph.is_independent(initial_coalition):
                raise ProtocolError(
                    f"warm-start coalition {sorted(initial_coalition)} is not "
                    f"interference-free on channel {channel}"
                )
            self.waitlist = set(initial_coalition)
            self.phase = _PHASE1
            self._transition_slot = 0

    # ------------------------------------------------------------------
    # Agent interface
    # ------------------------------------------------------------------
    def step(self, inbox: List[Message], ctx: SlotContext) -> None:
        proposals: List[int] = []
        applications: List[int] = []
        for message in inbox:
            ctx.set_cause(message)
            if isinstance(message, Leave):
                self.waitlist.discard(message.buyer)
            elif isinstance(message, Propose):
                proposals.append(message.buyer)
            elif isinstance(message, TransferApply):
                applications.append(message.buyer)
            elif isinstance(message, TransferConfirm):
                self._commit_transfer(message.buyer)
            elif isinstance(message, TransferDecline):
                self._outstanding_offers.discard(message.buyer)
            elif isinstance(message, InviteAccept):
                self._commit_invite(message.buyer)
            elif isinstance(message, InviteDecline):
                if self._outstanding_invite == message.buyer:
                    self._outstanding_invite = None
            else:
                raise ProtocolError(
                    f"seller {self.channel} cannot handle message {message!r}"
                )

        if self.phase == _STAGE1:
            self._stage1(proposals, applications, ctx)
        elif self.phase == _PHASE1:
            self._phase1(proposals, applications, ctx)
        if self.phase == _PHASE2:
            self._phase2(proposals, applications, ctx)

    # ------------------------------------------------------------------
    # Stage I
    # ------------------------------------------------------------------
    def _stage1(
        self, proposals: List[int], applications: List[int], ctx: SlotContext
    ) -> None:
        self._pending_applications.extend(applications)

        if proposals:
            fresh = sorted(set(proposals))
            self._proposers_so_far.update(fresh)
            pool = sorted(self.waitlist | set(fresh))
            selected = set(
                seller_select_coalition(
                    self._market,
                    self.channel,
                    pool,
                    incumbent=sorted(self.waitlist),
                    monotone_guard=True,
                )
            )
            for buyer in sorted(self.waitlist - selected):
                ctx.send(buyer_agent_id(buyer), Evict(self.agent_id, self.channel))
            for buyer in fresh:
                if buyer not in selected:
                    ctx.send(
                        buyer_agent_id(buyer),
                        ProposalReject(self.agent_id, self.channel),
                    )
            self.waitlist = selected
            update = WaitlistUpdate(
                self.agent_id,
                self.channel,
                frozenset(self.waitlist),
                frozenset(self._proposers_so_far),
            )
            for buyer in sorted(self.waitlist):
                ctx.send(buyer_agent_id(buyer), update)

        if self._stage1_transition_due(bool(proposals), ctx.now):
            self.phase = _PHASE1
            self._transition_slot = ctx.now
            notify = SellerStageNotify(self.agent_id, self.channel)
            for buyer in sorted(self.waitlist):
                ctx.send(buyer_agent_id(buyer), notify)

    def _stage1_transition_due(self, had_proposals: bool, now: int) -> bool:
        if now >= self._default_slot:
            return True
        rule = self._policy.seller_rule
        if rule is SellerTransitionRule.DEFAULT:
            return False
        if rule is SellerTransitionRule.BETTER_PROPOSAL_PROBABILITY:
            # The paper's trigger: no proposal this slot, but transfer
            # applications waiting for a decision (Section IV-B).
            if had_proposals or not self._pending_applications:
                return False
            unseen = [
                j
                for j in range(self._market.num_buyers)
                if j not in self._proposers_so_far
            ]
            if not self.waitlist:
                # Nothing to defend; processing applications is free upside.
                return True
            cheapest = min(
                self.waitlist, key=lambda j: (float(self._prices[j]), j)
            )
            others = self.waitlist - {cheapest}
            compatible = sum(
                1
                for j in unseen
                if not self._graph.conflicts_with_set(j, others)
            )
            theta = compatible / len(unseen) if unseen else 0.0
            risk = better_proposal_probability(
                round_index=now + 1,
                num_unseen_buyers=len(unseen),
                num_channels=self._market.num_channels,
                num_buyers=self._market.num_buyers,
                lowest_price=float(self._prices[cheapest]),
                theta=theta,
                cdf=self._policy.price_cdf,
            )
            return risk < self._policy.seller_threshold
        raise ProtocolError(f"unknown seller rule {rule!r}")

    # ------------------------------------------------------------------
    # Stage II Phase 1
    # ------------------------------------------------------------------
    def _commit_transfer(self, buyer: int) -> None:
        if buyer not in self._outstanding_offers:
            raise ProtocolError(
                f"seller {self.channel} got a confirm from buyer {buyer} "
                f"without an outstanding offer"
            )
        self._outstanding_offers.discard(buyer)
        if self._graph.conflicts_with_set(buyer, self.waitlist):
            raise ProtocolError(
                f"confirmed transfer of buyer {buyer} conflicts with "
                f"coalition {sorted(self.waitlist)} on channel {self.channel}"
            )
        self.waitlist.add(buyer)

    def _phase1(
        self, proposals: List[int], applications: List[int], ctx: SlotContext
    ) -> None:
        # Proposals after the transition can no longer be granted.
        for buyer in proposals:
            ctx.send(
                buyer_agent_id(buyer), ProposalReject(self.agent_id, self.channel)
            )
        self._pending_applications.extend(applications)

        if not self._outstanding_offers and self._pending_applications:
            applicants = []
            seen: Set[int] = set()
            for buyer in self._pending_applications:
                if buyer not in seen and buyer not in self.waitlist:
                    seen.add(buyer)
                    applicants.append(buyer)
            self._pending_applications = []
            compatible = self._graph.independent_subset_greedily_compatible(
                self.waitlist, applicants
            )
            weights = {j: float(self._prices[j]) for j in compatible}
            accepted = set(
                mwis_solve(
                    self._graph, weights, compatible, self._market.mwis_algorithm
                )
            )
            for buyer in applicants:
                if buyer in accepted:
                    self._outstanding_offers.add(buyer)
                    ctx.send(
                        buyer_agent_id(buyer),
                        TransferOffer(self.agent_id, self.channel),
                    )
                else:
                    self._invitation_list.append(buyer)
                    ctx.send(
                        buyer_agent_id(buyer),
                        TransferReject(self.agent_id, self.channel),
                    )

        assert self._transition_slot is not None
        if (
            ctx.now - self._transition_slot >= self._phase1_duration
            and not self._outstanding_offers
            and not self._pending_applications
        ):
            self.phase = _PHASE2

    # ------------------------------------------------------------------
    # Stage II Phase 2
    # ------------------------------------------------------------------
    def _commit_invite(self, buyer: int) -> None:
        if self._outstanding_invite != buyer:
            raise ProtocolError(
                f"seller {self.channel} got an invite-accept from buyer "
                f"{buyer} but invited {self._outstanding_invite}"
            )
        self._outstanding_invite = None
        if self._graph.conflicts_with_set(buyer, self.waitlist):
            raise ProtocolError(
                f"accepted invitation of buyer {buyer} conflicts with "
                f"coalition {sorted(self.waitlist)} on channel {self.channel}"
            )
        self.waitlist.add(buyer)
        # Algorithm 2, line 29: drop the new member's interfering neighbours.
        self._invitation_list = [
            k for k in self._invitation_list if not self._graph.interferes(buyer, k)
        ]

    def _phase2(
        self, proposals: List[int], applications: List[int], ctx: SlotContext
    ) -> None:
        for buyer in proposals:
            ctx.send(
                buyer_agent_id(buyer), ProposalReject(self.agent_id, self.channel)
            )
        # Late transfer applications: reject, but keep the buyers invitable.
        for buyer in applications:
            ctx.send(
                buyer_agent_id(buyer), TransferReject(self.agent_id, self.channel)
            )
            self._invitation_list.append(buyer)

        if self._outstanding_invite is not None:
            return
        while self._invitation_list:
            # Screen lazily at invitation time (equivalent to Algorithm 2's
            # upfront screen, but robust to coalition changes in between).
            best = max(
                self._invitation_list,
                key=lambda j: (float(self._prices[j]), -j),
            )
            self._invitation_list.remove(best)
            if best in self.waitlist:
                continue
            if self._graph.conflicts_with_set(best, self.waitlist):
                continue
            self._outstanding_invite = best
            ctx.send(buyer_agent_id(best), Invite(self.agent_id, self.channel))
            return

    def is_done(self) -> bool:
        """Quiescent: no obligation that could still change the matching.

        A seller is done when she holds no queued applications, no
        unconfirmed offers, no outstanding invitation and an empty
        invitation list -- *regardless of phase*.  A Stage-I seller in
        that state is purely reactive: she only acts again if a message
        arrives, and the kernel's termination condition (all agents done
        AND no message in flight) already guarantees none will.  Without
        this, a seller that never receives a transfer application would
        idle until the default-rule deadline even though the market
        settled long ago, making every adaptive run cost ~MN slots.
        """
        return (
            self._outstanding_invite is None
            and not self._invitation_list
            and not self._outstanding_offers
            and not self._pending_applications
        )

    # ------------------------------------------------------------------
    # Crash/restart support
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint all mutable protocol state (graph/prices are static)."""
        return {
            "phase": self.phase,
            "waitlist": set(self.waitlist),
            "proposers_so_far": set(self._proposers_so_far),
            "pending_applications": list(self._pending_applications),
            "outstanding_offers": set(self._outstanding_offers),
            "invitation_list": list(self._invitation_list),
            "outstanding_invite": self._outstanding_invite,
            "transition_slot": self._transition_slot,
        }

    def restore(self, state: dict) -> None:
        self.phase = state["phase"]
        self.waitlist = set(state["waitlist"])
        self._proposers_so_far = set(state["proposers_so_far"])
        self._pending_applications = list(state["pending_applications"])
        self._outstanding_offers = set(state["outstanding_offers"])
        self._invitation_list = list(state["invitation_list"])
        self._outstanding_invite = state["outstanding_invite"]
        self._transition_slot = state["transition_slot"]
