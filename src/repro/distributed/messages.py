"""Protocol messages exchanged by buyer and seller agents.

All messages are immutable dataclasses carrying integer buyer/channel ids.
Agent identifiers on the wire are strings (``"buyer:<j>"`` /
``"seller:<i>"``, see :mod:`repro.distributed.protocol`); the payloads use
raw ids so messages stay trivially serialisable.

Handshakes
----------
Stage I proposals are single-shot: ``Propose`` is answered by
``WaitlistUpdate`` (the buyer is in the coalition), ``ProposalReject``
(never admitted) or a later ``Evict``.  Stage II acceptances are
*offer/confirm* handshakes (``TransferOffer`` -> ``TransferConfirm`` /
``TransferDecline``), because an asynchronous buyer may have found a
better match between applying and being accepted; the seller only commits
a buyer on confirmation, so coalitions never go stale.  Invitations are
also two-step (``Invite`` -> ``InviteAccept`` / ``InviteDecline``) with at
most one invitation outstanding per seller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

__all__ = [
    "Message",
    "Propose",
    "WaitlistUpdate",
    "Evict",
    "ProposalReject",
    "SellerStageNotify",
    "TransferApply",
    "TransferOffer",
    "TransferReject",
    "TransferConfirm",
    "TransferDecline",
    "Invite",
    "InviteAccept",
    "InviteDecline",
    "Leave",
]


@dataclass(frozen=True)
class Message:
    """Base class; ``sender`` is the wire id of the originating agent."""

    sender: str


# ----------------------------------------------------------------------
# Stage I
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Propose(Message):
    """Buyer -> seller: Stage I proposal (Algorithm 1, line 7)."""

    buyer: int


@dataclass(frozen=True)
class WaitlistUpdate(Message):
    """Seller -> waitlisted buyer: you are (still) in my coalition.

    Carries the current coalition and the cumulative set of buyers who have
    ever proposed to this seller.  The extra context is what lets buyers
    evaluate transition rules I and II locally (Section IV-A): rule I needs
    to know which interfering neighbours have already proposed; rule II
    needs the count of those who have not.
    """

    channel: int
    coalition: FrozenSet[int]
    proposers_so_far: FrozenSet[int]


@dataclass(frozen=True)
class Evict(Message):
    """Seller -> buyer: you were removed from my waitlist (Stage I only)."""

    channel: int


@dataclass(frozen=True)
class ProposalReject(Message):
    """Seller -> buyer: proposal declined (not waitlisted).

    Also sent when a proposal reaches a seller who has already transitioned
    to Stage II ("after stage transition, a seller cannot grant proposals
    anymore", Section IV-B).
    """

    channel: int


@dataclass(frozen=True)
class SellerStageNotify(Message):
    """Seller -> her matched buyers: I transitioned to Stage II.

    Receiving this guarantees the buyer will never be evicted, triggering
    buyer transition rule III (Section IV-A).
    """

    channel: int


# ----------------------------------------------------------------------
# Stage II Phase 1: transfer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TransferApply(Message):
    """Buyer -> seller: transfer application (Algorithm 2, line 8)."""

    buyer: int


@dataclass(frozen=True)
class TransferOffer(Message):
    """Seller -> buyer: your transfer application is acceptable.

    The coalition slot is reserved until the buyer confirms or declines in
    the next slot; offers are mutually non-interfering by construction.
    """

    channel: int


@dataclass(frozen=True)
class TransferReject(Message):
    """Seller -> buyer: application declined (buyer joins invitation list)."""

    channel: int


@dataclass(frozen=True)
class TransferConfirm(Message):
    """Buyer -> seller: I take the offered slot (commits the transfer)."""

    buyer: int


@dataclass(frozen=True)
class TransferDecline(Message):
    """Buyer -> seller: I no longer want the offered slot."""

    buyer: int


# ----------------------------------------------------------------------
# Stage II Phase 2: invitation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Invite(Message):
    """Seller -> previously rejected buyer (Algorithm 2, line 25)."""

    channel: int


@dataclass(frozen=True)
class InviteAccept(Message):
    """Buyer -> seller: invitation accepted (buyer also Leaves old seller)."""

    buyer: int


@dataclass(frozen=True)
class InviteDecline(Message):
    """Buyer -> seller: current match is at least as good; no move."""

    buyer: int


# ----------------------------------------------------------------------
# Bookkeeping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Leave(Message):
    """Buyer -> her previous seller: I moved elsewhere; drop me.

    Implicit in the paper's centralised formulation (updating ``mu`` removes
    the buyer from the old coalition); the distributed protocol needs an
    explicit message so the old seller's local coalition view stays correct.
    """

    buyer: int
