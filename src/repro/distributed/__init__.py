"""Distributed implementation of spectrum matching (Section IV).

The centralised loops in :mod:`repro.core` assume an oracle that tells all
participants when Stage I ends and Stage II begins.  Section IV of the
paper removes that assumption: buyers and sellers run as independent
agents exchanging messages in a time-slotted network, each deciding
*locally* when to transition between stages using the paper's transition
rules (buyer rules I-III driven by the eviction-probability estimate
``P^k`` of eqs. 7-8, the seller rule driven by the better-proposal
estimate ``Q^k`` of eq. 9, or the conservative default rule that waits
``MN`` / ``M`` / ``N`` slots).

Subpackage layout:

* :mod:`~repro.distributed.simulator` -- generic time-slotted simulation
  kernel with deterministic agent scheduling and termination detection.
* :mod:`~repro.distributed.network` -- message-delivery models (reliable,
  fixed/random delay, lossy).
* :mod:`~repro.distributed.faults` -- declarative node/link fault
  injection: crash/restart schedules, partitions, targeted message
  faults, and the endpoint-aware :class:`PartitionedNetwork`.
* :mod:`~repro.distributed.messages` -- the protocol's message types.
* :mod:`~repro.distributed.buyer_agent` / ``seller_agent`` -- the agent
  state machines.
* :mod:`~repro.distributed.probability` -- eqs. (7)-(9).
* :mod:`~repro.distributed.transition` -- the transition-rule policies.
* :mod:`~repro.distributed.protocol` -- end-to-end runner returning the
  final matching plus slot/message accounting.
"""

from repro.distributed.simulator import TimeSlottedSimulator, Agent, SlotContext
from repro.distributed.network import (
    ReliableNetwork,
    DelayedNetwork,
    LossyNetwork,
    Network,
)
from repro.distributed.faults import (
    RestartMode,
    CrashFault,
    PartitionFault,
    MessageFault,
    FaultSchedule,
    PartitionedNetwork,
)
from repro.distributed.probability import (
    eviction_probability_single_round,
    eviction_probability,
    better_proposal_probability_single_round,
    better_proposal_probability,
    uniform_price_cdf,
)
from repro.distributed.transition import (
    BuyerTransitionRule,
    SellerTransitionRule,
    TransitionPolicy,
    default_policy,
    adaptive_policy,
)
from repro.distributed.protocol import run_distributed_matching, DistributedResult

__all__ = [
    "TimeSlottedSimulator",
    "Agent",
    "SlotContext",
    "Network",
    "ReliableNetwork",
    "DelayedNetwork",
    "LossyNetwork",
    "RestartMode",
    "CrashFault",
    "PartitionFault",
    "MessageFault",
    "FaultSchedule",
    "PartitionedNetwork",
    "eviction_probability_single_round",
    "eviction_probability",
    "better_proposal_probability_single_round",
    "better_proposal_probability",
    "uniform_price_cdf",
    "BuyerTransitionRule",
    "SellerTransitionRule",
    "TransitionPolicy",
    "default_policy",
    "adaptive_policy",
    "run_distributed_matching",
    "DistributedResult",
]
