"""The declarative run model: one frozen, JSON-round-trippable ``RunSpec``.

Every way of executing a market run in this repo -- the two-stage
pipeline, the registry solvers, the Section IV message protocol with or
without chaos, online dynamic re-matching, durable checkpointed runs --
is described by the *same* value object: a :class:`RunSpec` composed of
orthogonal sub-specs.

* :class:`MarketSpec` -- which market (scenario, size, seed) and, for
  dynamic runs, the epoch-stream :class:`WorkloadSpec`;
* :class:`EngineSpec` -- which execution engine (a solver-registry name
  or a run family like ``distributed``) plus engine-specific options;
* :class:`FaultSpec` -- the declarative fault schedule (loss rate,
  crash/partition spec strings, deadline and timeout policy);
* :class:`TelemetrySpec` -- trace/metrics/serving/SLO wiring;
* :class:`ProfileSpec` -- the stdlib profiler harness (cProfile +
  tracemalloc) and deterministic kernel cost counters;
* :class:`DurabilitySpec` -- checkpoint directory, cadence and the
  supervised-retry policy;
* :class:`ParallelSpec` -- worker-pool sizing for sweeps.

The spec is *data*, not behaviour: ``to_json``/``from_json`` round-trip
byte-stably, :meth:`RunSpec.spec_hash` is key-order independent (it goes
through :func:`repro.ioutil.canonical_json`, the same function behind the
durable-run config hash), and unknown or future fields are rejected with
a :class:`~repro.errors.SpecError` naming the offending key -- mirroring
the trace manifest's future-schema rejection.  That makes a serialized
spec safe to store in run-dir manifests (resume compatibility becomes a
spec-equality check) and to accept over the wire.

Execution lives in :mod:`repro.run.session`.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SpecError
from repro.ioutil import canonical_json, config_hash

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "WorkloadSpec",
    "MarketSpec",
    "EngineSpec",
    "FaultSpec",
    "TelemetrySpec",
    "ProfileSpec",
    "DurabilitySpec",
    "ParallelSpec",
    "RunSpec",
]

#: Bump when the spec layout changes incompatibly.  A spec stamped with a
#: *newer* version than this build understands is rejected loudly (the
#: writer knows fields this reader would silently drop).
SPEC_SCHEMA_VERSION = 1

#: Commands a RunSpec can describe (the CLI's run subcommands).
RUN_COMMANDS = (
    "fig6",
    "fig7",
    "fig8",
    "toy",
    "counterexample",
    "distributed",
    "chaos",
    "swaps",
    "dynamic",
    "report",
    "solve",
)

_SCENARIOS = ("paper", "toy", "counterexample")
_STRATEGIES = ("warm", "cold", "both")
_SLO_POLICIES = ("warn", "fail")
_TIMEOUT_MODES = ("raise", "degrade")


# ----------------------------------------------------------------------
# Strict-parsing helpers
# ----------------------------------------------------------------------
def _require_mapping(section: str, payload: Any) -> None:
    if not isinstance(payload, dict):
        raise SpecError(
            f"{section}: expected a JSON object, got {type(payload).__name__}"
        )


def _reject_unknown(section: str, payload: Mapping[str, Any], known) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise SpecError(
            f"{section}: unknown field(s) "
            + ", ".join(repr(key) for key in unknown)
            + f"; known fields: {', '.join(known)}"
        )


def _field_names(cls) -> Tuple[str, ...]:
    return tuple(f.name for f in dataclasses.fields(cls))


def _str_tuple(section: str, name: str, value: Any) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise SpecError(
            f"{section}.{name}: expected a list of strings, "
            f"got {type(value).__name__}"
        )
    for item in value:
        if not isinstance(item, str):
            raise SpecError(
                f"{section}.{name}: expected a list of strings, "
                f"found {item!r}"
            )
    return tuple(value)


def _check_int(section: str, name: str, value: Any, minimum=None) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SpecError(
            f"{section}.{name}: expected an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise SpecError(
            f"{section}.{name}: must be >= {minimum}, got {value}"
        )


def _check_number(section: str, name: str, value: Any, lo=None, hi=None):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{section}.{name}: expected a number, got {value!r}")
    if lo is not None and value < lo:
        raise SpecError(f"{section}.{name}: must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise SpecError(f"{section}.{name}: must be <= {hi}, got {value}")


def _check_choice(section: str, name: str, value: Any, choices) -> None:
    if value not in choices:
        raise SpecError(
            f"{section}.{name}: must be one of "
            + ", ".join(repr(c) for c in choices)
            + f", got {value!r}"
        )


# ----------------------------------------------------------------------
# Sub-specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Epoch-stream parameters of a dynamic (evolving-market) run."""

    epochs: int = 12
    arrival_rate: float = 5.0
    departure_prob: float = 0.12
    drift: float = 0.05
    strategy: str = "both"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Any, section: str = "workload"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        return cls(**payload)

    def validate(self, section: str = "workload") -> None:
        _check_int(section, "epochs", self.epochs, minimum=1)
        _check_number(section, "arrival_rate", self.arrival_rate, lo=0.0)
        _check_number(
            section, "departure_prob", self.departure_prob, lo=0.0, hi=1.0
        )
        _check_number(section, "drift", self.drift, lo=0.0)
        _check_choice(section, "strategy", self.strategy, _STRATEGIES)


@dataclass(frozen=True)
class MarketSpec:
    """Which market the run executes on.

    ``scenario`` is ``"paper"`` (a random paper-workload market of
    ``buyers`` x ``sellers`` drawn from ``seed``), ``"toy"`` (the frozen
    Figs. 1-2 instance) or ``"counterexample"`` (the frozen Section III-D
    instance); the frozen scenarios ignore ``buyers``/``sellers``.
    ``workload`` is present only for dynamic runs.
    """

    scenario: str = "paper"
    buyers: int = 20
    sellers: int = 4
    seed: int = 0
    workload: Optional[WorkloadSpec] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "buyers": self.buyers,
            "sellers": self.sellers,
            "seed": self.seed,
            "workload": (
                None if self.workload is None else self.workload.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, payload: Any, section: str = "market"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        kwargs = dict(payload)
        workload = kwargs.get("workload")
        if workload is not None:
            kwargs["workload"] = WorkloadSpec.from_dict(
                workload, section=f"{section}.workload"
            )
        return cls(**kwargs)

    def validate(self, section: str = "market") -> None:
        _check_choice(section, "scenario", self.scenario, _SCENARIOS)
        _check_int(section, "buyers", self.buyers, minimum=1)
        _check_int(section, "sellers", self.sellers, minimum=1)
        _check_int(section, "seed", self.seed)
        if self.workload is not None:
            self.workload.validate(section=f"{section}.workload")


@dataclass(frozen=True)
class EngineSpec:
    """Which execution engine runs the market, plus its options.

    ``name`` is a solver-registry name (``two_stage``, ``greedy``,
    ``branch_and_bound``, ...) or a run-family name the Session layer
    understands directly (``distributed``, ``dynamic``, ``swaps``,
    ``figure``, ``report``).  ``options`` is the engine-specific config
    mapping, passed through verbatim (the same dict a registry solver's
    ``solve(config=...)`` receives).
    """

    name: str = "two_stage"
    options: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, payload: Any, section: str = "engine"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        kwargs = dict(payload)
        options = kwargs.get("options")
        if options is not None:
            _require_mapping(f"{section}.options", options)
        return cls(**kwargs)

    def validate(self, section: str = "engine") -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SpecError(
                f"{section}.name: expected a non-empty string, "
                f"got {self.name!r}"
            )

    @classmethod
    def from_use_bruteforce(
        cls,
        use_bruteforce: Optional[bool],
        solver: Optional[str] = None,
        default: str = "branch_and_bound",
        stacklevel: int = 3,
    ) -> "EngineSpec":
        """Fold the deprecated ``use_bruteforce=`` flag into an engine.

        The one blessed translation of the legacy boolean: ``True`` means
        the ``bruteforce`` backend, ``False`` means ``default``, and a
        conflicting explicit ``solver=`` raises.  Passing the flag at all
        (either value) emits a single :class:`DeprecationWarning`.
        """
        if use_bruteforce is not None:
            warnings.warn(
                "use_bruteforce= is deprecated; pass solver='bruteforce' or "
                "solver='branch_and_bound' instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
            mapped = "bruteforce" if use_bruteforce else default
            if solver is not None and solver != mapped:
                raise SpecError(
                    f"conflicting benchmark selection: solver={solver!r} vs "
                    f"use_bruteforce={use_bruteforce!r} "
                    f"(which means {mapped!r})"
                )
            return cls(name=mapped)
        return cls(name=solver if solver is not None else default)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault schedule for distributed runs.

    ``crashes`` and ``partitions`` hold the CLI fault-spec strings
    (``AGENT@CRASH[-RESTART][/MODE]``, ``G1|G2|...@START[-END]``) --
    the serialized form of
    :meth:`repro.distributed.faults.CrashFault.parse` /
    :meth:`~repro.distributed.faults.PartitionFault.parse`.
    """

    loss: float = 0.0
    crashes: Tuple[str, ...] = ()
    partitions: Tuple[str, ...] = ()
    deadline_slots: Optional[int] = None
    on_timeout: str = "degrade"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loss": self.loss,
            "crashes": list(self.crashes),
            "partitions": list(self.partitions),
            "deadline_slots": self.deadline_slots,
            "on_timeout": self.on_timeout,
        }

    @classmethod
    def from_dict(cls, payload: Any, section: str = "faults"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        kwargs = dict(payload)
        for name in ("crashes", "partitions"):
            if name in kwargs:
                kwargs[name] = _str_tuple(section, name, kwargs[name])
        return cls(**kwargs)

    def validate(self, section: str = "faults") -> None:
        _check_number(section, "loss", self.loss, lo=0.0, hi=1.0)
        _check_choice(section, "on_timeout", self.on_timeout, _TIMEOUT_MODES)
        if self.deadline_slots is not None:
            _check_int(
                section, "deadline_slots", self.deadline_slots, minimum=1
            )

    @property
    def empty(self) -> bool:
        """Whether the spec describes a fault-free run."""
        return (
            not self.crashes
            and not self.partitions
            and self.loss == 0.0
            and self.deadline_slots is None
        )

    def build_schedule(self):
        """Parse the spec strings into a live ``FaultSchedule`` (or None)."""
        from repro.distributed.faults import (
            CrashFault,
            FaultSchedule,
            PartitionFault,
        )

        schedule = FaultSchedule(
            crashes=[CrashFault.parse(s) for s in self.crashes],
            partitions=[PartitionFault.parse(s) for s in self.partitions],
        )
        return None if schedule.empty else schedule


@dataclass(frozen=True)
class TelemetrySpec:
    """Observability wiring: trace sink, metrics, live serving, SLOs."""

    trace_out: Optional[str] = None
    trace_flush_every: int = 1
    metrics: bool = False
    metrics_out: Optional[str] = None
    serve_metrics: Optional[str] = None
    serve_hold: float = 0.0
    slo: Tuple[str, ...] = ()
    slo_policy: str = "warn"

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["slo"] = list(self.slo)
        return payload

    @classmethod
    def from_dict(cls, payload: Any, section: str = "telemetry"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        kwargs = dict(payload)
        if "slo" in kwargs:
            kwargs["slo"] = _str_tuple(section, "slo", kwargs["slo"])
        return cls(**kwargs)

    def validate(self, section: str = "telemetry") -> None:
        _check_int(
            section, "trace_flush_every", self.trace_flush_every, minimum=1
        )
        _check_number(section, "serve_hold", self.serve_hold, lo=0.0)
        _check_choice(section, "slo_policy", self.slo_policy, _SLO_POLICIES)

    @classmethod
    def from_args(cls, args) -> "TelemetrySpec":
        """Build from a parsed argparse namespace (missing flags = defaults)."""
        return cls(
            trace_out=getattr(args, "trace_out", None),
            trace_flush_every=int(getattr(args, "trace_flush_every", 1)),
            metrics=bool(getattr(args, "metrics", False)),
            metrics_out=getattr(args, "metrics_out", None),
            serve_metrics=getattr(args, "serve_metrics", None),
            serve_hold=float(getattr(args, "serve_hold", 0.0)),
            slo=tuple(getattr(args, "slo", []) or []),
            slo_policy=str(getattr(args, "slo_policy", "warn")),
        )


@dataclass(frozen=True)
class ProfileSpec:
    """Profiling wiring: stdlib profiler drivers + cost counters.

    Null by default: with ``profile_out`` unset no profiler is
    installed, no deterministic cost counter is flushed, and a run is
    byte-identical (trace and metrics) to one executed before this spec
    existed.  With ``profile_out`` set, the run writes its attribution
    artifacts (``profile.json``, ``profile.collapsed``,
    ``profile.speedscope.json``) into that directory; ``cprofile`` and
    ``memory`` gate the two stdlib drivers individually.
    """

    profile_out: Optional[str] = None
    cprofile: bool = True
    memory: bool = True
    top: int = 20

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Any, section: str = "profile"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        return cls(**payload)

    def validate(self, section: str = "profile") -> None:
        if self.profile_out is not None and not isinstance(
            self.profile_out, str
        ):
            raise SpecError(
                f"{section}.profile_out: expected a string path, "
                f"got {self.profile_out!r}"
            )
        _check_int(section, "top", self.top, minimum=1)

    @property
    def enabled(self) -> bool:
        """Whether the run profiles at all (the null-default gate)."""
        return self.profile_out is not None

    @classmethod
    def from_args(cls, args) -> "ProfileSpec":
        """Build from a parsed argparse namespace (missing flags = defaults)."""
        return cls(profile_out=getattr(args, "profile_out", None))


@dataclass(frozen=True)
class DurabilitySpec:
    """Checkpointing cadence and the supervised-retry policy."""

    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 10
    inject_stall_after: Optional[int] = None
    max_retries: int = 3
    backoff_s: float = 0.5
    retry_seed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Any, section: str = "durability"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        return cls(**payload)

    @property
    def durable(self) -> bool:
        return self.checkpoint_dir is not None

    def validate(self, section: str = "durability") -> None:
        if self.checkpoint_dir is None:
            if self.inject_stall_after is not None:
                raise SpecError(
                    "--inject-stall-after requires --checkpoint-dir"
                )
        else:
            if self.checkpoint_every < 1:
                raise SpecError("--checkpoint-every must be >= 1")
        _check_int(section, "max_retries", self.max_retries, minimum=0)
        _check_number(section, "backoff_s", self.backoff_s, lo=0.0)
        _check_int(section, "retry_seed", self.retry_seed)


@dataclass(frozen=True)
class ParallelSpec:
    """Worker-pool sizing for figure sweeps (``jobs=0`` = all cores)."""

    jobs: Optional[int] = None
    shm: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Any, section: str = "parallel"):
        _require_mapping(section, payload)
        _reject_unknown(section, payload, _field_names(cls))
        return cls(**payload)

    def validate(self, section: str = "parallel") -> None:
        if self.jobs is not None:
            _check_int(section, "jobs", self.jobs, minimum=0)


# ----------------------------------------------------------------------
# The composed run spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One complete, self-contained description of a run.

    A frozen value object: hash it (:meth:`spec_hash`), serialize it
    (:meth:`to_json`), ship it, and the Session layer will execute the
    identical run anywhere.  See the module docstring for the sub-spec
    composition.
    """

    command: str
    market: MarketSpec = field(default_factory=MarketSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    profile: ProfileSpec = field(default_factory=ProfileSpec)
    durability: DurabilitySpec = field(default_factory=DurabilitySpec)
    parallel: ParallelSpec = field(default_factory=ParallelSpec)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "schema": SPEC_SCHEMA_VERSION,
            "command": self.command,
            "market": self.market.to_dict(),
            "engine": self.engine.to_dict(),
            "faults": self.faults.to_dict(),
            "telemetry": self.telemetry.to_dict(),
            "durability": self.durability.to_dict(),
            "parallel": self.parallel.to_dict(),
        }
        # Emitted only when non-default: specs (and the trace manifests
        # that embed them) written before profiling existed stay
        # byte-identical to ones written by this build.
        if self.profile != ProfileSpec():
            payload["profile"] = self.profile.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "RunSpec":
        _require_mapping("spec", payload)
        version = payload.get("schema")
        if version is None:
            raise SpecError(
                "spec: missing required field 'schema' "
                f"(this build writes schema {SPEC_SCHEMA_VERSION})"
            )
        if not isinstance(version, int) or isinstance(version, bool):
            raise SpecError(
                f"spec: schema must be an integer, got {version!r}"
            )
        if version > SPEC_SCHEMA_VERSION:
            raise SpecError(
                f"spec schema {version} is newer than this library "
                f"understands (max {SPEC_SCHEMA_VERSION}); upgrade to run "
                f"this spec"
            )
        if version < 1:
            raise SpecError(f"spec: schema must be >= 1, got {version}")
        known = ("schema",) + _field_names(cls)
        _reject_unknown("spec", payload, known)
        if "command" not in payload:
            raise SpecError("spec: missing required field 'command'")
        command = payload["command"]
        if not isinstance(command, str):
            raise SpecError(
                f"spec.command: expected a string, got {command!r}"
            )
        sections = {
            "market": MarketSpec,
            "engine": EngineSpec,
            "faults": FaultSpec,
            "telemetry": TelemetrySpec,
            "profile": ProfileSpec,
            "durability": DurabilitySpec,
            "parallel": ParallelSpec,
        }
        kwargs: Dict[str, Any] = {"command": command}
        for name, sub_cls in sections.items():
            if name in payload:
                kwargs[name] = sub_cls.from_dict(payload[name], section=name)
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize deterministically (sorted keys; byte-stable round trip)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def canonical(self) -> str:
        """The canonical (hash-input) serialization of this spec."""
        return canonical_json(self.to_dict())

    def spec_hash(self) -> str:
        """Stable short identity hash (canonical-JSON SHA-256[:16])."""
        return config_hash(self.to_dict())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`~repro.errors.SpecError` on any invalid field."""
        _check_choice("spec", "command", self.command, RUN_COMMANDS)
        self.market.validate()
        self.engine.validate()
        self.faults.validate()
        self.telemetry.validate()
        self.profile.validate()
        self.durability.validate()
        self.parallel.validate()
        if self.command == "dynamic":
            if self.market.workload is None:
                raise SpecError(
                    "spec: a dynamic run needs market.workload "
                    "(epochs/arrival_rate/departure_prob/drift/strategy)"
                )
            if (
                self.durability.durable
                and self.market.workload.strategy == "both"
            ):
                raise SpecError(
                    "a durable dynamic run needs a single strategy "
                    "(--strategy warm|cold)"
                )

    # ------------------------------------------------------------------
    # Durable-run identity
    # ------------------------------------------------------------------
    def durable_identity(self) -> Dict[str, Any]:
        """The spec subset that *is* a durable run's identity.

        Stored as the run-dir manifest config, so the manifest's
        ``config_hash`` is keyed off the spec's canonical serialization
        and resume compatibility becomes a spec-equality check.
        Telemetry, profiling, parallelism, the checkpoint directory path
        and the stall-injection test hook are deliberately excluded: none of them
        changes what the run computes, so none of them may change its
        identity (a victim run with ``--inject-stall-after`` must resume
        into the same identity as its uninterrupted golden twin).
        """
        return {
            "spec_schema": SPEC_SCHEMA_VERSION,
            "command": self.command,
            "market": self.market.to_dict(),
            "engine": self.engine.to_dict(),
            "faults": self.faults.to_dict(),
            "checkpoint_every": self.durability.checkpoint_every,
        }
