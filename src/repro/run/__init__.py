"""One run model: declarative specs plus the Session execution layer.

``repro.run`` is the single front door for executing anything in this
repo.  A :class:`RunSpec` is a frozen, JSON-round-trippable description
of a run -- market, engine, faults, telemetry, durability, parallelism --
and :class:`Session` validates it, assembles the observability and
durability stacks uniformly, and dispatches to the right execution
engine.  The legacy entrypoints (``run_two_stage``,
``run_distributed_matching``, ``OnlineMatcher.run``, the durable
runners, ``registry.solve``) are thin shims over the ``execute_*``
functions exported here.
"""

from repro.run.spec import (
    RUN_COMMANDS,
    SPEC_SCHEMA_VERSION,
    DurabilitySpec,
    EngineSpec,
    FaultSpec,
    MarketSpec,
    ParallelSpec,
    RunSpec,
    TelemetrySpec,
    WorkloadSpec,
)
from repro.run.session import (
    Session,
    build_market,
    build_recorder,
    build_slo_engine,
    execute_distributed,
    execute_durable,
    execute_online_run,
    execute_solve,
    execute_two_stage,
    start_telemetry_server,
)

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "RUN_COMMANDS",
    "WorkloadSpec",
    "MarketSpec",
    "EngineSpec",
    "FaultSpec",
    "TelemetrySpec",
    "DurabilitySpec",
    "ParallelSpec",
    "RunSpec",
    "Session",
    "build_market",
    "build_recorder",
    "build_slo_engine",
    "start_telemetry_server",
    "execute_two_stage",
    "execute_distributed",
    "execute_online_run",
    "execute_durable",
    "execute_solve",
]
