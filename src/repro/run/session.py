"""The Session layer: one execution path for every kind of run.

Historically each entrypoint -- :func:`repro.core.two_stage.run_two_stage`,
:func:`repro.distributed.protocol.run_distributed_matching`,
:meth:`repro.dynamic.online.OnlineMatcher.run`, the durable runners in
:mod:`repro.runtime.durable` and the registry's
:func:`repro.engine.registry.solve` -- hand-plumbed recorders, fault
schedules and checkpoint stores itself.  This module is now the single
home of those execution bodies:

* the ``execute_*`` functions hold the entrypoints' original bodies,
  byte-for-byte in observable behaviour (the golden traces lock this);
  the legacy entrypoints are thin deprecated shims over them;
* :func:`build_recorder` / :func:`build_slo_engine` /
  :func:`start_telemetry_server` assemble the observability stack from a
  :class:`~repro.run.spec.TelemetrySpec` exactly the way the CLI always
  did from flags;
* :class:`Session` validates a :class:`~repro.run.spec.RunSpec` and
  dispatches it to the right engine, returning the canonical result
  object (``TwoStageResult``, ``DistributedResult``, ``SolveReport``,
  epoch outcomes, or the durable result dict).

Durable runs store :meth:`RunSpec.durable_identity` as their manifest
config, so the run directory's ``config_hash`` is the hash of the spec's
canonical serialization -- resume compatibility is a spec-equality check.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.deferred_acceptance import deferred_acceptance
from repro.core.transfer_invitation import transfer_and_invitation
from repro.core.two_stage import TwoStageResult
from repro.distributed.protocol import build_distributed_simulation
from repro.engine.validation import matching_welfare
from repro.errors import ProtocolError, SpecError
from repro.obs import (
    JsonlEventSink,
    MetricsRegistry,
    Recorder,
    RunRegistry,
    SpanTracer,
    build_manifest,
)
from repro.obs.recorder import resolve_recorder
from repro.run.spec import MarketSpec, ProfileSpec, RunSpec, TelemetrySpec

__all__ = [
    "Session",
    "build_market",
    "build_recorder",
    "build_profiler",
    "build_slo_engine",
    "start_telemetry_server",
    "execute_two_stage",
    "execute_distributed",
    "execute_online_run",
    "execute_durable",
    "execute_solve",
]


# ----------------------------------------------------------------------
# Execution engines (the five legacy entrypoints' bodies live here)
# ----------------------------------------------------------------------
def execute_two_stage(
    market,
    record_trace: bool = True,
    monotone_guard: bool = True,
    recorder: Optional[Recorder] = None,
) -> TwoStageResult:
    """Run Algorithm 1 followed by Algorithm 2 on ``market``.

    The execution body behind
    :func:`repro.core.two_stage.run_two_stage`; see that shim for the
    full parameter documentation.  The emitted event stream is locked
    byte-for-byte by the golden-trace test.
    """
    rec = resolve_recorder(recorder)
    utilities = market.utilities
    if rec.enabled:
        rec.emit(
            "two_stage.start",
            buyers=market.num_buyers,
            channels=market.num_channels,
        )
    with rec.span("two_stage"):
        stage_one = deferred_acceptance(
            market,
            record_trace=record_trace,
            monotone_guard=monotone_guard,
            recorder=rec,
        )
        stage_two = transfer_and_invitation(
            market, stage_one.matching, record_trace=record_trace, recorder=rec
        )
    result = TwoStageResult(
        matching=stage_two.matching,
        stage_one=stage_one,
        stage_two=stage_two,
        welfare_stage1=matching_welfare(utilities, stage_one.matching),
        welfare_phase1=matching_welfare(utilities, stage_two.matching_after_phase1),
        welfare_phase2=matching_welfare(utilities, stage_two.matching),
        rounds_stage1=stage_one.num_rounds,
        rounds_phase1=stage_two.num_transfer_rounds,
        rounds_phase2=stage_two.num_invitation_rounds,
    )
    if rec.enabled:
        rec.emit(
            "two_stage.result",
            welfare_stage1=result.welfare_stage1,
            welfare_phase1=result.welfare_phase1,
            welfare_phase2=result.welfare_phase2,
            rounds_stage1=result.rounds_stage1,
            rounds_phase1=result.rounds_phase1,
            rounds_phase2=result.rounds_phase2,
            matched=result.matching.num_matched(),
        )
        metrics = rec.metrics
        if metrics.enabled:
            metrics.counter("two_stage.runs").inc()
            metrics.gauge("two_stage.welfare_stage1").set(result.welfare_stage1)
            metrics.gauge("two_stage.welfare_phase1").set(result.welfare_phase1)
            metrics.gauge("two_stage.welfare_phase2").set(result.welfare_phase2)
    return result


def execute_distributed(
    market,
    policy=None,
    network=None,
    seed: int = 0,
    max_slots: int = 1_000_000,
    reliable_transport: bool = False,
    retransmit_interval: int = 4,
    initial_matching=None,
    record_events: bool = False,
    recorder: Optional[Recorder] = None,
    fault_schedule=None,
    deadline_slots: Optional[int] = None,
    on_timeout: str = "raise",
):
    """Run the full message-level protocol on ``market``.

    The execution body behind :func:`repro.distributed.protocol.
    run_distributed_matching`; see that shim for the full parameter
    documentation.
    """
    if on_timeout not in ("raise", "degrade"):
        raise ProtocolError(
            f"on_timeout must be 'raise' or 'degrade', got {on_timeout!r}"
        )
    sim = build_distributed_simulation(
        market,
        policy=policy,
        network=network,
        seed=seed,
        reliable_transport=reliable_transport,
        retransmit_interval=retransmit_interval,
        initial_matching=initial_matching,
        record_events=record_events,
        recorder=recorder,
        fault_schedule=fault_schedule,
    )
    sim.emit_run_start()
    bound = deadline_slots if deadline_slots is not None else max_slots
    slots = sim.simulator.run(
        max_slots=bound,
        on_timeout="stop" if on_timeout == "degrade" else "raise",
    )
    return sim.finalize(slots)


def execute_online_run(matcher, epochs) -> List:
    """Step ``matcher`` through a whole epoch list.

    The execution body behind
    :meth:`repro.dynamic.online.OnlineMatcher.run` (the matcher is
    duck-typed: anything with ``step``/``strategy`` and the private
    recorder slot works).  Emits the closing ``dynamic.run_end`` event so
    the live run registry can mark the dynamic run finished.
    """
    outcomes = [matcher.step(epoch) for epoch in epochs]
    rec = resolve_recorder(matcher._recorder)
    if rec.enabled and outcomes:
        rec.emit(
            "dynamic.run_end",
            strategy=matcher.strategy.value,
            epochs=len(outcomes),
            social_welfare=outcomes[-1].social_welfare,
            total_churned=sum(o.churned for o in outcomes),
            total_rounds=sum(o.rounds for o in outcomes),
        )
    return outcomes


def execute_durable(
    kind: str,
    run_dir,
    config: Dict[str, Any],
    *,
    seed: int,
    recorder: Optional[Recorder] = None,
    inject_stall_after: Optional[int] = None,
) -> Dict[str, Any]:
    """Run a durable (WAL + checkpoint) execution from scratch.

    The execution body behind :func:`repro.runtime.durable.
    run_durable_dynamic` and :func:`~repro.runtime.durable.
    run_durable_chaos`.  ``config`` is either the legacy flat mapping
    those shims document or a spec-shaped identity from
    :meth:`~repro.run.spec.RunSpec.durable_identity`; the durable layer's
    ``run_params`` normalizer accepts both, so old run directories keep
    resuming.
    """
    from repro.runtime.checkpoint import CheckpointStore
    from repro.runtime.durable import (
        _DurableRun,
        _build_chaos_simulation,
        _build_dynamic_engine,
        _drive_chaos,
        _drive_dynamic,
    )

    if kind not in ("dynamic", "chaos"):
        raise SpecError(f"unknown durable run kind {kind!r}")
    store = CheckpointStore.create(
        run_dir, kind=kind, seed=int(seed), config=config
    )
    run = _DurableRun(
        store, recorder, fresh=True, inject_stall_after=inject_stall_after
    )
    try:
        if kind == "dynamic":
            generator, matcher = _build_dynamic_engine(store)
            return _drive_dynamic(run, generator, matcher, start_index=0)
        sim = _build_chaos_simulation(store, run.recorder)
        sim.emit_run_start()
        return _drive_chaos(run, sim)
    finally:
        run.close()


def execute_solve(
    name: str,
    market,
    *,
    recorder: Optional[Recorder] = None,
    config=None,
):
    """One-shot registry dispatch: ``get_solver(name).solve(market, ...)``.

    The execution body behind :func:`repro.engine.registry.solve`.
    """
    from repro.engine.registry import get_solver

    return get_solver(name).solve(market, recorder=recorder, config=config)


# ----------------------------------------------------------------------
# Uniform assembly: market, recorder, SLO engine, telemetry server
# ----------------------------------------------------------------------
def build_market(spec: MarketSpec):
    """Materialise a :class:`MarketSpec` into a live market instance."""
    from repro.workloads.scenarios import (
        counterexample_market,
        paper_simulation_market,
        toy_example_market,
    )

    if spec.scenario == "toy":
        return toy_example_market()
    if spec.scenario == "counterexample":
        return counterexample_market()
    if spec.scenario == "paper":
        return paper_simulation_market(
            spec.buyers, spec.sellers, np.random.default_rng(spec.seed)
        )
    raise SpecError(f"market.scenario: unknown scenario {spec.scenario!r}")


def build_recorder(
    telemetry: TelemetrySpec,
    *,
    profile: Optional[ProfileSpec] = None,
    seed: Optional[int] = None,
    config: Optional[Dict[str, Any]] = None,
) -> Recorder:
    """Assemble a run's recorder from its telemetry (and profile) specs.

    ``trace_out`` turns on the event sink (with a manifest header carrying
    ``seed`` and ``config``) and span tracing; ``metrics``,
    ``metrics_out``, ``serve_metrics`` and ``slo`` all turn on the metrics
    registry; ``serve_metrics`` and ``slo`` additionally turn on the live
    run registry.  An enabled ``profile`` spec needs span records and a
    metrics registry to attribute against, so it turns both on -- but
    never an event sink, which is why profiling alone changes no trace
    byte.  An all-default spec returns the null recorder and the run
    executes exactly as without observability.
    """
    trace_out = telemetry.trace_out
    profiling = profile is not None and profile.enabled
    want_metrics = bool(
        telemetry.metrics
        or telemetry.metrics_out
        or telemetry.serve_metrics
        or telemetry.slo
        or profiling
    )
    want_runs = bool(telemetry.serve_metrics or telemetry.slo)
    if trace_out is None and not want_metrics and not want_runs:
        return Recorder()
    events = None
    if trace_out is not None:
        events = JsonlEventSink(
            trace_out,
            manifest=build_manifest(seed=seed, config=config),
            flush_every=int(telemetry.trace_flush_every),
        )
    return Recorder(
        events=events,
        metrics=MetricsRegistry() if want_metrics else None,
        spans=(
            SpanTracer()
            if trace_out is not None or telemetry.metrics or profiling
            else None
        ),
        runs=RunRegistry() if want_runs else None,
    )


def build_profiler(
    profile: Optional[ProfileSpec],
    recorder: Recorder,
    meta: Optional[Dict[str, Any]] = None,
):
    """Instantiate the profiler (or ``None`` when the spec is disabled)."""
    if profile is None or not profile.enabled:
        return None
    from repro.prof import Profiler

    return Profiler(profile, recorder, meta=meta)


def build_slo_engine(telemetry: TelemetrySpec, recorder: Recorder):
    """Instantiate the SLO engine (or None) and attach it to the recorder.

    Raises :class:`~repro.errors.ObservabilityError` for malformed rules,
    exactly like the CLI always did.
    """
    if not telemetry.slo:
        return None
    from repro.obs import SloEngine

    engine = SloEngine(
        list(telemetry.slo), recorder, policy=telemetry.slo_policy
    )
    # Commands with a natural baseline (chaos's fault-free twin,
    # distributed's centralised welfare) install references here.
    recorder.slo_engine = engine
    return engine


def start_telemetry_server(
    telemetry: TelemetrySpec, recorder: Recorder, engine=None
):
    """Start the live telemetry server (or return None when not asked for)."""
    if telemetry.serve_metrics is None:
        return None
    from repro.obs import TelemetryServer, parse_serve_address

    host, port = parse_serve_address(telemetry.serve_metrics)
    return TelemetryServer(
        recorder, host=host, port=port, slo_engine=engine
    ).start()


# ----------------------------------------------------------------------
# The Session runner
# ----------------------------------------------------------------------
class Session:
    """Validate a :class:`RunSpec` and execute it through one pipeline.

    ``Session(spec).run()`` is the programmatic equivalent of the CLI:
    it validates the spec, assembles the recorder stack from
    ``spec.telemetry`` (unless a live ``recorder`` is injected), builds
    the market, dispatches to the right execution engine and returns the
    canonical result object:

    ========================  ===========================================
    spec.command              return value of :meth:`run`
    ========================  ===========================================
    ``toy`` / ``counterexample``  :class:`~repro.core.two_stage.TwoStageResult`
    ``solve``                 :class:`~repro.engine.report.SolveReport`
    ``distributed`` / ``chaos``  :class:`~repro.distributed.protocol.DistributedResult`
                              (or the durable result dict when
                              ``durability.checkpoint_dir`` is set)
    ``swaps``                 :class:`~repro.core.swap_extension.StageThreeResult`
    ``dynamic``               ``{strategy: [EpochOutcome, ...]}`` (or the
                              durable result dict)
    ``fig6``/``fig7``/``fig8``  the figure's experiment rows
    ========================  ===========================================

    ``report`` is a CLI-only composite and is rejected with a
    :class:`~repro.errors.SpecError`.

    Keyword overrides (``recorder``, ``market``, ``policy``, ``network``,
    ``initial_matching``, ``fault_schedule``) let advanced callers swap
    in pre-built components; everything omitted is derived from the spec.
    """

    def __init__(
        self,
        spec: RunSpec,
        *,
        recorder: Optional[Recorder] = None,
        market=None,
        policy=None,
        network=None,
        initial_matching=None,
        fault_schedule=None,
    ) -> None:
        spec.validate()
        self.spec = spec
        self._market = market
        self._policy = policy
        self._network = network
        self._initial_matching = initial_matching
        self._fault_schedule = fault_schedule
        self._owns_recorder = recorder is None
        if recorder is None:
            recorder = build_recorder(
                spec.telemetry,
                profile=spec.profile,
                seed=spec.market.seed,
                config=spec.to_dict(),
            )
        self.recorder = recorder

    # ------------------------------------------------------------------
    @property
    def market(self):
        """The spec's market, built lazily and cached."""
        if self._market is None:
            self._market = build_market(self.spec.market)
        return self._market

    # ------------------------------------------------------------------
    def run(self):
        """Execute the spec and return the canonical result object."""
        from repro.obs import use_recorder

        spec = self.spec
        slo_engine = build_slo_engine(spec.telemetry, self.recorder)
        server = start_telemetry_server(
            spec.telemetry, self.recorder, slo_engine
        )
        profiler = build_profiler(
            spec.profile,
            self.recorder,
            meta={"command": spec.command, "spec_hash": spec.spec_hash()},
        )
        try:
            if profiler is not None:
                profiler.start()
            if self._owns_recorder:
                with self.recorder, use_recorder(self.recorder):
                    result = self._dispatch()
                    if slo_engine is not None:
                        slo_engine.evaluate(final=True)
            else:
                with use_recorder(self.recorder):
                    result = self._dispatch()
                    if slo_engine is not None:
                        slo_engine.evaluate(final=True)
            if profiler is not None:
                profiler.stop()
                profiler.write()
                profiler = None
        finally:
            if profiler is not None:  # an exception unwound the dispatch
                profiler.stop()
            if server is not None:
                server.stop()
        return result

    # ------------------------------------------------------------------
    def _dispatch(self):
        command = self.spec.command
        if command in ("toy", "counterexample"):
            return execute_two_stage(self.market)
        if command == "solve":
            return self._run_solve()
        if command in ("distributed", "chaos"):
            return self._run_distributed()
        if command == "swaps":
            return self._run_swaps()
        if command == "dynamic":
            return self._run_dynamic()
        if command in ("fig6", "fig7", "fig8"):
            return self._run_figure()
        raise SpecError(
            f"spec.command {command!r} has no Session dispatch "
            f"(the 'report' composite is CLI-only)"
        )

    def _run_solve(self):
        spec = self.spec
        options = dict(spec.engine.options)
        return execute_solve(
            spec.engine.name,
            self.market,
            recorder=self.recorder,
            config=options or None,
        )

    def _resolve_policy(self):
        from repro.distributed.transition import (
            adaptive_policy,
            default_policy,
        )

        if self._policy is not None:
            return self._policy
        name = self.spec.engine.options.get("policy", "default")
        if name == "both":
            raise SpecError(
                "engine.options.policy: a Session runs a single policy; "
                "build one spec per policy for comparisons"
            )
        if name not in ("default", "adaptive"):
            raise SpecError(
                f"engine.options.policy: must be 'default' or 'adaptive', "
                f"got {name!r}"
            )
        return adaptive_policy() if name == "adaptive" else default_policy()

    def _resolve_network(self):
        if self._network is not None:
            return self._network, True
        loss = float(self.spec.faults.loss)
        if loss > 0.0:
            from repro.distributed.network import LossyNetwork

            return LossyNetwork(loss), True
        return None, False

    def _run_distributed(self):
        spec = self.spec
        if spec.durability.durable:
            return execute_durable(
                "chaos",
                spec.durability.checkpoint_dir,
                spec.durable_identity(),
                seed=spec.market.seed,
                recorder=self.recorder,
                inject_stall_after=spec.durability.inject_stall_after,
            )
        policy = self._resolve_policy()
        network, reliable = self._resolve_network()
        schedule = (
            self._fault_schedule
            if self._fault_schedule is not None
            else spec.faults.build_schedule()
        )
        return execute_distributed(
            self.market,
            policy=policy,
            network=network,
            seed=spec.market.seed,
            max_slots=int(spec.engine.options.get("max_slots", 1_000_000)),
            reliable_transport=reliable,
            initial_matching=self._initial_matching,
            recorder=self.recorder,
            fault_schedule=schedule,
            deadline_slots=spec.faults.deadline_slots,
            on_timeout=spec.faults.on_timeout,
        )

    def _run_swaps(self):
        from repro.core.swap_extension import coordinated_swaps

        result = execute_two_stage(self.market, record_trace=False)
        return coordinated_swaps(self.market, result.matching)

    def _run_dynamic(self):
        spec = self.spec
        workload = spec.market.workload
        if spec.durability.durable:
            return execute_durable(
                "dynamic",
                spec.durability.checkpoint_dir,
                spec.durable_identity(),
                seed=spec.market.seed,
                recorder=self.recorder,
                inject_stall_after=spec.durability.inject_stall_after,
            )
        from repro.dynamic.generator import DynamicMarketGenerator
        from repro.dynamic.online import OnlineMatcher, RematchStrategy

        strategies = (
            list(RematchStrategy)
            if workload.strategy == "both"
            else [RematchStrategy(workload.strategy)]
        )
        results = {}
        for strategy in strategies:
            generator = DynamicMarketGenerator(
                num_channels=spec.market.sellers,
                initial_buyers=spec.market.buyers,
                arrival_rate=workload.arrival_rate,
                departure_prob=workload.departure_prob,
                drift_sigma=workload.drift,
                rng=np.random.default_rng(spec.market.seed),
            )
            matcher = OnlineMatcher(strategy, recorder=self.recorder)
            results[strategy] = execute_online_run(
                matcher, generator.epochs(workload.epochs)
            )
        return results

    def _run_figure(self):
        from repro.analysis.paper_figures import figure_spec, run_figure

        spec = self.spec
        options = spec.engine.options
        figure = int(spec.command[3])
        fig_spec = figure_spec(figure, options.get("panel", "a"))
        return run_figure(
            fig_spec,
            repetitions=options.get("repetitions"),
            seed=spec.market.seed,
            recorder=self.recorder,
            jobs=spec.parallel.jobs,
        )
