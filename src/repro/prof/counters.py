"""Deterministic kernel cost counters: profiling's machine-independent half.

The hot kernels (:mod:`repro.interference.bitset`,
:mod:`repro.core.soa`, the scalar Stage-I pool cache in
:mod:`repro.core.deferred_acceptance`) each accumulate operation counts
-- heap pops, popcount words, reduceat rows, cache deltas -- into a
module-level ``COST_COUNTERS`` dict as plain integer adds, a cost small
enough to leave on unconditionally.  This module is the single consumer:
it resets the providers before a profiled region, snapshots them after,
and (only then) emits the counts through the metrics registry.

Because two same-seed runs execute the identical operation sequence,
their snapshots must be *equal* -- any drift is an algorithmic change,
never hardware noise.  That property is what ``repro profile diff`` and
the perf gate's attribution diff are built on.

Counter naming follows ``component.noun_ops`` (e.g.
``bitset.heap_pop_ops``, ``soa.reduceat_row_ops``).
"""

from __future__ import annotations

import importlib
from typing import Dict, List

__all__ = [
    "reset_cost_counters",
    "snapshot_cost_counters",
    "flush_cost_counters",
]

#: (module, attribute) pairs exposing a ``Dict[str, int]`` of counters.
#: Imported lazily so merely importing :mod:`repro.prof` never drags the
#: numpy-backed kernels in.
_PROVIDERS = (
    ("repro.interference.bitset", "COST_COUNTERS"),
    ("repro.core.soa", "COST_COUNTERS"),
    ("repro.core.deferred_acceptance", "COST_COUNTERS"),
)


def _provider_dicts() -> List[Dict[str, int]]:
    return [
        getattr(importlib.import_module(module_name), attribute)
        for module_name, attribute in _PROVIDERS
    ]


def reset_cost_counters() -> None:
    """Zero every kernel cost counter (call before a profiled region)."""
    for counters in _provider_dicts():
        for name in counters:
            counters[name] = 0


def snapshot_cost_counters() -> Dict[str, int]:
    """All kernel cost counters as one sorted ``{name: count}`` dict."""
    merged: Dict[str, int] = {}
    for counters in _provider_dicts():
        merged.update(counters)
    return dict(sorted(merged.items()))


def flush_cost_counters(metrics=None) -> Dict[str, int]:
    """Snapshot the cost counters, emitting them through ``metrics``.

    ``metrics`` is a :class:`~repro.obs.metrics.MetricsRegistry` (or the
    null registry, or ``None``).  Zero-valued counters are not emitted,
    so a run that never touched a kernel leaves the registry untouched.
    Returns the full snapshot either way.
    """
    snapshot = snapshot_cost_counters()
    if metrics is not None and getattr(metrics, "enabled", False):
        for name, value in snapshot.items():
            if value:
                metrics.counter(name).inc(value)
    return snapshot
