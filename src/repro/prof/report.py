"""Profile artifacts: write, load, diff and summarise.

The on-disk product of a profiled run is a directory holding

* ``profile.json`` -- the attribution payload (span table, function
  table, allocation table, deterministic cost counters, meta);
* ``profile.collapsed`` -- flamegraph-ready collapsed span stacks;
* ``profile.speedscope.json`` -- the same tree as a speedscope profile.

``repro profile diff`` compares two payloads: wall-time deltas per span
are reported informationally (timings are hardware-dependent), while
any deterministic-counter drift is an *algorithmic* difference and
makes the diff fail.  ``repro profile top`` renders the tables.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

from repro.errors import ObservabilityError
from repro.ioutil import atomic_write_json, atomic_write_text

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "PROFILE_JSON",
    "PROFILE_COLLAPSED",
    "PROFILE_SPEEDSCOPE",
    "write_profile",
    "load_profile",
    "diff_profiles",
    "format_diff",
    "format_top",
]

#: Bump when the profile.json layout changes incompatibly.
PROFILE_SCHEMA_VERSION = 1

PROFILE_JSON = "profile.json"
PROFILE_COLLAPSED = "profile.collapsed"
PROFILE_SPEEDSCOPE = "profile.speedscope.json"


def write_profile(
    directory: str,
    payload: Dict[str, Any],
    span_events: List[Dict[str, Any]],
) -> Dict[str, str]:
    """Atomically write the three profile artifacts; return their paths."""
    from repro.trace.export import to_collapsed, to_speedscope

    os.makedirs(directory, exist_ok=True)
    paths = {
        "profile": os.path.join(directory, PROFILE_JSON),
        "collapsed": os.path.join(directory, PROFILE_COLLAPSED),
        "speedscope": os.path.join(directory, PROFILE_SPEEDSCOPE),
    }
    atomic_write_json(paths["profile"], payload, indent=2)
    atomic_write_text(paths["collapsed"], to_collapsed(span_events))
    atomic_write_json(
        paths["speedscope"], to_speedscope(span_events), indent=2
    )
    return paths


def load_profile(path: str) -> Dict[str, Any]:
    """Load a ``profile.json`` (``path`` may be the file or its dir)."""
    if os.path.isdir(path):
        path = os.path.join(path, PROFILE_JSON)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot read profile {path!r}: {exc}")
    if not isinstance(payload, dict) or "schema" not in payload:
        raise ObservabilityError(f"{path!r} is not a profile.json artifact")
    version = payload["schema"]
    if not isinstance(version, int) or version > PROFILE_SCHEMA_VERSION:
        raise ObservabilityError(
            f"profile schema {version!r} is newer than this library "
            f"understands (max {PROFILE_SCHEMA_VERSION})"
        )
    return payload


def diff_profiles(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, List[Dict[str, Any]]]:
    """Structured diff of two profile payloads.

    ``counter_drift`` rows are the deterministic verdict: any entry
    means the two runs executed *different algorithms* (or different
    inputs), not different hardware.  ``span_deltas`` rows are the
    wall-time movement per span name, informational only.
    """
    drift: List[Dict[str, Any]] = []
    counters_a = a.get("counters", {})
    counters_b = b.get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        va = int(counters_a.get(name, 0))
        vb = int(counters_b.get(name, 0))
        if va != vb:
            drift.append({"counter": name, "a": va, "b": vb})
    spans_a = {row["name"]: row for row in a.get("spans", [])}
    spans_b = {row["name"]: row for row in b.get("spans", [])}
    deltas: List[Dict[str, Any]] = []
    for name in sorted(set(spans_a) | set(spans_b)):
        wall_a = float(spans_a.get(name, {}).get("wall_s", 0.0))
        wall_b = float(spans_b.get(name, {}).get("wall_s", 0.0))
        deltas.append({"name": name, "a_wall_s": wall_a, "b_wall_s": wall_b})
    return {"counter_drift": drift, "span_deltas": deltas}


def format_diff(diff: Dict[str, List[Dict[str, Any]]]) -> List[str]:
    """Human-readable lines for a :func:`diff_profiles` result."""
    lines: List[str] = []
    for row in diff["counter_drift"]:
        va, vb = row["a"], row["b"]
        change = f"{vb / va - 1.0:+.1%}" if va else "new"
        lines.append(
            f"COUNTER DRIFT {row['counter']}: {va} -> {vb} ({change}) "
            f"-- algorithmic difference, not noise"
        )
    if not diff["counter_drift"]:
        lines.append("counters identical: the runs executed the same "
                     "operation sequence")
    for row in diff["span_deltas"]:
        wall_a, wall_b = row["a_wall_s"], row["b_wall_s"]
        if wall_a <= 0.0 and wall_b <= 0.0:
            continue
        change = (
            f"{wall_b / wall_a - 1.0:+.1%}" if wall_a > 0.0 else "new"
        )
        lines.append(
            f"span {row['name']}: {wall_a:.6f}s -> {wall_b:.6f}s ({change})"
        )
    return lines


def format_top(
    payload: Dict[str, Any], limit: int = 10, section: str = "spans"
) -> List[str]:
    """Render one table of a profile payload, most expensive first.

    ``section`` is ``spans`` (sorted by self time -- the dominant phase
    leads), ``functions`` (cProfile self time) or ``allocs``
    (tracemalloc site size).
    """
    if section == "spans":
        rows = payload.get("spans", [])[:limit]
        if not rows:
            return ["(no spans recorded)"]
        lines = [
            f"{'span':<28} {'count':>7} {'self_s':>10} "
            f"{'wall_s':>10} {'cpu_s':>10}"
        ]
        for row in rows:
            lines.append(
                f"{row['name']:<28} {row['count']:>7} "
                f"{row['self_s']:>10.6f} {row['wall_s']:>10.6f} "
                f"{row['cpu_s']:>10.6f}"
            )
        return lines
    if section == "functions":
        rows = payload.get("functions", [])[:limit]
        if not rows:
            return ["(no cProfile data; enable profile.cprofile)"]
        lines = [f"{'function':<48} {'calls':>9} {'self_s':>10} {'cum_s':>10}"]
        for row in rows:
            lines.append(
                f"{row['function']:<48} {row['calls']:>9} "
                f"{row['self_s']:>10.6f} {row['cum_s']:>10.6f}"
            )
        return lines
    if section == "allocs":
        rows = payload.get("allocs", [])[:limit]
        if not rows:
            return ["(no tracemalloc data; enable profile.memory)"]
        lines = [f"{'site':<48} {'size_kb':>10} {'count':>9}"]
        for row in rows:
            lines.append(
                f"{row['site']:<48} {row['size_kb']:>10.1f} "
                f"{row['count']:>9}"
            )
        return lines
    raise ObservabilityError(
        f"unknown profile section {section!r} "
        f"(choose spans, functions or allocs)"
    )
