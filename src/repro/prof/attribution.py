"""Attribution tables: spans, functions and allocation sites as rows.

Pure functions turning the three raw profile sources -- the recorder's
:class:`~repro.obs.spans.SpanRecord` list, a :mod:`pstats` statistics
mapping and a :mod:`tracemalloc` snapshot -- into plain, JSON-ready row
dicts sorted most-expensive-first.  The collector assembles them into
the ``profile.json`` artifact; ``repro profile top`` renders them.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Sequence

__all__ = ["span_table", "function_table", "alloc_table"]


def span_table(records: Sequence[Any]) -> List[Dict[str, Any]]:
    """Aggregate span records by name into attributed phase rows.

    Each row carries ``count``, total ``wall_s``/``cpu_s`` and
    ``self_s`` -- wall time minus the wall time of *direct* children --
    so the dominant leaf phase is visible without any export.  Rows are
    sorted by descending self time, ties by name.
    """
    child_wall: Dict[int, float] = {}
    for record in records:
        if record.parent >= 0:
            child_wall[record.parent] = (
                child_wall.get(record.parent, 0.0) + record.wall_s
            )
    rows: Dict[str, Dict[str, Any]] = {}
    for record in records:
        row = rows.setdefault(
            record.name,
            {"name": record.name, "count": 0, "wall_s": 0.0,
             "cpu_s": 0.0, "self_s": 0.0},
        )
        row["count"] += 1
        row["wall_s"] += record.wall_s
        row["cpu_s"] += record.cpu_s
        row["self_s"] += max(
            record.wall_s - child_wall.get(record.index, 0.0), 0.0
        )
    return sorted(rows.values(), key=lambda r: (-r["self_s"], r["name"]))


def function_table(stats: Any, top: int = 20) -> List[Dict[str, Any]]:
    """Top functions from a :class:`pstats.Stats` by self (tottime).

    ``stats`` is the ``Stats.stats`` mapping: ``{(file, line, func):
    (cc, nc, tt, ct, callers)}``.  Sites are rendered as
    ``basename:line:func`` to stay readable and machine-portable.
    """
    rows: List[Dict[str, Any]] = []
    for (filename, lineno, funcname), value in stats.items():
        _cc, ncalls, tottime, cumtime = value[0], value[1], value[2], value[3]
        rows.append(
            {
                "function": f"{os.path.basename(filename)}:{lineno}:{funcname}",
                "calls": int(ncalls),
                "self_s": float(tottime),
                "cum_s": float(cumtime),
            }
        )
    rows.sort(key=lambda r: (-r["self_s"], r["function"]))
    return rows[:top]


def alloc_table(snapshot: Any, top: int = 20) -> List[Dict[str, Any]]:
    """Top allocation sites from a :class:`tracemalloc.Snapshot`.

    The profiler's own machinery (cProfile call records, tracemalloc
    bookkeeping) allocates too; those frames are filtered out so the
    table attributes memory to the *measured* run only.
    """
    import tracemalloc

    snapshot = snapshot.filter_traces(
        [
            tracemalloc.Filter(False, "*cProfile*"),
            tracemalloc.Filter(False, "*tracemalloc*"),
            tracemalloc.Filter(False, "*repro/prof/*"),
        ]
    )
    rows: List[Dict[str, Any]] = []
    for stat in snapshot.statistics("lineno"):
        frame = stat.traceback[0]
        rows.append(
            {
                "site": f"{os.path.basename(frame.filename)}:{frame.lineno}",
                "size_kb": round(stat.size / 1024.0, 1),
                "count": int(stat.count),
            }
        )
    rows.sort(key=lambda r: (-r["size_kb"], r["site"]))
    return rows[:top]
