"""The stdlib profiler harness: cProfile + tracemalloc behind a spec.

:class:`Profiler` is the run-scoped driver the Session layer and CLI
install when ``ProfileSpec.enabled`` (i.e. ``--profile-out DIR`` was
passed).  It is a context manager around the profiled region:

* on entry it zeroes the deterministic kernel cost counters and starts
  the drivers the spec asks for (``cprofile`` for wall/CPU function
  attribution, ``memory`` for tracemalloc allocation sites);
* on exit it stops the drivers, snapshots the cost counters (emitting
  them through the recorder's metrics registry, where one is live),
  and assembles the attribution payload from the recorder's span
  records plus the driver outputs;
* :meth:`write` persists the three artifacts -- ``profile.json``,
  ``profile.collapsed``, ``profile.speedscope.json`` -- atomically
  into the spec's output directory.

With the spec disabled none of this runs: no counter is flushed, no
driver starts, and the run is byte-identical to an unprofiled one.
"""

from __future__ import annotations

import cProfile
import platform
import pstats
from typing import Any, Dict, List, Optional

from repro.prof.attribution import alloc_table, function_table, span_table
from repro.prof.counters import flush_cost_counters, reset_cost_counters
from repro.prof.report import PROFILE_SCHEMA_VERSION, write_profile

__all__ = ["Profiler", "span_events_from_records"]


def span_events_from_records(records) -> List[Dict[str, Any]]:
    """Span records as trace-shaped span event dicts (records order)."""
    return [
        {
            "event": "span",
            "name": record.name,
            "depth": record.depth,
            "parent": record.parent,
            "wall_s": round(record.wall_s, 9),
            "cpu_s": round(record.cpu_s, 9),
            "start_s": round(record.start_s, 9),
        }
        for record in records
    ]


class Profiler:
    """One profiled region: start drivers, collect, write artifacts."""

    def __init__(self, spec, recorder, meta: Optional[Dict[str, Any]] = None):
        self.spec = spec
        self.recorder = recorder
        self.meta = dict(meta or {})
        self.payload: Optional[Dict[str, Any]] = None
        self._span_events: List[Dict[str, Any]] = []
        self._cprofile: Optional[cProfile.Profile] = None
        self._started_tracemalloc = False

    # ------------------------------------------------------------------
    def start(self) -> "Profiler":
        reset_cost_counters()
        if self.spec.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        if self.spec.cprofile:
            self._cprofile = cProfile.Profile()
            self._cprofile.enable()
        return self

    def stop(self) -> Dict[str, Any]:
        """Stop the drivers and assemble the attribution payload."""
        functions: List[Dict[str, Any]] = []
        if self._cprofile is not None:
            self._cprofile.disable()
            stats = pstats.Stats(self._cprofile)
            functions = function_table(stats.stats, top=self.spec.top)
            self._cprofile = None
        allocs: List[Dict[str, Any]] = []
        if self.spec.memory:
            import tracemalloc

            if tracemalloc.is_tracing():
                allocs = alloc_table(
                    tracemalloc.take_snapshot(), top=self.spec.top
                )
                if self._started_tracemalloc:
                    tracemalloc.stop()
                    self._started_tracemalloc = False
        counters = flush_cost_counters(self.recorder.metrics)
        records = list(getattr(self.recorder.spans, "records", ()))
        self._span_events = span_events_from_records(records)
        self.payload = {
            "schema": PROFILE_SCHEMA_VERSION,
            "meta": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                **self.meta,
            },
            "spans": span_table(records),
            "functions": functions,
            "allocs": allocs,
            "counters": counters,
        }
        return self.payload

    def write(self) -> Dict[str, str]:
        """Persist the artifacts into ``spec.profile_out``; return paths."""
        if self.payload is None:
            raise RuntimeError("Profiler.write() before stop()")
        return write_profile(
            self.spec.profile_out, self.payload, self._span_events
        )

    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
        if exc_type is None and self.spec.profile_out is not None:
            self.write()
