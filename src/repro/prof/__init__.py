"""Profiling & performance attribution, layered on the recorder stack.

Null by default: nothing here runs unless a run's
:class:`~repro.run.spec.ProfileSpec` is enabled (``--profile-out DIR``),
and a run with profiling disabled is byte-identical -- trace and
metrics -- to one executed before this package existed.

Three layers:

* :mod:`repro.prof.counters` -- deterministic kernel cost counters
  (machine-independent operation counts; equal across same-seed runs);
* :mod:`repro.prof.collector` -- the stdlib cProfile + tracemalloc
  harness producing per-span attributed wall/CPU/alloc tables;
* :mod:`repro.prof.report` -- the ``profile.json`` /
  ``profile.collapsed`` / ``profile.speedscope.json`` artifacts and
  their diff/top renderers (behind ``repro profile``).
"""

from repro.prof.attribution import alloc_table, function_table, span_table
from repro.prof.collector import Profiler, span_events_from_records
from repro.prof.counters import (
    flush_cost_counters,
    reset_cost_counters,
    snapshot_cost_counters,
)
from repro.prof.report import (
    PROFILE_COLLAPSED,
    PROFILE_JSON,
    PROFILE_SCHEMA_VERSION,
    PROFILE_SPEEDSCOPE,
    diff_profiles,
    format_diff,
    format_top,
    load_profile,
    write_profile,
)

__all__ = [
    "PROFILE_COLLAPSED",
    "PROFILE_JSON",
    "PROFILE_SCHEMA_VERSION",
    "PROFILE_SPEEDSCOPE",
    "Profiler",
    "alloc_table",
    "diff_profiles",
    "flush_cost_counters",
    "format_diff",
    "format_top",
    "function_table",
    "load_profile",
    "reset_cost_counters",
    "snapshot_cost_counters",
    "span_events_from_records",
    "span_table",
    "write_profile",
]
