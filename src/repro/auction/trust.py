"""TRUST-style truthful double auction for spectrum (Zhou & Zheng [16]).

TRUST extends McAfee's double auction to spectrum markets where
non-interfering buyers may *share* one channel.  This implementation
covers homogeneous channels (one interference graph -- TRUST's own
setting; the paper's reference [16]):

1. **Bid-independent grouping.**  Buyers are partitioned into
   independent sets of the interference graph using a deterministic
   first-fit rule over buyer ids.  Using anything bid-dependent here
   would break truthfulness, which is why the groups can be (and often
   are) smaller than the best weighted independent sets a matching
   mechanism can form -- the root of the welfare gap this repository
   quantifies.
2. **Group bidding.**  Group ``g`` bids ``pi_g = |g| * min bid in g``
   (the uniform price all members are willing to pay, scaled by size).
3. **McAfee between groups and sellers.**  Group bids play the buyer
   side, channel asks the seller side, of
   :func:`~repro.auction.mcafee.mcafee_double_auction`.
4. **Sharing.**  Every member of a winning group gets access to the
   group's channel and pays an equal share of the group's clearing
   price; the channel's seller receives the McAfee seller price.

Properties (tested): truthful for buyers and sellers, individually
rational (a member's share never exceeds her group's minimum bid), and
weakly budget balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.auction.mcafee import McAfeeOutcome, mcafee_double_auction
from repro.errors import SolverError
from repro.interference.graph import InterferenceGraph

__all__ = ["TrustOutcome", "form_groups_first_fit", "trust_spectrum_auction"]


@dataclass(frozen=True)
class TrustOutcome:
    """Result of one TRUST spectrum auction.

    Attributes
    ----------
    groups:
        The bid-independent buyer partition (tuples of buyer ids).
    group_bids:
        ``pi_g`` for each group, aligned with ``groups``.
    winning_groups:
        Indices into ``groups`` of the groups that won a channel.
    channel_of_group:
        ``{group_index: channel}`` for the winners.
    buyer_payment:
        Per-buyer payment (zero for losers).
    seller_revenue:
        Per-channel revenue (zero for unsold channels).
    mcafee:
        The underlying group-level McAfee outcome.
    """

    groups: Tuple[Tuple[int, ...], ...]
    group_bids: Tuple[float, ...]
    winning_groups: Tuple[int, ...]
    channel_of_group: Dict[int, int]
    buyer_payment: Tuple[float, ...]
    seller_revenue: Tuple[float, ...]
    mcafee: McAfeeOutcome

    def winning_buyers(self) -> List[int]:
        """All buyers granted channel access, ascending."""
        winners: List[int] = []
        for group_index in self.winning_groups:
            winners.extend(self.groups[group_index])
        return sorted(winners)

    def buyer_welfare(self, values: Sequence[float]) -> float:
        """Sum of winning buyers' true values (the paper's welfare)."""
        return sum(values[j] for j in self.winning_buyers())

    def buyer_utility(self, buyer: int, value: float) -> float:
        """Realised quasi-linear utility of one buyer."""
        if buyer in self.winning_buyers():
            return value - self.buyer_payment[buyer]
        return 0.0

    def seller_utility(self, channel: int, cost: float) -> float:
        """Realised utility of one channel's seller."""
        if self.seller_revenue[channel] > 0.0:
            return self.seller_revenue[channel] - cost
        return 0.0


def form_groups_first_fit(graph: InterferenceGraph) -> List[List[int]]:
    """Partition buyers into independent sets, bid-independently.

    First-fit over ascending buyer ids: each buyer joins the earliest
    group she does not conflict with, else opens a new group.  This is
    exactly greedy graph colouring, so the number of groups is at most
    ``max_degree + 1``.
    """
    groups: List[List[int]] = []
    for buyer in range(graph.num_buyers):
        placed = False
        for group in groups:
            if not graph.conflicts_with_set(buyer, group):
                group.append(buyer)
                placed = True
                break
        if not placed:
            groups.append([buyer])
    return groups


def trust_spectrum_auction(
    values: Sequence[float],
    graph: InterferenceGraph,
    asks: Sequence[float],
) -> TrustOutcome:
    """Run the TRUST auction.

    Parameters
    ----------
    values:
        Reported per-buyer valuations (bids), length ``N``; under
        truthfulness these equal true values.
    graph:
        The (homogeneous) interference graph over the ``N`` buyers.
    asks:
        Reported per-channel seller asks, length ``M``.
    """
    if len(values) != graph.num_buyers:
        raise SolverError(
            f"got {len(values)} bids for {graph.num_buyers} buyers"
        )
    if any(v < 0 for v in values) or any(a < 0 for a in asks):
        raise SolverError("bids and asks must be non-negative")

    groups = [tuple(g) for g in form_groups_first_fit(graph)]
    group_bids = tuple(
        len(group) * min(values[j] for j in group) for group in groups
    )

    mcafee = mcafee_double_auction(group_bids, asks)

    channel_of_group: Dict[int, int] = {}
    for group_index, channel in zip(mcafee.winning_buyers, mcafee.winning_sellers):
        channel_of_group[group_index] = channel

    buyer_payment = [0.0] * len(values)
    seller_revenue = [0.0] * len(asks)
    for group_index, channel in channel_of_group.items():
        members = groups[group_index]
        share = mcafee.buyer_price / len(members)
        for j in members:
            buyer_payment[j] = share
        seller_revenue[channel] = mcafee.seller_price

    return TrustOutcome(
        groups=groups,
        group_bids=group_bids,
        winning_groups=tuple(sorted(channel_of_group)),
        channel_of_group=channel_of_group,
        buyer_payment=tuple(buyer_payment),
        seller_revenue=tuple(seller_revenue),
        mcafee=mcafee,
    )
