"""McAfee's double auction (J. Economic Theory, 1992).

The canonical mechanism for two-sided markets with unit supply and
demand, and the engine under the spectrum double auctions the paper cites
(TRUST [16] and descendants).  Properties, all enforced by the tests:

* **dominant-strategy truthfulness** for every buyer and seller;
* **individual rationality** -- no trader pays more / receives less than
  her report;
* **weak budget balance** -- the auctioneer never subsidises trade;
* **asymptotic efficiency** -- at most one efficient trade is sacrificed.

Mechanism.  Sort bids descending (``b_1 >= b_2 >= ...``) and asks
ascending; let ``k`` be the largest index with ``b_k >= s_k`` (the
efficient trade count).  Try the mid-price ``p0 = (b_{k+1} + s_{k+1})/2``:
if it clears the first ``k`` pairs (``s_k <= p0 <= b_k``), all ``k``
trade at ``p0`` with exact budget balance.  Otherwise the ``k``-th pair is
sacrificed: ``k - 1`` pairs trade, buyers pay ``b_k``, sellers receive
``s_k``, and the auctioneer keeps the non-negative spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SolverError

__all__ = ["McAfeeOutcome", "mcafee_double_auction"]


@dataclass(frozen=True)
class McAfeeOutcome:
    """Result of one McAfee double auction.

    Attributes
    ----------
    winning_buyers / winning_sellers:
        Original indices of the traders, matched positionally (the i-th
        winning buyer trades with the i-th winning seller).
    buyer_price / seller_price:
        Uniform prices: every winning buyer pays ``buyer_price``; every
        winning seller receives ``seller_price``.  ``buyer_price >=
        seller_price`` always (weak budget balance).
    sacrificed:
        ``True`` when the k-th efficient trade was dropped to keep the
        mechanism truthful.
    """

    winning_buyers: Tuple[int, ...]
    winning_sellers: Tuple[int, ...]
    buyer_price: float
    seller_price: float
    sacrificed: bool

    @property
    def num_trades(self) -> int:
        return len(self.winning_buyers)

    @property
    def auctioneer_surplus(self) -> float:
        """Total spread kept by the market maker (>= 0)."""
        return self.num_trades * (self.buyer_price - self.seller_price)

    def buyer_utility(self, buyer: int, value: float) -> float:
        """Realised utility of a buyer with true ``value``."""
        if buyer in self.winning_buyers:
            return value - self.buyer_price
        return 0.0

    def seller_utility(self, seller: int, cost: float) -> float:
        """Realised utility of a seller with true ``cost``."""
        if seller in self.winning_sellers:
            return self.seller_price - cost
        return 0.0


def mcafee_double_auction(
    bids: Sequence[float], asks: Sequence[float]
) -> McAfeeOutcome:
    """Run the McAfee double auction on unit bids and asks.

    Parameters
    ----------
    bids:
        One bid per buyer (non-negative).
    asks:
        One ask per seller (non-negative).

    Ties are broken deterministically by trader index (earlier index wins
    among equal bids; earlier index trades first among equal asks).
    """
    if any(b < 0 for b in bids) or any(a < 0 for a in asks):
        raise SolverError("bids and asks must be non-negative")

    buyer_order = sorted(range(len(bids)), key=lambda j: (-bids[j], j))
    seller_order = sorted(range(len(asks)), key=lambda i: (asks[i], i))
    sorted_bids = [bids[j] for j in buyer_order]
    sorted_asks = [asks[i] for i in seller_order]

    max_pairs = min(len(sorted_bids), len(sorted_asks))
    k = 0
    while k < max_pairs and sorted_bids[k] >= sorted_asks[k]:
        k += 1
    if k == 0:
        return McAfeeOutcome(
            winning_buyers=(),
            winning_sellers=(),
            buyer_price=0.0,
            seller_price=0.0,
            sacrificed=False,
        )

    if k < max_pairs:
        mid = (sorted_bids[k] + sorted_asks[k]) / 2.0
        if sorted_asks[k - 1] <= mid <= sorted_bids[k - 1]:
            return McAfeeOutcome(
                winning_buyers=tuple(buyer_order[:k]),
                winning_sellers=tuple(seller_order[:k]),
                buyer_price=mid,
                seller_price=mid,
                sacrificed=False,
            )

    # Sacrifice the k-th efficient trade: k-1 pairs trade at (b_k, s_k).
    trades = k - 1
    return McAfeeOutcome(
        winning_buyers=tuple(buyer_order[:trades]),
        winning_sellers=tuple(seller_order[:trades]),
        buyer_price=sorted_bids[k - 1] if trades else 0.0,
        seller_price=sorted_asks[k - 1] if trades else 0.0,
        sacrificed=True,
    )
