"""Double-auction comparators: the mechanism family the paper replaces.

The paper's pitch is that *matching* can redistribute spectrum in a free
market, whereas prior work relied on *double auctions* run by a trusted
auctioneer (Section I, Section VI).  To make that comparison executable,
this subpackage implements the canonical double-auction machinery:

* :mod:`~repro.auction.mcafee` -- McAfee's 1992 dominant-strategy
  truthful, individually rational, weakly budget-balanced double auction
  for unit supply/demand (the engine underneath TRUST [16]).
* :mod:`~repro.auction.trust` -- a faithful TRUST-style spectrum double
  auction for homogeneous channels: bid-independent buyer grouping on the
  interference graph, McAfee between group bids and seller asks, uniform
  clearing-price sharing inside winning groups.

The ``bench_auction`` benchmark and ``examples/matching_vs_auction.py``
compare these against the two-stage matching algorithm on the same
markets: the auction buys truthfulness with sacrificed trades (lower
welfare and fewer matched buyers) *and* still needs the auctioneer, which
is exactly the trade-off the paper's introduction describes.
"""

from repro.auction.mcafee import McAfeeOutcome, mcafee_double_auction
from repro.auction.trust import (
    TrustOutcome,
    form_groups_first_fit,
    trust_spectrum_auction,
)

__all__ = [
    "McAfeeOutcome",
    "mcafee_double_auction",
    "TrustOutcome",
    "form_groups_first_fit",
    "trust_spectrum_auction",
]
