"""Builtin solver adapters: every backend behind the one engine contract.

Each adapter is a thin wrapper translating the canonical
``solve(market, *, recorder, config)`` call into the backend's native
signature and its native result into a
:class:`~repro.engine.report.SolveReport`.  Adapters contain *no*
algorithmic logic -- the backends stay the single source of truth, which
is what keeps registry dispatch byte-identical to direct calls (locked by
``tests/engine/test_parity.py``).

This module is imported lazily by the registry on first lookup; importing
:mod:`repro.engine` alone never pulls in the backend packages.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.two_stage import run_two_stage
from repro.auction.mcafee import mcafee_double_auction
from repro.distributed.protocol import run_distributed_matching
from repro.distributed.transition import adaptive_policy, default_policy
from repro.engine.protocol import Capability
from repro.engine.registry import register_solver
from repro.engine.report import SolveReport, build_bound_report, build_report
from repro.errors import SolverError
from repro.interference.bitset import FAST_KERNELS_ENV
from repro.obs.recorder import Recorder, resolve_recorder, use_recorder
from repro.obs.spans import SpanTracer
from repro.optimal.branch_and_bound import (
    DEFAULT_NODE_BUDGET,
    optimal_matching_branch_and_bound,
)
from repro.optimal.bruteforce import (
    DEFAULT_BRUTEFORCE_STATE_LIMIT,
    optimal_matching_bruteforce,
)
from repro.optimal.college_admission import fixed_quota_deferred_acceptance
from repro.optimal.greedy import greedy_centralized_matching
from repro.optimal.lp_relaxation import lp_relaxation_bound
from repro.optimal.nash_enumeration import price_of_nash_stability
from repro.optimal.random_baseline import random_matching

__all__ = ["SolverAdapter", "BUILTIN_SOLVERS"]


class SolverAdapter:
    """Base class handling the contract plumbing shared by every adapter.

    Subclasses set ``name`` / ``capabilities`` / ``description`` /
    ``config_keys`` and implement ``_solve(market, config, recorder)``
    returning ``(matching_or_bound, status, metadata)``.  The base class
    resolves the recorder, validates config keys, times the backend with
    a span tracer (the span also lands in the ambient recorder as
    ``solve.<name>``), and builds the report through the shared
    validation pipeline.
    """

    name: str = ""
    capabilities: FrozenSet[Capability] = frozenset()
    description: str = ""
    #: Config keys the adapter accepts beyond the shared ``check_stability``.
    config_keys: FrozenSet[str] = frozenset()

    def solve(
        self,
        market: SpectrumMarket,
        *,
        recorder: Optional[Recorder] = None,
        config: Optional[Mapping[str, object]] = None,
    ) -> SolveReport:
        rec = resolve_recorder(recorder)
        cfg: Dict[str, object] = dict(config) if config else {}
        check_stability = bool(cfg.pop("check_stability", False))
        unknown = set(cfg) - self.config_keys
        if unknown:
            accepted = sorted(self.config_keys | {"check_stability"})
            raise SolverError(
                f"solver {self.name!r} got unknown config key(s) "
                f"{sorted(unknown)}; accepted: {accepted}"
            )
        timer = SpanTracer()
        # Install the resolved recorder as the ambient one for the
        # backend's duration: backends that resolve it themselves (most
        # of the registry) then observe an *explicitly passed* recorder
        # too, so `solve --solver NAME --trace-out` works for every
        # backend, not just the ones whose native signature takes one.
        with use_recorder(rec):
            with rec.span(f"solve.{self.name}"):
                with timer.span(self.name):
                    outcome, status, metadata = self._solve(market, cfg, rec)
        timing = timer.records[-1]
        trace_path = getattr(rec.events, "path", None)
        if isinstance(outcome, Matching):
            report = build_report(
                self.name,
                market,
                outcome,
                wall_time_s=timing.wall_s,
                cpu_time_s=timing.cpu_s,
                check_stability=check_stability,
                status=status,
                metadata=metadata,
                trace_path=trace_path,
            )
        else:
            report = build_bound_report(
                self.name,
                market,
                float(outcome),
                wall_time_s=timing.wall_s,
                cpu_time_s=timing.cpu_s,
                metadata=metadata,
                trace_path=trace_path,
            )
        if rec.enabled:
            rec.emit(
                "engine.solve",
                solver=self.name,
                status=report.status,
                social_welfare=report.social_welfare,
                matched=report.num_matched,
                wall_s=report.wall_time_s,
            )
            metrics = rec.metrics
            if metrics.enabled:
                metrics.counter(f"engine.solve.{self.name}").inc()
                metrics.gauge(f"engine.welfare.{self.name}").set(
                    report.social_welfare
                )
        return report

    def _solve(
        self,
        market: SpectrumMarket,
        config: Dict[str, object],
        recorder: Recorder,
    ) -> Tuple[object, str, Optional[Dict[str, object]]]:
        raise NotImplementedError


class TwoStageSolver(SolverAdapter):
    name = "two_stage"
    capabilities = frozenset({Capability.HEURISTIC})
    description = (
        "The paper's two-stage algorithm: deferred acceptance (Alg. 1) "
        "then transfer-and-invitation (Alg. 2)"
    )
    config_keys = frozenset({"record_trace", "monotone_guard", "fast_kernels"})

    def _solve(self, market, config, recorder):
        record_trace = bool(config.get("record_trace", False))
        monotone_guard = bool(config.get("monotone_guard", True))
        fast_kernels = config.get("fast_kernels")  # None = honour the env

        def run():
            return run_two_stage(
                market,
                record_trace=record_trace,
                monotone_guard=monotone_guard,
                recorder=recorder,
            )

        if fast_kernels is None:
            result = run()
        else:
            previous = os.environ.get(FAST_KERNELS_ENV)
            os.environ[FAST_KERNELS_ENV] = "1" if fast_kernels else "0"
            try:
                result = run()
            finally:
                if previous is None:
                    os.environ.pop(FAST_KERNELS_ENV, None)
                else:
                    os.environ[FAST_KERNELS_ENV] = previous
        metadata = {
            "welfare_stage1": result.welfare_stage1,
            "welfare_phase1": result.welfare_phase1,
            "welfare_phase2": result.welfare_phase2,
            "rounds_stage1": result.rounds_stage1,
            "rounds_phase1": result.rounds_phase1,
            "rounds_phase2": result.rounds_phase2,
            "total_rounds": result.total_rounds,
        }
        return result.matching, "ok", metadata


class BruteforceSolver(SolverAdapter):
    name = "bruteforce"
    capabilities = frozenset({Capability.EXACT})
    description = "Exhaustive optimal matching (the paper's footnote-4 benchmark)"
    config_keys = frozenset({"state_limit"})

    def _solve(self, market, config, recorder):
        state_limit = int(
            config.get("state_limit", DEFAULT_BRUTEFORCE_STATE_LIMIT)
        )
        return optimal_matching_bruteforce(market, state_limit), "ok", None


class BranchAndBoundSolver(SolverAdapter):
    name = "branch_and_bound"
    capabilities = frozenset({Capability.EXACT})
    description = "Exact optimal matching via branch and bound with pruning"
    config_keys = frozenset({"node_budget"})

    def _solve(self, market, config, recorder):
        node_budget = int(config.get("node_budget", DEFAULT_NODE_BUDGET))
        return optimal_matching_branch_and_bound(market, node_budget), "ok", None


class GreedySolver(SolverAdapter):
    name = "greedy"
    capabilities = frozenset({Capability.HEURISTIC})
    description = "Centralised greedy baseline (highest price first)"

    def _solve(self, market, config, recorder):
        return greedy_centralized_matching(market), "ok", None


class LpBoundSolver(SolverAdapter):
    name = "lp_bound"
    capabilities = frozenset({Capability.BOUND_ONLY})
    description = (
        "LP-relaxation upper bound on the optimum (no matching produced)"
    )

    def _solve(self, market, config, recorder):
        bound = lp_relaxation_bound(market)
        return bound, "ok", {"bound": bound}


class RandomSolver(SolverAdapter):
    name = "random"
    capabilities = frozenset({Capability.HEURISTIC})
    description = "Random feasible matching baseline (seeded)"
    config_keys = frozenset({"seed"})

    def _solve(self, market, config, recorder):
        seed = config.get("seed", 0)
        rng = np.random.default_rng(seed)
        return random_matching(market, rng), "ok", None


class CollegeAdmissionSolver(SolverAdapter):
    name = "college_admission"
    capabilities = frozenset({Capability.HEURISTIC})
    description = (
        "Classic fixed-quota deferred acceptance with feasibility repair"
    )
    config_keys = frozenset({"quota", "repair"})

    def _solve(self, market, config, recorder):
        quota = int(config.get("quota", 1))
        repair = bool(config.get("repair", True))
        matching = fixed_quota_deferred_acceptance(market, quota, repair=repair)
        return matching, "ok", {"quota": quota, "repair": repair}


class NashEnumerationSolver(SolverAdapter):
    name = "nash_enumeration"
    capabilities = frozenset({Capability.EXACT})
    description = (
        "Exhaustive enumeration: best Nash-stable matching plus the price "
        "of stability"
    )
    config_keys = frozenset({"state_limit"})

    def _solve(self, market, config, recorder):
        state_limit = int(
            config.get("state_limit", DEFAULT_BRUTEFORCE_STATE_LIMIT)
        )
        ratio, best_stable = price_of_nash_stability(market, state_limit)
        return best_stable, "ok", {"price_of_nash_stability": ratio}


class McAfeeSolver(SolverAdapter):
    name = "mcafee"
    capabilities = frozenset({Capability.HEURISTIC})
    description = (
        "McAfee 1992 truthful double auction (unit demand; faithful on "
        "homogeneous-channel markets)"
    )
    config_keys = frozenset({"asks"})

    def _solve(self, market, config, recorder):
        utilities = market.utilities
        # Unit-demand reduction: each buyer bids her best channel value
        # (identical across channels on the homogeneous markets the
        # auction literature assumes); sellers ask their reserve prices.
        bids = [max(0.0, float(utilities[j].max())) for j in range(market.num_buyers)]
        asks_cfg = config.get("asks")
        if asks_cfg is None:
            asks = [0.0] * market.num_channels
        else:
            asks = [float(a) for a in asks_cfg]  # type: ignore[union-attr]
            if len(asks) != market.num_channels:
                raise SolverError(
                    f"mcafee 'asks' needs one ask per channel "
                    f"({market.num_channels}), got {len(asks)}"
                )
        outcome = mcafee_double_auction(bids, asks)
        matching = Matching(market.num_channels, market.num_buyers)
        for buyer, channel in zip(outcome.winning_buyers, outcome.winning_sellers):
            matching.match(buyer, channel)
        metadata = {
            "buyer_price": outcome.buyer_price,
            "seller_price": outcome.seller_price,
            "sacrificed": outcome.sacrificed,
            "num_trades": outcome.num_trades,
            "auctioneer_surplus": outcome.auctioneer_surplus,
        }
        return matching, "ok", metadata


class DistributedSolver(SolverAdapter):
    name = "distributed"
    capabilities = frozenset({Capability.HEURISTIC, Capability.DECENTRALIZED})
    description = (
        "Section-IV message-passing runtime with local stage-transition "
        "rules (optionally faulty/lossy)"
    )
    config_keys = frozenset(
        {
            "policy",
            "network",
            "seed",
            "max_slots",
            "reliable_transport",
            "retransmit_interval",
            "fault_schedule",
            "deadline_slots",
            "on_timeout",
        }
    )
    _POLICIES = {"default": default_policy, "adaptive": adaptive_policy}

    def _solve(self, market, config, recorder):
        policy = config.get("policy")
        if isinstance(policy, str):
            try:
                policy = self._POLICIES[policy]()
            except KeyError:
                raise SolverError(
                    f"unknown distributed policy {policy!r}; expected one of "
                    f"{sorted(self._POLICIES)}"
                ) from None
        result = run_distributed_matching(
            market,
            policy=policy,
            network=config.get("network"),
            seed=int(config.get("seed", 0)),
            max_slots=int(config.get("max_slots", 1_000_000)),
            reliable_transport=bool(config.get("reliable_transport", False)),
            retransmit_interval=int(config.get("retransmit_interval", 4)),
            recorder=recorder,
            fault_schedule=config.get("fault_schedule"),
            deadline_slots=config.get("deadline_slots"),
            on_timeout=str(config.get("on_timeout", "raise")),
        )
        metadata = {
            "slots": result.slots,
            "messages_sent": result.messages_sent,
            "messages_delivered": result.messages_delivered,
            "messages_dropped": result.messages_dropped,
            "crashes": result.crashes,
            "restarts": result.restarts,
            "messages_lost_to_crash": result.messages_lost_to_crash,
            "partition_drops": result.partition_drops,
            "view_divergences": result.view_divergences,
        }
        return result.matching, result.status, metadata


#: The builtin adapter instances, in registration order.
BUILTIN_SOLVERS = (
    TwoStageSolver(),
    BruteforceSolver(),
    BranchAndBoundSolver(),
    GreedySolver(),
    LpBoundSolver(),
    RandomSolver(),
    CollegeAdmissionSolver(),
    NashEnumerationSolver(),
    McAfeeSolver(),
    DistributedSolver(),
)

for _solver in BUILTIN_SOLVERS:
    register_solver(_solver, replace=True)
