"""The canonical :class:`SolveReport` returned by every solver.

One frozen result shape for all ten backends: the matching (when the
solver produces one), welfare and per-agent utilities, the feasibility
and stability verdicts from the shared validation pipeline
(:mod:`repro.engine.validation`), wall/CPU timings from the obs span
machinery, and a free-form ``metadata`` mapping for solver-specific
extras (per-stage welfare, node counts, auction prices, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Optional, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.engine.validation import validate_matching

__all__ = ["SolveReport", "build_report", "build_bound_report"]

#: Shared empty immutable metadata (avoids one proxy allocation per report).
_EMPTY_METADATA: Mapping[str, object] = MappingProxyType({})


@dataclass(frozen=True)
class SolveReport:
    """Outcome of one ``Solver.solve`` call.

    Attributes
    ----------
    solver:
        Registry name of the solver that produced this report.
    status:
        ``"ok"`` for ordinary runs; the distributed backend surfaces its
        own ``"converged"`` / ``"degraded"`` verdict here.
    matching:
        The matching, or ``None`` for bound-only solvers.
    social_welfare:
        Realised welfare of ``matching`` -- or, for bound-only solvers,
        the upper bound itself.
    num_matched / num_buyers / matched_fraction:
        Matched-buyer accounting (zeros when there is no matching).
    buyer_utilities / seller_revenue:
        Per-buyer realised utility and per-channel revenue (empty when
        there is no matching).
    interference_free / individually_rational / nash_stable / pairwise_stable:
        Verdicts from the shared validation pipeline.  ``None`` means
        *not computed*: the stability trio unless the solve was run with
        ``check_stability=True``, and all four when there is no matching.
    wall_time_s / cpu_time_s:
        Solve duration measured by the engine's span tracer
        (:func:`time.perf_counter` / :func:`time.process_time`).
    metadata:
        Read-only solver-specific extras (per-stage welfare, node
        budgets, auction prices, message counts, ...).
    trace_path:
        Path of the JSONL event trace the solve streamed into, when the
        recorder's sink owns a file (``None`` otherwise) -- the handle
        the ``repro trace`` toolkit picks up for offline analysis.
    """

    solver: str
    status: str
    matching: Optional[Matching]
    social_welfare: float
    num_matched: int
    num_buyers: int
    matched_fraction: float
    buyer_utilities: Tuple[float, ...]
    seller_revenue: Tuple[float, ...]
    interference_free: Optional[bool]
    individually_rational: Optional[bool]
    nash_stable: Optional[bool]
    pairwise_stable: Optional[bool]
    wall_time_s: float
    cpu_time_s: float
    metadata: Mapping[str, object] = field(default_factory=lambda: _EMPTY_METADATA)
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.metadata, MappingProxyType):
            object.__setattr__(
                self, "metadata", MappingProxyType(dict(self.metadata))
            )


def build_report(
    solver: str,
    market: SpectrumMarket,
    matching: Matching,
    *,
    wall_time_s: float,
    cpu_time_s: float,
    check_stability: bool = False,
    status: str = "ok",
    metadata: Optional[Mapping[str, object]] = None,
    trace_path: Optional[str] = None,
) -> SolveReport:
    """Assemble a report for a solver that produced a matching.

    All welfare/feasibility/stability numbers come from the single shared
    pipeline (:func:`repro.engine.validation.validate_matching`), so a
    report's ``social_welfare`` is byte-identical to
    ``matching.social_welfare(market.utilities)``.
    """
    validation = validate_matching(market, matching, check_stability)
    return SolveReport(
        solver=solver,
        status=status,
        matching=matching,
        social_welfare=validation.social_welfare,
        num_matched=validation.num_matched,
        num_buyers=validation.num_buyers,
        matched_fraction=validation.matched_fraction,
        buyer_utilities=validation.buyer_utilities,
        seller_revenue=validation.seller_revenue,
        interference_free=validation.interference_free,
        individually_rational=validation.individually_rational,
        nash_stable=validation.nash_stable,
        pairwise_stable=validation.pairwise_stable,
        wall_time_s=wall_time_s,
        cpu_time_s=cpu_time_s,
        metadata=metadata if metadata is not None else _EMPTY_METADATA,
        trace_path=trace_path,
    )


def build_bound_report(
    solver: str,
    market: SpectrumMarket,
    bound: float,
    *,
    wall_time_s: float,
    cpu_time_s: float,
    metadata: Optional[Mapping[str, object]] = None,
    trace_path: Optional[str] = None,
) -> SolveReport:
    """Assemble a report for a bound-only solver (no matching).

    ``social_welfare`` carries the bound itself; every verdict is ``None``
    because there is nothing to validate.
    """
    return SolveReport(
        solver=solver,
        status="ok",
        matching=None,
        social_welfare=bound,
        num_matched=0,
        num_buyers=market.num_buyers,
        matched_fraction=0.0,
        buyer_utilities=(),
        seller_revenue=(),
        interference_free=None,
        individually_rational=None,
        nash_stable=None,
        pairwise_stable=None,
        wall_time_s=wall_time_s,
        cpu_time_s=cpu_time_s,
        metadata=metadata if metadata is not None else _EMPTY_METADATA,
        trace_path=trace_path,
    )
