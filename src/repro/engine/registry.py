"""The solver registry: name -> :class:`~repro.engine.protocol.Solver`.

Entry-point-style registration with capability filtering.  The builtin
adapters (:mod:`repro.engine.adapters`) are loaded *lazily* on the first
lookup -- never at import time -- so ``repro.engine`` itself stays
importable from anywhere in the package (including :mod:`repro.core`,
which the adapters themselves import) without cycles.

Third-party backends register the same way the builtins do::

    from repro import engine

    class MySolver:
        name = "my_solver"
        capabilities = frozenset({engine.Capability.HEURISTIC})
        description = "..."
        def solve(self, market, *, recorder=None, config=None): ...

    engine.register_solver(MySolver())

and are immediately dispatchable from the sweep harness, the CLI and the
benchmark comparisons.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Mapping, Optional, Union

from repro.core.market import SpectrumMarket
from repro.engine.protocol import Capability, Solver
from repro.engine.report import SolveReport
from repro.errors import SolverError
from repro.obs.recorder import Recorder

__all__ = [
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    "solve",
]

_REGISTRY: Dict[str, Solver] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the builtin adapters exactly once, on first lookup."""
    global _builtins_loaded
    if not _builtins_loaded:
        # Flip the flag first: the adapters module calls register_solver
        # at import time, and a re-entrant lookup must not re-import it.
        _builtins_loaded = True
        importlib.import_module("repro.engine.adapters")


def register_solver(solver: Solver, replace: bool = False) -> Solver:
    """Add ``solver`` to the registry under ``solver.name``.

    Duplicate names raise :class:`~repro.errors.SolverError` unless
    ``replace=True`` (deliberate override, e.g. a tuned drop-in).
    Returns the solver so the call composes as a decorator-ish one-liner.
    """
    name = getattr(solver, "name", "")
    if not name or not isinstance(name, str):
        raise SolverError(f"solver {solver!r} has no usable string name")
    if not replace and name in _REGISTRY:
        raise SolverError(
            f"solver name {name!r} is already registered; pass replace=True "
            "to override it deliberately"
        )
    _REGISTRY[name] = solver
    return solver


def unregister_solver(name: str) -> None:
    """Remove ``name`` from the registry (missing names are ignored)."""
    _REGISTRY.pop(name, None)


def get_solver(name: str) -> Solver:
    """Look up a solver by registry name.

    Unknown names raise :class:`~repro.errors.SolverError` listing what
    *is* available, so a CLI typo fails with an actionable message.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise SolverError(
            f"unknown solver {name!r}; available solvers: {available}"
        ) from None


def list_solvers(
    capability: Optional[Union[Capability, str]] = None,
) -> List[Solver]:
    """All registered solvers (sorted by name), optionally filtered.

    ``capability`` accepts a :class:`Capability` or its string value
    (``"exact"``, ``"heuristic"``, ``"bound_only"``, ``"decentralized"``).
    """
    _ensure_builtins()
    solvers = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if capability is None:
        return solvers
    wanted = Capability(capability)
    return [s for s in solvers if wanted in s.capabilities]


def solver_names(
    capability: Optional[Union[Capability, str]] = None,
) -> List[str]:
    """Registered names (sorted), optionally filtered by capability."""
    return [solver.name for solver in list_solvers(capability)]


def solve(
    name: str,
    market: SpectrumMarket,
    *,
    recorder: Optional[Recorder] = None,
    config: Optional[Mapping[str, object]] = None,
) -> SolveReport:
    """Convenience one-shot: ``get_solver(name).solve(market, ...)``.

    A shim over :func:`repro.run.session.execute_solve`, which holds the
    dispatch body; behaviour is unchanged.
    """
    from repro.run.session import execute_solve

    return execute_solve(name, market, recorder=recorder, config=config)
