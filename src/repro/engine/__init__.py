"""The unified solver engine: one contract over every matching backend.

The paper's contribution is a *comparison* between mechanisms -- the
two-stage matching of Section III against the optimal benchmark of
Section II-B and the auction baselines of Section VI -- so the repo's
~10 solver entry points all plug into one dispatchable contract here:

* :class:`~repro.engine.protocol.Solver` -- the protocol every backend
  adapter implements (``name``, ``capabilities``, ``solve``).
* :mod:`~repro.engine.registry` -- name -> solver lookup with
  capability filtering and entry-point-style registration.
* :class:`~repro.engine.report.SolveReport` -- the canonical frozen
  result: matching, welfare, per-agent utilities, feasibility and
  stability verdicts from the one shared validation pipeline
  (:mod:`~repro.engine.validation`), wall/CPU timings, and
  solver-specific metadata.

Quickstart::

    from repro import engine

    report = engine.get_solver("two_stage").solve(market)
    bound = engine.get_solver("lp_bound").solve(market).social_welfare
    exact = engine.solver_names(engine.Capability.EXACT)

This package deliberately imports *no* backend module at import time:
the builtin adapters are loaded lazily on the first registry lookup, so
any layer (including :mod:`repro.core` itself) can import the protocol,
report and validation helpers without cycles.
"""

from repro.engine.protocol import Capability, Solver
from repro.engine.registry import (
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solver_names,
    unregister_solver,
)
from repro.engine.report import SolveReport, build_bound_report, build_report
from repro.engine.validation import (
    ValidationReport,
    buyer_utilities,
    matching_welfare,
    require_interference_free,
    seller_revenues,
    validate_matching,
)

__all__ = [
    "Capability",
    "Solver",
    "SolveReport",
    "build_report",
    "build_bound_report",
    "ValidationReport",
    "validate_matching",
    "matching_welfare",
    "buyer_utilities",
    "seller_revenues",
    "require_interference_free",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    "solve",
]
