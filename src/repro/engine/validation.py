"""The single matching-validation pipeline shared by every solver path.

Before this module existed, interference-freedom checks and welfare
recomputation were hand-rolled in three places -- the two-stage pipeline
(:mod:`repro.core.two_stage`), the distributed protocol extraction
(:mod:`repro.distributed.protocol`) and the analysis scorer
(:mod:`repro.analysis.metrics`) -- with subtly different failure handling.
Every consumer now goes through the helpers here, and the engine's
canonical :class:`~repro.engine.report.SolveReport` embeds one
:class:`ValidationReport` per solve, so feasibility and welfare are
computed by exactly one piece of code everywhere.

The helpers import only the market/matching/stability layers, never the
solvers, so any module in the package (including :mod:`repro.core` itself)
can use them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Type

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
    is_pairwise_stable,
)
from repro.errors import InterferenceViolationError, SpectrumMatchingError

__all__ = [
    "ValidationReport",
    "matching_welfare",
    "buyer_utilities",
    "seller_revenues",
    "require_interference_free",
    "validate_matching",
]


def matching_welfare(utilities: np.ndarray, matching: Matching) -> float:
    """Social welfare ``sum b_{i,j} x_{i,j}`` of one matching.

    The canonical welfare recomputation (paper eq. 1 objective): summed in
    buyer-index order, exactly as :meth:`Matching.social_welfare`, so every
    layer reports bit-identical floats for the same matching.
    """
    return matching.social_welfare(utilities)


def buyer_utilities(utilities: np.ndarray, matching: Matching) -> Tuple[float, ...]:
    """Per-buyer realised utility ``b_{mu(j),j}`` (0 when unmatched)."""
    return tuple(
        matching.buyer_utility(buyer, utilities)
        for buyer in range(matching.num_buyers)
    )


def seller_revenues(utilities: np.ndarray, matching: Matching) -> Tuple[float, ...]:
    """Per-channel revenue collected from the channel's coalition."""
    return tuple(
        matching.seller_revenue(channel, utilities)
        for channel in range(matching.num_channels)
    )


def require_interference_free(
    market: SpectrumMarket,
    matching: Matching,
    error: Type[SpectrumMatchingError] = InterferenceViolationError,
    context: str = "matching",
) -> None:
    """Raise ``error`` unless ``matching`` satisfies constraint (3).

    The raising variant of the feasibility check, shared by the paths that
    treat an interfering matching as a bug (the distributed protocol, the
    dynamic warm-start seed) rather than as a scored verdict.
    """
    if not matching.is_interference_free(market.interference):
        raise error(f"{context} violates interference-freedom")


@dataclass(frozen=True)
class ValidationReport:
    """One matching, scored and validated.

    Attributes
    ----------
    social_welfare:
        Objective (1): total matched price.
    num_matched / num_buyers / matched_fraction:
        Matched-buyer accounting.
    buyer_utilities / seller_revenue:
        Per-agent realised utilities (buyers) and revenue (channels).
    interference_free:
        Feasibility (constraint 3); always computed.
    individually_rational / nash_stable / pairwise_stable:
        The stability ladder of Section III.  ``None`` when the scan was
        skipped (``check_stability=False``); note ``pairwise_stable`` is
        expected falsy on many instances -- the paper proves the
        algorithm does not guarantee it.
    """

    social_welfare: float
    num_matched: int
    num_buyers: int
    matched_fraction: float
    buyer_utilities: Tuple[float, ...]
    seller_revenue: Tuple[float, ...]
    interference_free: bool
    individually_rational: Optional[bool]
    nash_stable: Optional[bool]
    pairwise_stable: Optional[bool]


def validate_matching(
    market: SpectrumMarket,
    matching: Matching,
    check_stability: bool = True,
) -> ValidationReport:
    """Score and validate ``matching`` on ``market``.

    ``check_stability=False`` skips the (O(MN)-ish) stability scans for
    tight benchmark loops; the three stability verdicts then report
    ``None`` -- feasibility and welfare are always computed.
    """
    utilities = market.utilities
    # One fused pass over the assignment computes welfare, the per-agent
    # breakdowns and the matched count together (the report builder sits on
    # every solve, so this path is hot): a single fancy-index gather
    # replaces per-buyer scalar indexing.  Welfare then accumulates in
    # buyer-index order over the matched pairs only -- the exact float-add
    # sequence of :meth:`Matching.social_welfare`, keeping reports
    # bit-identical to the direct solver calls.
    assignment = matching.as_assignment()
    rows = [buyer for buyer, channel in enumerate(assignment) if channel is not None]
    cols = [assignment[buyer] for buyer in rows]
    values = utilities[rows, cols].tolist() if rows else []
    per_buyer = [0.0] * matching.num_buyers
    revenue = [0.0] * matching.num_channels
    welfare = 0.0
    for buyer, channel, value in zip(rows, cols, values):
        per_buyer[buyer] = value
        revenue[channel] += value
        welfare += value
    num_matched = len(rows)
    if check_stability:
        rational: Optional[bool] = is_individually_rational(market, matching)
        nash: Optional[bool] = is_nash_stable(market, matching)
        pairwise: Optional[bool] = is_pairwise_stable(market, matching)
    else:
        rational = nash = pairwise = None
    return ValidationReport(
        social_welfare=welfare,
        num_matched=num_matched,
        num_buyers=market.num_buyers,
        matched_fraction=num_matched / market.num_buyers,
        buyer_utilities=tuple(per_buyer),
        seller_revenue=tuple(revenue),
        interference_free=matching.is_interference_free(market.interference),
        individually_rational=rational,
        nash_stable=nash,
        pairwise_stable=pairwise,
    )
