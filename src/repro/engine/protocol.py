"""The pluggable-solver contract: :class:`Capability` and :class:`Solver`.

Every matching backend in the repo -- the paper's two-stage algorithm, the
exact optimal solvers, the auction and baseline comparators, the
message-level distributed runtime -- is exposed to the rest of the code
base through this one protocol.  A solver is anything with a ``name``, a
set of :class:`Capability` tags, and a
``solve(market, *, recorder=None, config=None)`` method returning the
canonical :class:`~repro.engine.report.SolveReport`.

Consumers dispatch by *name* through :mod:`repro.engine.registry` and
filter by capability; they never import backend modules directly.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Mapping, Optional, TYPE_CHECKING

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

if TYPE_CHECKING:
    from repro.core.market import SpectrumMarket
    from repro.engine.report import SolveReport
    from repro.obs.recorder import Recorder

__all__ = ["Capability", "Solver"]


class Capability(str, enum.Enum):
    """What a registered solver can promise about its output.

    * ``EXACT`` -- returns a welfare-optimal matching (possibly refusing
      instances over a size limit).
    * ``HEURISTIC`` -- returns a feasible matching with no optimality
      guarantee (the two-stage algorithm, greedy, auctions, ...).
    * ``BOUND_ONLY`` -- returns an upper bound on the optimum but no
      matching (``report.matching is None``).
    * ``DECENTRALIZED`` -- runs as message-passing agents rather than a
      centralised computation.

    The enum derives from ``str`` so capability values round-trip through
    CLIs and JSON configs as plain strings.
    """

    EXACT = "exact"
    HEURISTIC = "heuristic"
    BOUND_ONLY = "bound_only"
    DECENTRALIZED = "decentralized"


@runtime_checkable
class Solver(Protocol):
    """Structural type implemented by every registered backend adapter."""

    #: Registry key, e.g. ``"branch_and_bound"``.
    name: str
    #: Capability tags used for registry filtering.
    capabilities: FrozenSet[Capability]
    #: One-line human description (shown by ``spectrum-repro solvers list``).
    description: str

    def solve(
        self,
        market: "SpectrumMarket",
        *,
        recorder: Optional["Recorder"] = None,
        config: Optional[Mapping[str, object]] = None,
    ) -> "SolveReport":
        """Solve ``market`` and return the canonical report."""
        ...
