"""The complete two-stage distributed matching pipeline.

:func:`run_two_stage` chains Stage I (adapted deferred acceptance) and
Stage II (transfer and invitation) and returns per-stage welfare and round
accounting, which is exactly the data plotted in the paper's Fig. 7
(cumulative social welfare per stage/phase) and Fig. 8 (running time per
stage/phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.deferred_acceptance import StageOneResult
from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.transfer_invitation import StageTwoResult, transfer_and_invitation
from repro.obs.recorder import Recorder

__all__ = ["TwoStageResult", "run_two_stage", "iterate_stage_two"]


@dataclass(frozen=True)
class TwoStageResult:
    """Aggregated outcome of the two-stage algorithm on one market.

    Attributes
    ----------
    matching:
        The final (Stage II) matching.
    stage_one / stage_two:
        The individual stage results with their traces.
    welfare_stage1 / welfare_phase1 / welfare_phase2:
        *Cumulative* social welfare after Stage I, after Stage II Phase 1,
        and after Stage II Phase 2 (the final welfare) -- the three series
        of Fig. 7.
    rounds_stage1 / rounds_phase1 / rounds_phase2:
        Rounds consumed by each stage/phase -- the three series of Fig. 8.
    """

    matching: Matching
    stage_one: StageOneResult
    stage_two: StageTwoResult
    welfare_stage1: float
    welfare_phase1: float
    welfare_phase2: float
    rounds_stage1: int
    rounds_phase1: int
    rounds_phase2: int

    @property
    def social_welfare(self) -> float:
        """Final social welfare (alias of ``welfare_phase2``)."""
        return self.welfare_phase2

    @property
    def total_rounds(self) -> int:
        """Total time slots across both stages (with instantaneous, i.e.
        oracle, stage transitions; Section IV studies realistic rules)."""
        return self.rounds_stage1 + self.rounds_phase1 + self.rounds_phase2


def iterate_stage_two(
    market: SpectrumMarket,
    matching: Matching,
    max_iterations: int = 1_000,
) -> tuple:
    """Run Stage II repeatedly until it reaches a fixed point.

    A single Stage II pass has a subtle gap the paper's Proposition-4
    proof glosses over: when a Phase-2 invitation moves a buyer *out* of
    a coalition, the vacancy can re-open a profitable deviation for a
    buyer whose earlier application that very member blocked.  After a
    fresh Stage I this almost never materialises (invitations are rare),
    but when Stage II is seeded from an arbitrary feasible matching --
    e.g. warm-start re-matching in dynamic markets
    (:mod:`repro.dynamic.online`) -- it does.

    Iterating to a fixed point closes the gap: every accepted transfer or
    invitation strictly increases the moving buyer's utility and leaves
    everyone else's unchanged, so total utility strictly increases with
    any change and the loop terminates; and a fixed point admits no
    profitable unilateral deviation (any such deviation would have been
    accepted as a transfer or invitation), i.e. it is Nash-stable.

    Returns
    -------
    (matching, total_rounds, iterations):
        The fixed-point matching, the summed Stage-II rounds across
        iterations, and how many passes ran.
    """
    current = matching
    total_rounds = 0
    for iteration in range(1, max_iterations + 1):
        result = transfer_and_invitation(market, current, record_trace=False)
        total_rounds += result.num_transfer_rounds + result.num_invitation_rounds
        if result.matching == current:
            return result.matching, total_rounds, iteration
        current = result.matching
    raise AssertionError(
        "iterate_stage_two failed to reach a fixed point within "
        f"{max_iterations} iterations -- impossible unless Stage II "
        "stopped being monotone"
    )


def run_two_stage(
    market: SpectrumMarket,
    record_trace: bool = True,
    monotone_guard: bool = True,
    recorder: Optional[Recorder] = None,
) -> TwoStageResult:
    """Run Algorithm 1 followed by Algorithm 2 on ``market``.

    Parameters
    ----------
    market:
        The virtual-level spectrum market.
    record_trace:
        Keep round-by-round trace records in both stage results.
    monotone_guard:
        Stage-I seller guard (see
        :mod:`~repro.core.deferred_acceptance`).
    recorder:
        Observability backend (``None`` resolves to the ambient recorder,
        the null one by default).  When live, the run executes under a
        ``two_stage`` span whose children are the stage spans, every
        algorithm round streams to the event sink, and a
        ``two_stage.result`` event plus welfare gauges summarise the
        outcome.  The result is identical either way.

    Returns
    -------
    TwoStageResult
        Final matching plus per-stage welfare/rounds.  The matching is
        interference-free, individually rational and Nash-stable
        (Propositions 3-4; asserted by the test suite rather than at
        runtime for speed).

    This is now a shim over
    :func:`repro.run.session.execute_two_stage`, which holds the
    execution body; the emitted event stream is unchanged (locked
    byte-for-byte by the golden-trace test).
    """
    from repro.run.session import execute_two_stage

    return execute_two_stage(
        market,
        record_trace=record_trace,
        monotone_guard=monotone_guard,
        recorder=recorder,
    )
