"""Combinatorial channel valuations (the paper's footnote-1 future work).

The matching framework prices channels *additively*: a multi-demand
buyer's value for a bundle is the sum of per-channel values (footnote 1:
"We will consider that channels may be complementary or substitute goods
(e.g., in a combinatorial auction) in the future").  This module supplies
that future work's modelling side:

* :class:`AdditiveValuation` -- the paper's baseline;
* :class:`SubstitutesValuation` -- diminishing returns: the k-th best
  channel in a bundle is discounted by ``factor**k`` (sub-additive);
* :class:`ComplementsValuation` -- synergy: a bundle of ``b`` channels is
  worth ``synergy**(b-1)`` times its additive value (super-additive);

plus the evaluation utilities that let the repository *measure* what the
additive dummy-expansion proxy costs under non-additive truth:

* :func:`physical_bundles` -- which channels each physical buyer's clones
  won;
* :func:`physical_welfare` -- total true welfare of a matching under
  per-physical-buyer valuations;
* :func:`combinatorial_optimal_welfare` -- the exact optimum of the
  non-additive objective by exhaustive search (small instances).

The ``bench_valuations`` ablation shows the proxy is exact for additive
truth (by definition), mildly wasteful under substitutes (it over-buys),
and leaves synergy on the table under complements -- quantifying the open
problem rather than solving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.errors import MarketConfigurationError, SolverLimitExceeded
from repro.optimal.bruteforce import DEFAULT_BRUTEFORCE_STATE_LIMIT

__all__ = [
    "Valuation",
    "AdditiveValuation",
    "SubstitutesValuation",
    "ComplementsValuation",
    "physical_bundles",
    "physical_welfare",
    "combinatorial_optimal_welfare",
]


class Valuation:
    """A physical buyer's value function over channel bundles."""

    def value(self, bundle: Iterable[int]) -> float:
        """True value of holding exactly the channels in ``bundle``."""
        raise NotImplementedError

    def marginal(self, channel: int, bundle: Iterable[int]) -> float:
        """Marginal value of adding ``channel`` to ``bundle``."""
        base = frozenset(bundle)
        if channel in base:
            return 0.0
        return self.value(base | {channel}) - self.value(base)


@dataclass(frozen=True)
class AdditiveValuation(Valuation):
    """The paper's baseline: bundle value is the sum of channel values."""

    channel_values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if any(v < 0 for v in self.channel_values):
            raise MarketConfigurationError("channel values must be >= 0")

    def value(self, bundle: Iterable[int]) -> float:
        return sum(self.channel_values[i] for i in set(bundle))


@dataclass(frozen=True)
class SubstitutesValuation(Valuation):
    """Sub-additive bundles: each further channel is worth less.

    The bundle's channels are sorted by descending standalone value and
    the k-th (0-indexed) contributes ``value * factor**k``; ``factor=1``
    recovers additivity, ``factor=0`` makes channels perfect substitutes
    (only the best one counts).
    """

    channel_values: Tuple[float, ...]
    factor: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.factor <= 1.0:
            raise MarketConfigurationError(
                f"substitutes factor must lie in [0, 1], got {self.factor}"
            )
        if any(v < 0 for v in self.channel_values):
            raise MarketConfigurationError("channel values must be >= 0")

    def value(self, bundle: Iterable[int]) -> float:
        standalone = sorted(
            (self.channel_values[i] for i in set(bundle)), reverse=True
        )
        return sum(v * self.factor**k for k, v in enumerate(standalone))


@dataclass(frozen=True)
class ComplementsValuation(Valuation):
    """Super-additive bundles: channels are worth more together.

    A bundle of ``b >= 1`` channels is worth ``synergy**(b-1)`` times its
    additive value; ``synergy=1`` recovers additivity.  (Think channel
    bonding: contiguous spectrum unlocks wider radio configurations.)
    """

    channel_values: Tuple[float, ...]
    synergy: float = 1.2

    def __post_init__(self) -> None:
        if self.synergy < 1.0:
            raise MarketConfigurationError(
                f"synergy must be >= 1 (use SubstitutesValuation below 1), "
                f"got {self.synergy}"
            )
        if any(v < 0 for v in self.channel_values):
            raise MarketConfigurationError("channel values must be >= 0")

    def value(self, bundle: Iterable[int]) -> float:
        channels = set(bundle)
        if not channels:
            return 0.0
        additive = sum(self.channel_values[i] for i in channels)
        return additive * self.synergy ** (len(channels) - 1)


def physical_bundles(
    market: SpectrumMarket, matching: Matching
) -> Dict[int, FrozenSet[int]]:
    """Map each physical buyer to the set of channels her clones won."""
    bundles: Dict[int, set] = {owner: set() for owner in set(market.buyer_owner)}
    for virtual, channel in matching.matched_buyers():
        bundles[market.buyer_owner[virtual]].add(channel)
    return {owner: frozenset(chs) for owner, chs in bundles.items()}


def physical_welfare(
    market: SpectrumMarket,
    matching: Matching,
    valuations: Sequence[Valuation],
) -> float:
    """True (possibly non-additive) welfare of a matching.

    ``valuations[p]`` is physical buyer ``p``'s value function; the number
    of valuations must cover every owner index in the market.
    """
    owners = set(market.buyer_owner)
    if owners and max(owners) >= len(valuations):
        raise MarketConfigurationError(
            f"need a valuation for every physical buyer "
            f"(max owner {max(owners)}, got {len(valuations)})"
        )
    total = 0.0
    for owner, bundle in physical_bundles(market, matching).items():
        total += valuations[owner].value(bundle)
    return total


def combinatorial_optimal_welfare(
    market: SpectrumMarket,
    valuations: Sequence[Valuation],
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> Tuple[float, Matching]:
    """Exact optimum of the non-additive welfare objective.

    Exhausts every interference-free matching (guarded by the same
    ``(M+1)^N`` limit as the brute-force solver) and scores each with the
    true valuations.  Returns ``(welfare, argmax matching)``.
    """
    from repro.optimal.nash_enumeration import enumerate_feasible_matchings

    best_value = -1.0
    best_matching: Matching | None = None
    for matching in enumerate_feasible_matchings(market, state_limit):
        value = physical_welfare(market, matching, valuations)
        if value > best_value:
            best_value = value
            best_matching = matching
    assert best_matching is not None
    return best_value, best_matching
