"""The matching function ``mu`` of Definition 1, kept consistent by design.

A spectrum matching maps every buyer to at most one channel and every
channel to a set of buyers, with the bidirectional requirement that
``mu(j) == {i}`` iff ``j in mu(i)``.  :class:`Matching` maintains both
directions under every mutation, so the algorithms can never observe an
inconsistent ``mu`` -- attempts to double-match a buyer raise
:class:`~repro.errors.MatchingConsistencyError` instead.

The class is deliberately independent of utilities; welfare computations
take the market (or its utility matrix) as an argument so the same matching
object can be scored under different valuations (useful in the similarity
experiments).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.errors import MatchingConsistencyError
from repro.interference.graph import InterferenceMap

__all__ = ["Matching"]


class Matching:
    """A mutable, always-consistent many-to-one spectrum matching.

    Parameters
    ----------
    num_channels:
        Number of channels ``M`` (channel ids ``0..M-1``).
    num_buyers:
        Number of virtual buyers ``N`` (buyer ids ``0..N-1``).
    """

    __slots__ = ("_num_channels", "_num_buyers", "_buyer_to_channel", "_coalitions")

    def __init__(self, num_channels: int, num_buyers: int) -> None:
        if num_channels < 1 or num_buyers < 1:
            raise MatchingConsistencyError(
                "a matching needs at least one channel and one buyer"
            )
        self._num_channels = num_channels
        self._num_buyers = num_buyers
        self._buyer_to_channel: List[Optional[int]] = [None] * num_buyers
        self._coalitions: List[Set[int]] = [set() for _ in range(num_channels)]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_channels(self) -> int:
        return self._num_channels

    @property
    def num_buyers(self) -> int:
        return self._num_buyers

    def channel_of(self, buyer: int) -> Optional[int]:
        """Return ``mu(j)`` as a channel id, or ``None`` if unmatched."""
        self._check_buyer(buyer)
        return self._buyer_to_channel[buyer]

    def is_matched(self, buyer: int) -> bool:
        """Whether buyer ``buyer`` currently holds a channel."""
        return self.channel_of(buyer) is not None

    def coalition(self, channel: int) -> FrozenSet[int]:
        """Return ``mu(i)`` -- the buyers matched to ``channel``."""
        self._check_channel(channel)
        return frozenset(self._coalitions[channel])

    def matched_buyers(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(buyer, channel)`` pairs for all matched buyers."""
        for buyer, channel in enumerate(self._buyer_to_channel):
            if channel is not None:
                yield buyer, channel

    def num_matched(self) -> int:
        """Count of currently matched buyers."""
        return sum(1 for channel in self._buyer_to_channel if channel is not None)

    def as_assignment(self) -> Tuple[Optional[int], ...]:
        """Immutable snapshot: tuple of each buyer's channel (or ``None``)."""
        return tuple(self._buyer_to_channel)

    # ------------------------------------------------------------------
    # Mutations (consistency-preserving)
    # ------------------------------------------------------------------
    def match(self, buyer: int, channel: int) -> None:
        """Match an *unmatched* buyer to a channel.

        Raises :class:`MatchingConsistencyError` if the buyer is already
        matched -- callers must :meth:`unmatch` or :meth:`move` explicitly,
        which keeps accidental double-assignments loud.
        """
        self._check_buyer(buyer)
        self._check_channel(channel)
        current = self._buyer_to_channel[buyer]
        if current is not None:
            raise MatchingConsistencyError(
                f"buyer {buyer} is already matched to channel {current}; "
                f"use move() or unmatch() first"
            )
        self._buyer_to_channel[buyer] = channel
        self._coalitions[channel].add(buyer)

    def unmatch(self, buyer: int) -> Optional[int]:
        """Detach a buyer from her channel; returns the old channel or ``None``."""
        self._check_buyer(buyer)
        channel = self._buyer_to_channel[buyer]
        if channel is not None:
            self._coalitions[channel].discard(buyer)
            self._buyer_to_channel[buyer] = None
        return channel

    def move(self, buyer: int, channel: int) -> Optional[int]:
        """Re-match a buyer to ``channel``; returns her previous channel.

        Equivalent to :meth:`unmatch` followed by :meth:`match`, as a single
        operation so traces can record transfers atomically.
        """
        previous = self.unmatch(buyer)
        self.match(buyer, channel)
        return previous

    def set_coalition(self, channel: int, buyers: Iterable[int]) -> None:
        """Replace ``mu(channel)`` wholesale (used by Stage I waitlists).

        Buyers leaving the coalition become unmatched; buyers entering must
        not be matched elsewhere (raise instead of silently stealing).
        """
        self._check_channel(channel)
        new_set = set(buyers)
        for buyer in new_set:
            self._check_buyer(buyer)
            other = self._buyer_to_channel[buyer]
            if other is not None and other != channel:
                raise MatchingConsistencyError(
                    f"buyer {buyer} is matched to channel {other}, cannot be "
                    f"placed into channel {channel}'s coalition"
                )
        for buyer in self._coalitions[channel] - new_set:
            self._buyer_to_channel[buyer] = None
        for buyer in new_set:
            self._buyer_to_channel[buyer] = channel
        self._coalitions[channel] = new_set

    def copy(self) -> "Matching":
        """Deep copy (coalition sets are not shared)."""
        clone = Matching(self._num_channels, self._num_buyers)
        clone._buyer_to_channel = list(self._buyer_to_channel)
        clone._coalitions = [set(c) for c in self._coalitions]
        return clone

    # ------------------------------------------------------------------
    # Scoring and invariants
    # ------------------------------------------------------------------
    def social_welfare(self, utilities: np.ndarray) -> float:
        """Social welfare ``sum b_{i,j} x_{i,j}`` (paper, eq. 1 objective).

        ``utilities`` is the ``(N, M)`` matrix with ``utilities[j, i] =
        b_{i,j}``.  Note the paper's welfare counts the raw ``b_{i,j}`` of
        every matched pair; for interference-free matchings (everything the
        algorithms produce) that equals the sum of realised buyer utilities.
        """
        total = 0.0
        for buyer, channel in self.matched_buyers():
            total += float(utilities[buyer, channel])
        return total

    def buyer_utility(self, buyer: int, utilities: np.ndarray) -> float:
        """Realised utility of one buyer: ``b_{mu(j),j}`` or 0 if unmatched."""
        channel = self.channel_of(buyer)
        if channel is None:
            return 0.0
        return float(utilities[buyer, channel])

    def seller_revenue(self, channel: int, utilities: np.ndarray) -> float:
        """Total offered price collected by one channel's seller."""
        return sum(float(utilities[j, channel]) for j in self._coalitions[channel])

    def is_interference_free(self, interference: InterferenceMap) -> bool:
        """Check constraint (3): no coalition contains an interfering pair."""
        for channel in range(self._num_channels):
            if not interference.is_independent(channel, self._coalitions[channel]):
                return False
        return True

    def assert_consistent(self) -> None:
        """Verify the two internal directions agree (debug/test hook)."""
        for buyer, channel in enumerate(self._buyer_to_channel):
            if channel is not None and buyer not in self._coalitions[channel]:
                raise MatchingConsistencyError(
                    f"buyer {buyer} points to channel {channel} but is missing "
                    f"from its coalition"
                )
        for channel, coalition in enumerate(self._coalitions):
            for buyer in coalition:
                if self._buyer_to_channel[buyer] != channel:
                    raise MatchingConsistencyError(
                        f"channel {channel} lists buyer {buyer} whose pointer "
                        f"is {self._buyer_to_channel[buyer]}"
                    )

    # ------------------------------------------------------------------
    # Helpers / dunder
    # ------------------------------------------------------------------
    def _check_buyer(self, buyer: int) -> None:
        if not 0 <= buyer < self._num_buyers:
            raise MatchingConsistencyError(
                f"buyer index {buyer} out of range [0, {self._num_buyers})"
            )

    def _check_channel(self, channel: int) -> None:
        if not 0 <= channel < self._num_channels:
            raise MatchingConsistencyError(
                f"channel index {channel} out of range [0, {self._num_channels})"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return (
            self._num_channels == other._num_channels
            and self._buyer_to_channel == other._buyer_to_channel
        )

    def __repr__(self) -> str:
        coalitions = {
            channel: sorted(members)
            for channel, members in enumerate(self._coalitions)
            if members
        }
        return f"Matching(matched={self.num_matched()}, coalitions={coalitions})"
