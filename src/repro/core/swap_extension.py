"""Stage III: coordinated swaps (the paper's Section III-D future work).

The two-stage algorithm stops at Nash stability.  Section III-D shows
what it leaves on the table: a seller-buyer pair may be *pairwise
blocking* -- the seller would gladly evict part of her coalition to admit
a higher-paying outsider -- but executing that deal requires coordination
("seller b is not aware that buyer 4 can transfer to seller c ... How to
enable such a swap ... is an interesting topic for future works").

This module implements that future work as an optional third stage:

1. scan for pairwise blocking pairs (Definition 4);
2. for each candidate, *plan* the full move -- admit the blocking buyer,
   evict her interfering neighbours, and relocate each evicted buyer to
   her best channel that still has room (possibly the blocker's vacated
   channel, exactly the paper's swap);
3. execute the plan only if it increases total social welfare (strictly),
   which both keeps every step globally beneficial and guarantees
   termination (welfare strictly increases along a finite lattice);
4. repeat until no welfare-improving blocking swap remains.

The result remains interference-free and individually rational; it is
Nash-stable again after a closing Stage II pass (the executor runs one
automatically by default).  Pairwise stability is still not guaranteed --
remaining blocking pairs are exactly those whose execution would hurt
total welfare through their relocation fallout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.stability import PairwiseBlockingPair, pairwise_blocking_pairs
from repro.core.transfer_invitation import transfer_and_invitation

__all__ = ["SwapRecord", "StageThreeResult", "coordinated_swaps"]


@dataclass(frozen=True)
class SwapRecord:
    """One executed swap.

    Attributes
    ----------
    channel / buyer:
        The blocking pair that triggered the swap: ``buyer`` joined
        ``channel``.
    evicted:
        Buyers evicted from ``channel`` to make room.
    relocations:
        ``(buyer, new_channel_or_minus_1)`` for each evicted buyer;
        ``-1`` means the buyer could not be relocated and ended unmatched.
    welfare_before / welfare_after:
        Total social welfare around the swap (strictly increasing).
    """

    channel: int
    buyer: int
    evicted: Tuple[int, ...]
    relocations: Tuple[Tuple[int, int], ...]
    welfare_before: float
    welfare_after: float


@dataclass(frozen=True)
class StageThreeResult:
    """Outcome of the coordinated-swap stage.

    Attributes
    ----------
    matching:
        Final matching (after the closing Stage II pass when enabled).
    swaps:
        Executed swaps in order.
    welfare_before / welfare_after:
        Social welfare entering and leaving Stage III.
    """

    matching: Matching
    swaps: Tuple[SwapRecord, ...]
    welfare_before: float
    welfare_after: float

    @property
    def num_swaps(self) -> int:
        return len(self.swaps)


def _best_relocation(
    market: SpectrumMarket, matching: Matching, buyer: int
) -> Optional[int]:
    """Best channel where ``buyer`` fits without interference, or None."""
    utilities = market.utilities
    candidates = [
        i
        for i in range(market.num_channels)
        if utilities[buyer, i] > 0.0
        and not market.graph(i).conflicts_with_set(buyer, matching.coalition(i))
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda i: (utilities[buyer, i], -i))


def _plan_swap(
    market: SpectrumMarket, matching: Matching, pair: PairwiseBlockingPair
) -> Optional[Tuple[Matching, SwapRecord]]:
    """Simulate executing ``pair``; return the new matching if welfare rises."""
    utilities = market.utilities
    trial = matching.copy()
    welfare_before = trial.social_welfare(utilities)

    for evictee in pair.evicted:
        trial.unmatch(evictee)
    trial.move(pair.buyer, pair.channel)

    relocations: List[Tuple[int, int]] = []
    # Relocate higher-priced evictees first (they have the most to lose).
    for evictee in sorted(
        pair.evicted,
        key=lambda k: (-utilities[k, pair.channel], k),
    ):
        target = _best_relocation(market, trial, evictee)
        if target is not None:
            trial.match(evictee, target)
            relocations.append((evictee, target))
        else:
            relocations.append((evictee, -1))

    welfare_after = trial.social_welfare(utilities)
    if welfare_after <= welfare_before + 1e-12:
        return None
    record = SwapRecord(
        channel=pair.channel,
        buyer=pair.buyer,
        evicted=pair.evicted,
        relocations=tuple(relocations),
        welfare_before=welfare_before,
        welfare_after=welfare_after,
    )
    return trial, record


def coordinated_swaps(
    market: SpectrumMarket,
    matching: Matching,
    max_swaps: int = 10_000,
    closing_stage_two: bool = True,
) -> StageThreeResult:
    """Run Stage III on a (typically two-stage) matching.

    Parameters
    ----------
    market:
        The market instance.
    matching:
        Starting matching (not mutated).
    max_swaps:
        Safety bound; welfare-strict improvement already guarantees
        termination, so hitting this indicates a bug rather than a big
        instance.
    closing_stage_two:
        Re-run transfer-and-invitation after the swaps settle, restoring
        Nash stability (a swap can strand an evicted buyer whose best
        channel frees up later).

    Returns
    -------
    StageThreeResult
        Final matching and the executed swap log.  ``welfare_after >=
        welfare_before`` always; strict whenever any swap executed.
    """
    current = matching.copy()
    utilities = market.utilities
    welfare_before = current.social_welfare(utilities)
    swaps: List[SwapRecord] = []

    while len(swaps) < max_swaps:
        # Deterministic choice: among welfare-improving blocking swaps,
        # execute the one with the largest welfare gain (ties: lowest
        # channel, then buyer id, via the scan order).
        best_plan: Optional[Tuple[Matching, SwapRecord]] = None
        for pair in pairwise_blocking_pairs(market, current):
            plan = _plan_swap(market, current, pair)
            if plan is None:
                continue
            if (
                best_plan is None
                or plan[1].welfare_after > best_plan[1].welfare_after + 1e-12
            ):
                best_plan = plan
        if best_plan is None:
            break
        current, record = best_plan
        swaps.append(record)

    if closing_stage_two:
        current = transfer_and_invitation(
            market, current, record_trace=False
        ).matching

    return StageThreeResult(
        matching=current,
        swaps=tuple(swaps),
        welfare_before=welfare_before,
        welfare_after=current.social_welfare(utilities),
    )
