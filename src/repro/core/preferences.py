"""Preference relations over spectrum coalitions (eqs. 5 and 6).

The paper defines, for every buyer and every seller, a complete, reflexive,
transitive preference relation over coalitions.  Both relations collapse to
comparisons of *realised value*:

* a buyer's realised value of a coalition she belongs to is ``b_{i,j}`` if
  none of her interfering neighbours is a co-member and ``0`` otherwise
  (eq. 5 plus the stated indifference assumptions);
* a seller's realised value of a coalition is its total offered price if
  the coalition is interference-free and ``0`` otherwise (eq. 6 plus the
  stated indifference assumptions).

Strict preference is then simply "strictly larger realised value", which is
what this module implements; the equivalence is exercised by the unit tests
case-by-case against the raw eq. 5/6 definitions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.coalition import Coalition, buyer_utility_in_coalition, seller_revenue
from repro.core.market import SpectrumMarket

__all__ = [
    "buyer_coalition_value",
    "seller_coalition_value",
    "buyer_prefers",
    "seller_prefers",
    "buyer_preference_order",
    "preferred_channels_above",
]


def buyer_coalition_value(
    market: SpectrumMarket, buyer: int, coalition: Optional[Coalition]
) -> float:
    """Realised value of a coalition to a buyer (``None`` = unmatched = 0)."""
    if coalition is None:
        return 0.0
    return buyer_utility_in_coalition(market, buyer, coalition)


def seller_coalition_value(market: SpectrumMarket, coalition: Coalition) -> float:
    """Realised value of a coalition to its seller.

    Total offered price when interference-free; zero otherwise (a seller is
    indifferent between being unmatched and holding an interfering -- hence
    unusable -- coalition).
    """
    if not coalition.is_interference_free(market):
        return 0.0
    return seller_revenue(market, coalition)


def buyer_prefers(
    market: SpectrumMarket,
    buyer: int,
    first: Optional[Coalition],
    second: Optional[Coalition],
) -> bool:
    """Strict buyer preference ``first > second`` (eq. 5).

    ``None`` stands for the unmatched singleton coalition ``{j}``.
    """
    return buyer_coalition_value(market, buyer, first) > buyer_coalition_value(
        market, buyer, second
    )


def seller_prefers(
    market: SpectrumMarket, first: Coalition, second: Coalition
) -> bool:
    """Strict seller preference ``first > second`` (eq. 6).

    Both coalitions must belong to the same channel (a seller only ever
    compares her own coalitions).
    """
    if first.channel != second.channel:
        raise ValueError(
            f"seller preference compares coalitions of one channel, got "
            f"{first.channel} vs {second.channel}"
        )
    return seller_coalition_value(market, first) > seller_coalition_value(
        market, second
    )


def buyer_preference_order(market: SpectrumMarket, buyer: int) -> List[int]:
    """Buyer ``buyer``'s proposal order over channels.

    Channels with strictly positive utility, sorted by descending
    ``b_{i,j}`` with ties broken by ascending channel id (deterministic
    runs).  Zero-utility channels are excluded: winning one would leave the
    buyer exactly as well off as unmatched, so she never spends a proposal
    on it.
    """
    vector = market.buyer_vector(buyer)
    candidates = [i for i in range(market.num_channels) if vector[i] > 0.0]
    candidates.sort(key=lambda i: (-vector[i], i))
    return candidates


def preferred_channels_above(
    market: SpectrumMarket, buyer: int, baseline_utility: float
) -> List[int]:
    """Channels strictly better for ``buyer`` than ``baseline_utility``.

    This is the unapplied-seller list ``T_j = {i | b_{i,j} > b_{mu(j),j}}``
    initialised at the start of Stage II (Algorithm 2, line 3), ordered by
    descending utility.
    """
    vector = market.buyer_vector(buyer)
    candidates = [
        i for i in range(market.num_channels) if vector[i] > baseline_utility
    ]
    candidates.sort(key=lambda i: (-vector[i], i))
    return candidates
