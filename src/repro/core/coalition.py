"""Spectrum coalitions (Section III-A).

A *spectrum coalition* is a seller together with the buyers matched to her
(or a lone unmatched participant).  Preference relations in the paper are
defined over coalitions rather than individual partners because of the peer
effect: a buyer's utility inside a coalition depends on whether any of her
interfering neighbours are in it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.core.market import SpectrumMarket

__all__ = ["Coalition", "buyer_utility_in_coalition", "seller_revenue"]


@dataclass(frozen=True)
class Coalition:
    """One seller's coalition: the channel id plus its buyer set.

    Attributes
    ----------
    channel:
        The seller/channel id.
    buyers:
        Frozen set of virtual-buyer ids matched to the channel.
    """

    channel: int
    buyers: FrozenSet[int]

    @classmethod
    def of(cls, channel: int, buyers: Iterable[int]) -> "Coalition":
        """Convenience constructor accepting any iterable of buyer ids."""
        return cls(channel=channel, buyers=frozenset(buyers))

    def with_buyer(self, buyer: int) -> "Coalition":
        """Coalition obtained by adding one buyer (used in deviation tests)."""
        return Coalition(self.channel, self.buyers | {buyer})

    def without_buyer(self, buyer: int) -> "Coalition":
        """Coalition obtained by removing one buyer."""
        return Coalition(self.channel, self.buyers - {buyer})

    def is_interference_free(self, market: SpectrumMarket) -> bool:
        """Whether no two member buyers interfere on this channel."""
        return market.interference.is_independent(self.channel, self.buyers)

    def __len__(self) -> int:
        return len(self.buyers)


def buyer_utility_in_coalition(
    market: SpectrumMarket, buyer: int, coalition: Coalition
) -> float:
    """Buyer ``buyer``'s realised utility as a member of ``coalition``.

    Per Section III-A: full utility ``b_{i,j}`` if none of her interfering
    neighbours (on channel ``i``) is in the coalition, zero otherwise.  A
    buyer not in the coalition has zero utility from it by convention
    (matching the "unmatched" baseline of the preference relation).
    """
    if buyer not in coalition.buyers:
        return 0.0
    graph = market.graph(coalition.channel)
    others = coalition.buyers - {buyer}
    if graph.conflicts_with_set(buyer, others):
        return 0.0
    return market.price(coalition.channel, buyer)


def seller_revenue(market: SpectrumMarket, coalition: Coalition) -> float:
    """Total offered price of the coalition's buyers (the seller's utility).

    Note this is the raw sum ``sum b_{i,j}`` regardless of interference --
    interference instead enters the seller's *preference relation* (eq. 6),
    under which any coalition containing interfering buyers is bottom-ranked.
    """
    return sum(market.price(coalition.channel, j) for j in coalition.buyers)
