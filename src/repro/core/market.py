"""The free spectrum market of Section II-A.

A market instance bundles everything the algorithms need:

* ``M`` channels (virtual sellers), each owned by a physical seller;
* ``N`` virtual buyers, each demanding exactly one channel, cloned from
  physical buyers via the paper's *dummy expansion*;
* the utility/price matrix ``b_{i,j}`` (a buyer's utility for a channel is
  also the price she offers its seller);
* the per-channel interference family ``{G_i}``;
* the MWIS algorithm sellers use to form most-preferred coalitions.

The virtual level is the algorithms' native representation -- Algorithms 1
and 2 of the paper are stated over virtual participants -- while
:meth:`SpectrumMarket.from_physical` performs the expansion from the
physical description (seller ``i`` owns ``m_i`` channels, buyer ``j``
demands ``n_j`` channels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MarketConfigurationError
from repro.interference.graph import InterferenceGraph, InterferenceMap
from repro.interference.mwis import MwisAlgorithm

__all__ = ["PhysicalSeller", "PhysicalBuyer", "SpectrumMarket"]


@dataclass(frozen=True)
class PhysicalSeller:
    """A service provider offering spare spectrum.

    Attributes
    ----------
    name:
        Human-readable identifier (used in traces and reports).
    num_channels:
        ``m_i`` -- how many channels the seller supplies; the dummy
        expansion creates this many virtual sellers.
    """

    name: str
    num_channels: int

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise MarketConfigurationError(
                f"seller {self.name!r} must supply at least one channel, "
                f"got {self.num_channels}"
            )


@dataclass(frozen=True)
class PhysicalBuyer:
    """A service provider requesting spectrum.

    Attributes
    ----------
    name:
        Human-readable identifier.
    num_requested:
        ``n_j`` -- how many channels the buyer demands; the dummy expansion
        creates this many virtual buyers, all sharing ``utilities`` and all
        pairwise interfering on every channel (a buyer must not be sold the
        same channel twice).
    utilities:
        Length-``M`` vector ``(b_{1,j}, ..., b_{M,j})`` of per-channel
        utilities, which double as offered prices.
    """

    name: str
    num_requested: int
    utilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.num_requested < 1:
            raise MarketConfigurationError(
                f"buyer {self.name!r} must request at least one channel, "
                f"got {self.num_requested}"
            )
        object.__setattr__(self, "utilities", tuple(float(u) for u in self.utilities))
        if any(u < 0 for u in self.utilities):
            raise MarketConfigurationError(
                f"buyer {self.name!r} has negative utilities; prices must be >= 0"
            )


class SpectrumMarket:
    """An expanded (virtual-level) spectrum market instance.

    Parameters
    ----------
    utilities:
        Array of shape ``(N, M)``; ``utilities[j, i]`` is ``b_{i,j}``, buyer
        ``j``'s utility for (and offered price on) channel ``i``.  All
        entries must be non-negative and finite.
    interference:
        The per-channel conflict family ``{G_i}`` over the ``N`` buyers.
    mwis_algorithm:
        Which solver sellers use for most-preferred coalition formation.
        GWMIN (the paper's choice, via [8]) by default.
    buyer_names / channel_names:
        Optional labels for traces; default to ``"b<j>"`` / ``"ch<i>"``.
    buyer_owner / channel_owner:
        Optional physical-participant indices recording which physical
        buyer/seller each virtual participant came from.  Virtual buyers
        with the same owner are expected to interfere on every channel;
        :meth:`validate` checks this.
    """

    def __init__(
        self,
        utilities: np.ndarray,
        interference: InterferenceMap,
        mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
        buyer_names: Optional[Sequence[str]] = None,
        channel_names: Optional[Sequence[str]] = None,
        buyer_owner: Optional[Sequence[int]] = None,
        channel_owner: Optional[Sequence[int]] = None,
    ) -> None:
        utilities = np.asarray(utilities, dtype=float)
        if utilities.ndim != 2:
            raise MarketConfigurationError(
                f"utilities must be a 2-D (N, M) array, got ndim={utilities.ndim}"
            )
        num_buyers, num_channels = utilities.shape
        if num_buyers == 0 or num_channels == 0:
            raise MarketConfigurationError(
                "a market needs at least one buyer and one channel"
            )
        if not np.all(np.isfinite(utilities)):
            raise MarketConfigurationError("utilities must be finite")
        if np.any(utilities < 0):
            raise MarketConfigurationError("utilities (prices) must be non-negative")
        if interference.num_channels != num_channels:
            raise MarketConfigurationError(
                f"interference map has {interference.num_channels} channels "
                f"but utilities describe {num_channels}"
            )
        if interference.num_buyers != num_buyers:
            raise MarketConfigurationError(
                f"interference map covers {interference.num_buyers} buyers "
                f"but utilities describe {num_buyers}"
            )
        self._utilities = utilities
        self._utilities.setflags(write=False)
        self._interference = interference
        self._mwis_algorithm = MwisAlgorithm(mwis_algorithm)
        self._buyer_names = self._labels(buyer_names, num_buyers, "b")
        self._channel_names = self._labels(channel_names, num_channels, "ch")
        self._buyer_owner = (
            tuple(int(o) for o in buyer_owner)
            if buyer_owner is not None
            else tuple(range(num_buyers))
        )
        self._channel_owner = (
            tuple(int(o) for o in channel_owner)
            if channel_owner is not None
            else tuple(range(num_channels))
        )
        if len(self._buyer_owner) != num_buyers:
            raise MarketConfigurationError("buyer_owner length must equal N")
        if len(self._channel_owner) != num_channels:
            raise MarketConfigurationError("channel_owner length must equal M")

    @staticmethod
    def _labels(
        names: Optional[Sequence[str]], count: int, prefix: str
    ) -> Tuple[str, ...]:
        if names is None:
            return tuple(f"{prefix}{idx}" for idx in range(count))
        labels = tuple(str(n) for n in names)
        if len(labels) != count:
            raise MarketConfigurationError(
                f"expected {count} {prefix}-labels, got {len(labels)}"
            )
        if len(set(labels)) != count:
            raise MarketConfigurationError(f"{prefix}-labels must be unique")
        return labels

    # ------------------------------------------------------------------
    # Construction from the physical description
    # ------------------------------------------------------------------
    @classmethod
    def from_physical(
        cls,
        sellers: Sequence[PhysicalSeller],
        buyers: Sequence[PhysicalBuyer],
        interference: InterferenceMap,
        mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
    ) -> "SpectrumMarket":
        """Dummy-expand physical participants into a virtual market.

        ``interference`` must be given over the *virtual* buyers (size
        ``N = sum(n_j)``), ordered buyer-major: the clones of physical buyer
        0 come first, then buyer 1's, etc.  Cliques between clones of the
        same physical buyer are added automatically on every channel, per
        Section II-A ("if two virtual buyers originate from the same buyer,
        they are viewed as interfering buyers").
        """
        if not sellers:
            raise MarketConfigurationError("at least one physical seller is required")
        if not buyers:
            raise MarketConfigurationError("at least one physical buyer is required")
        num_channels = sum(s.num_channels for s in sellers)
        num_virtual_buyers = sum(b.num_requested for b in buyers)

        channel_names: List[str] = []
        channel_owner: List[int] = []
        for seller_idx, seller in enumerate(sellers):
            for copy in range(seller.num_channels):
                suffix = f".{copy}" if seller.num_channels > 1 else ""
                channel_names.append(f"{seller.name}{suffix}")
                channel_owner.append(seller_idx)

        utilities = np.zeros((num_virtual_buyers, num_channels), dtype=float)
        buyer_names: List[str] = []
        buyer_owner: List[int] = []
        clone_groups: List[List[int]] = []
        cursor = 0
        for buyer_idx, buyer in enumerate(buyers):
            if len(buyer.utilities) != num_channels:
                raise MarketConfigurationError(
                    f"buyer {buyer.name!r} has a utility vector of length "
                    f"{len(buyer.utilities)}, expected M={num_channels}"
                )
            clones = list(range(cursor, cursor + buyer.num_requested))
            clone_groups.append(clones)
            for copy, virtual_id in enumerate(clones):
                suffix = f".{copy}" if buyer.num_requested > 1 else ""
                buyer_names.append(f"{buyer.name}{suffix}")
                buyer_owner.append(buyer_idx)
                utilities[virtual_id, :] = buyer.utilities
            cursor += buyer.num_requested

        expanded = interference
        for clones in clone_groups:
            if len(clones) > 1:
                expanded = expanded.with_clique(clones)

        return cls(
            utilities,
            expanded,
            mwis_algorithm=mwis_algorithm,
            buyer_names=buyer_names,
            channel_names=channel_names,
            buyer_owner=buyer_owner,
            channel_owner=channel_owner,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_buyers(self) -> int:
        """``N`` -- number of virtual buyers."""
        return self._utilities.shape[0]

    @property
    def num_channels(self) -> int:
        """``M`` -- number of channels / virtual sellers."""
        return self._utilities.shape[1]

    @property
    def utilities(self) -> np.ndarray:
        """Read-only ``(N, M)`` matrix with ``utilities[j, i] = b_{i,j}``."""
        return self._utilities

    @property
    def interference(self) -> InterferenceMap:
        """The per-channel conflict family."""
        return self._interference

    @property
    def mwis_algorithm(self) -> MwisAlgorithm:
        """Coalition-formation solver used by sellers."""
        return self._mwis_algorithm

    @property
    def buyer_names(self) -> Tuple[str, ...]:
        return self._buyer_names

    @property
    def channel_names(self) -> Tuple[str, ...]:
        return self._channel_names

    @property
    def buyer_owner(self) -> Tuple[int, ...]:
        """Physical-buyer index of each virtual buyer."""
        return self._buyer_owner

    @property
    def channel_owner(self) -> Tuple[int, ...]:
        """Physical-seller index of each channel."""
        return self._channel_owner

    def price(self, channel: int, buyer: int) -> float:
        """``b_{i,j}`` -- buyer ``buyer``'s utility/price for ``channel``."""
        return float(self._utilities[buyer, channel])

    def channel_prices(self, channel: int) -> np.ndarray:
        """All buyers' offered prices on one channel (length ``N``)."""
        return self._utilities[:, channel]

    def buyer_vector(self, buyer: int) -> np.ndarray:
        """Buyer ``buyer``'s utility vector ``B_j`` (length ``M``)."""
        return self._utilities[buyer, :]

    def graph(self, channel: int) -> InterferenceGraph:
        """Channel ``channel``'s interference graph ``G_i``."""
        return self._interference.graph(channel)

    def with_mwis_algorithm(self, algorithm: MwisAlgorithm) -> "SpectrumMarket":
        """Return a copy of the market using a different MWIS solver."""
        return SpectrumMarket(
            np.array(self._utilities),
            self._interference,
            mwis_algorithm=algorithm,
            buyer_names=self._buyer_names,
            channel_names=self._channel_names,
            buyer_owner=self._buyer_owner,
            channel_owner=self._channel_owner,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check cross-cutting invariants beyond constructor validation.

        Currently: clones of the same physical buyer must interfere on
        every channel (the dummy-expansion rule).  Raises
        :class:`MarketConfigurationError` on violation.
        """
        clones_by_owner: dict = {}
        for virtual_id, owner in enumerate(self._buyer_owner):
            clones_by_owner.setdefault(owner, []).append(virtual_id)
        for owner, clones in clones_by_owner.items():
            for a in range(len(clones)):
                for b in range(a + 1, len(clones)):
                    for channel in range(self.num_channels):
                        if not self._interference.interferes(
                            channel, clones[a], clones[b]
                        ):
                            raise MarketConfigurationError(
                                f"virtual buyers {clones[a]} and {clones[b]} share "
                                f"physical owner {owner} but do not interfere on "
                                f"channel {channel}"
                            )

    def __repr__(self) -> str:
        return (
            f"SpectrumMarket(N={self.num_buyers}, M={self.num_channels}, "
            f"mwis={self._mwis_algorithm.value!r})"
        )
