"""Stability notions for spectrum matchings (Sections III-C and III-D).

Positive results (hold for the algorithm's output, Propositions 3-4):

* **Individual rationality** (Definition 2): no seller prefers dropping
  part of her coalition, and no matched buyer prefers being unmatched.
* **Nash stability** (Definition 3): no buyer can strictly gain by
  unilaterally joining another seller's coalition (or leaving).

Negative results (Section III-D; the checkers here produce the witnesses):

* **Pairwise stability** (Definition 4) does NOT hold in general: a
  seller-buyer pair may jointly benefit if the seller may evict part of her
  coalition -- the paper's Fig. 4/5 counterexample.
* **Buyer optimality** (Definition 5) does not hold either; another
  Nash-stable matching can make some buyers strictly better off and none
  worse.  :func:`pareto_dominates_for_buyers` compares two candidate
  matchings for exactly this relation.

All checkers work on realised utilities, which is equivalent to the
coalition-preference formulation (see :mod:`~repro.core.preferences`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching

__all__ = [
    "NashBlockingMove",
    "PairwiseBlockingPair",
    "is_individually_rational",
    "nash_blocking_moves",
    "is_nash_stable",
    "pairwise_blocking_pairs",
    "is_pairwise_stable",
    "pareto_dominates_for_buyers",
]


@dataclass(frozen=True)
class NashBlockingMove:
    """A profitable unilateral deviation witnessing Nash instability.

    Buyer ``buyer`` can leave her current coalition and join channel
    ``channel`` (where she interferes with nobody), improving her realised
    utility from ``current_utility`` to ``deviation_utility``.
    """

    buyer: int
    channel: int
    current_utility: float
    deviation_utility: float


@dataclass(frozen=True)
class PairwiseBlockingPair:
    """A seller-buyer pair witnessing pairwise instability (Definition 4).

    Seller ``channel`` can evict ``evicted`` (buyer ``buyer``'s interfering
    neighbours inside the coalition) and admit ``buyer``; the seller's
    revenue rises by ``seller_gain > 0`` and the buyer's utility rises from
    ``buyer_current`` to ``buyer_new``.
    """

    channel: int
    buyer: int
    evicted: Tuple[int, ...]
    seller_gain: float
    buyer_current: float
    buyer_new: float


def is_individually_rational(market: SpectrumMarket, matching: Matching) -> bool:
    """Check Definition 2 on a matching.

    For an interference-free matching with non-negative prices this reduces
    to: (a) every coalition is interference-free (a seller whose coalition
    contains an interfering pair has realised value zero and strictly
    prefers dropping buyers until it is conflict-free, whenever any
    sub-coalition has positive price), and (b) every matched buyer has
    positive realised utility (strictly prefers her match to unmatched) or
    at least non-negative (never strictly prefers unmatched).
    """
    if not matching.is_interference_free(market.interference):
        # With all-zero prices an interfering coalition is not technically
        # blocked, but no algorithm in this library ever produces one; treat
        # it as irrational to keep the predicate strict.
        return False
    for buyer, channel in matching.matched_buyers():
        if market.price(channel, buyer) < 0.0:
            return False
    return True


def nash_blocking_moves(
    market: SpectrumMarket, matching: Matching
) -> Iterator[NashBlockingMove]:
    """Yield every profitable unilateral deviation (lazy).

    A buyer's deviation utility for channel ``i`` is ``b_{i,j}`` when she
    has no interfering neighbour in ``mu(i)`` and zero otherwise; the move
    blocks iff it strictly exceeds her current realised utility.
    """
    utilities = market.utilities
    for buyer in range(market.num_buyers):
        current_channel = matching.channel_of(buyer)
        current = matching.buyer_utility(buyer, utilities)
        for channel in range(market.num_channels):
            if channel == current_channel:
                continue
            gain = float(utilities[buyer, channel])
            if gain <= current:
                continue
            graph = market.graph(channel)
            if graph.conflicts_with_set(buyer, matching.coalition(channel)):
                continue
            yield NashBlockingMove(
                buyer=buyer,
                channel=channel,
                current_utility=current,
                deviation_utility=gain,
            )


def is_nash_stable(market: SpectrumMarket, matching: Matching) -> bool:
    """Check Definition 3: no profitable unilateral deviation exists."""
    return next(nash_blocking_moves(market, matching), None) is None


def pairwise_blocking_pairs(
    market: SpectrumMarket, matching: Matching
) -> Iterator[PairwiseBlockingPair]:
    """Yield every blocking seller-buyer pair of Definition 4 (lazy).

    For each candidate pair ``(i, j)`` with ``j not in mu(i)``, the optimal
    eviction set is exactly ``j``'s interfering neighbours inside ``mu(i)``
    (evicting anyone else only costs the seller revenue), so the pair blocks
    iff both strict improvements hold:

    * seller: ``b_{i,j} > sum of prices of the evicted neighbours``;
    * buyer: ``b_{i,j} > her current realised utility``.
    """
    utilities = market.utilities
    for channel in range(market.num_channels):
        graph = market.graph(channel)
        coalition = matching.coalition(channel)
        for buyer in range(market.num_buyers):
            if buyer in coalition:
                continue
            price = float(utilities[buyer, channel])
            current = matching.buyer_utility(buyer, utilities)
            if price <= current:
                continue  # buyer would not strictly improve
            evicted = tuple(
                sorted(k for k in coalition if graph.interferes(buyer, k))
            )
            evicted_value = sum(float(utilities[k, channel]) for k in evicted)
            if price <= evicted_value:
                continue  # seller would not strictly improve
            yield PairwiseBlockingPair(
                channel=channel,
                buyer=buyer,
                evicted=evicted,
                seller_gain=price - evicted_value,
                buyer_current=current,
                buyer_new=price,
            )


def is_pairwise_stable(market: SpectrumMarket, matching: Matching) -> bool:
    """Check Definition 4: no blocking seller-buyer pair exists.

    The paper proves the two-stage algorithm does NOT guarantee this; the
    checker exists to demonstrate that (and to find counterexamples).
    """
    return next(pairwise_blocking_pairs(market, matching), None) is None


def pareto_dominates_for_buyers(
    market: SpectrumMarket, candidate: Matching, baseline: Matching
) -> bool:
    """Whether ``candidate`` buyer-Pareto-dominates ``baseline`` (Definition 5).

    True iff no buyer's realised utility is lower under ``candidate`` and at
    least one buyer's is strictly higher.  Combined with
    :func:`is_nash_stable` on the candidate, a ``True`` result witnesses
    that ``baseline`` is not buyer-optimal among Nash-stable matchings.
    """
    utilities = market.utilities
    strictly_better = False
    for buyer in range(market.num_buyers):
        before = baseline.buyer_utility(buyer, utilities)
        after = candidate.buyer_utility(buyer, utilities)
        if after < before - 1e-12:
            return False
        if after > before + 1e-12:
            strictly_better = True
    return strictly_better
