"""Stage I: adapted deferred acceptance (Algorithm 1 of the paper).

The classic Gale-Shapley deferred acceptance is adapted to spectrum
matching by replacing colleges' fixed quotas with interference-aware
coalition formation: each round, every unmatched buyer with proposals left
proposes to her most-preferred unproposed channel, and every seller with
fresh proposers re-forms her waitlist as the most valuable interference-free
subset of (waitlist ∪ proposers) -- a maximum-weight-independent-set (MWIS)
computed with the market's configured solver (greedy GWMIN by default,
following reference [8] of the paper).

Termination (Proposition 1): each proposal permanently consumes one entry
of the proposing buyer's unproposed-seller list, so the total number of
proposals is at most ``N * M`` and the loop always ends.

Implementation notes
--------------------
* Sellers use a *monotone guard* (on by default): since the greedy MWIS is
  only an approximation, its output on the enlarged pool can occasionally
  be worth less than the incumbent waitlist.  A real seller would never
  voluntarily adopt a worse coalition, so the seller also considers keeping
  her waitlist and greedily extending it with compatible fresh proposers,
  and adopts whichever candidate has the higher total price.  With the
  exact MWIS solver the guard never changes the outcome.
* All tie-breaks (buyer proposal order, MWIS selection) are deterministic,
  so a given market instance always produces the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.preferences import buyer_preference_order
from repro.core.soa import batch_stage1_enabled, batched_deferred_acceptance
from repro.core.trace import StageOneRound
from repro.interference.bitset import (
    fast_kernels_enabled,
    mask_of,
    mwis_gwmin2_bits,
    mwis_gwmin_bits,
)
from repro.interference.mwis import MwisAlgorithm, mwis_solve
from repro.obs.events import round_to_event
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = [
    "COST_COUNTERS",
    "StageOneResult",
    "deferred_acceptance",
    "seller_select_coalition",
]

#: Deterministic cost counters for the scalar Stage-I pool cache:
#: machine-independent operation counts accumulated by every solve and
#: read/reset by :mod:`repro.prof.counters`.  A cache *hit* is a member
#: whose induced mask survived the round untouched by the delta.
COST_COUNTERS: Dict[str, int] = {
    "stage1.cache_hit_ops": 0,
    "stage1.cache_departed_ops": 0,
    "stage1.cache_arrived_ops": 0,
}


@dataclass(frozen=True)
class StageOneResult:
    """Outcome of Stage I.

    Attributes
    ----------
    matching:
        The interference-free matching formed by the final waitlists.
    rounds:
        Per-round trace records (empty if ``record_trace=False``).
    num_rounds:
        Number of proposal rounds executed (the stage's running time in
        time slots, as plotted in Fig. 8).
    total_proposals:
        Total proposals sent across all rounds (bounded by ``N * M``).
    """

    matching: Matching
    rounds: Tuple[StageOneRound, ...]
    num_rounds: int
    total_proposals: int


def seller_select_coalition(
    market: SpectrumMarket,
    channel: int,
    pool: Sequence[int],
    incumbent: Sequence[int] = (),
    monotone_guard: bool = True,
) -> List[int]:
    """Form a seller's most-preferred coalition from a candidate pool.

    Solves (approximately) the MWIS on channel ``channel``'s interference
    graph restricted to ``pool``, with the buyers' offered prices as
    weights.  With ``monotone_guard`` the result is guaranteed to be worth
    at least as much as ``incumbent`` (which must be a subset of ``pool``).

    Returns the selected buyers sorted ascending.
    """
    graph = market.graph(channel)
    prices = market.channel_prices(channel)
    weights = {j: float(prices[j]) for j in pool}
    candidate = mwis_solve(graph, weights, pool, market.mwis_algorithm)
    if not monotone_guard or not incumbent:
        return candidate

    candidate_value = sum(weights[j] for j in candidate)
    incumbent_value = sum(weights[j] for j in incumbent)
    # Try keeping the incumbent waitlist and extending it with compatible
    # newcomers (solved as an MWIS among the compatible newcomers only).
    newcomers = [j for j in pool if j not in set(incumbent)]
    compatible = graph.independent_subset_greedily_compatible(incumbent, newcomers)
    extension = mwis_solve(graph, weights, compatible, market.mwis_algorithm)
    extended = sorted(set(incumbent) | set(extension))
    extended_value = incumbent_value + sum(weights[j] for j in extension)
    if extended_value > candidate_value:
        return extended
    return candidate


#: MWIS algorithms with a bitmask kernel; other choices (GWMAX, EXACT)
#: always go through :func:`seller_select_coalition` per call.
_KERNEL_ALGORITHMS = {
    MwisAlgorithm.GWMIN: mwis_gwmin_bits,
    MwisAlgorithm.GWMIN2: mwis_gwmin2_bits,
}


class _SellerMwisCache:
    """Incremental per-seller candidate-pool state for the fast kernels.

    Each proposal round a seller re-solves MWIS on ``waitlist | fresh``.
    The pool between consecutive rounds overlaps heavily -- the new pool
    is the previous round's *selection* plus the fresh proposers -- so
    instead of rebuilding the induced adjacency from the full channel
    graph every round (the set-based path's per-round cost), this cache
    keeps the previous pool's induced bitmasks and applies only the delta
    of departed members (rejections/evictions that left the pool) and new
    proposers.

    Invalidation rule: a member's mask is recomputed only from the delta
    (``mask & ~departed | adjacency & arrived``); a buyer re-entering
    after leaving is treated as a plain arrival.  Weights (the buyer's
    offered channel price) are immutable for a market instance, so they
    are converted to Python floats once per buyer and never invalidated.

    The cache yields byte-identical selections to the uncached path: the
    induced masks it maintains equal ``adjacency_bits[j] & pool_mask``
    exactly (bit operations, no rounding), and the kernels consume them
    the same way.
    """

    __slots__ = ("_adjacency_bits", "_prices", "pool", "pool_mask",
                 "induced", "weights")

    def __init__(self, adjacency_bits, prices) -> None:
        self._adjacency_bits = adjacency_bits
        self._prices = prices
        self.pool: Set[int] = set()
        self.pool_mask = 0
        self.induced: Dict[int, int] = {}
        self.weights: Dict[int, float] = {}

    def update(self, pool: Sequence[int]) -> None:
        """Apply the delta from the cached pool to ``pool`` (ascending)."""
        new_pool = set(pool)
        departed = self.pool - new_pool
        arrived = new_pool - self.pool
        counters = COST_COUNTERS
        counters["stage1.cache_departed_ops"] += len(departed)
        counters["stage1.cache_arrived_ops"] += len(arrived)
        if not departed and not arrived:
            counters["stage1.cache_hit_ops"] += len(new_pool)
        new_mask = self.pool_mask
        if departed:
            new_mask &= ~mask_of(departed)
        induced = self.induced
        for j in departed:
            del induced[j]
        if arrived:
            arrived_mask = mask_of(arrived)
            new_mask |= arrived_mask
            keep_mask = ~mask_of(departed) if departed else -1
            adjacency = self._adjacency_bits
            for j in self.pool & new_pool:
                induced[j] = (induced[j] & keep_mask) | (
                    adjacency[j] & arrived_mask
                )
            weights = self.weights
            prices = self._prices
            for j in arrived:
                induced[j] = adjacency[j] & new_mask
                if j not in weights:
                    weights[j] = float(prices[j])
        elif departed:
            keep_mask = ~mask_of(departed)
            for j in induced:
                induced[j] &= keep_mask
        self.pool = new_pool
        self.pool_mask = new_mask


def _seller_select_fast(
    cache: _SellerMwisCache,
    kernel,
    adjacency_bits,
    pool: Sequence[int],
    incumbent: Sequence[int],
    monotone_guard: bool,
) -> List[int]:
    """Kernel-path equivalent of :func:`seller_select_coalition`.

    Mirrors the reference implementation operation for operation
    (including the order of the value summations) so Stage I produces
    byte-identical waitlists on both kernel paths.
    """
    cache.update(pool)
    weights = cache.weights
    candidate = kernel(weights, pool, cache.induced)
    if not monotone_guard or not incumbent:
        return candidate

    candidate_value = sum(weights[j] for j in candidate)
    incumbent_value = sum(weights[j] for j in incumbent)
    # Keep-and-extend alternative: the incumbent waitlist plus the best
    # interference-free set of compatible fresh proposers.
    incumbent_set = set(incumbent)
    incumbent_mask = mask_of(incumbent)
    compatible = [
        j
        for j in pool
        if j not in incumbent_set and not adjacency_bits[j] & incumbent_mask
    ]
    compatible_mask = mask_of(compatible)
    extension = kernel(
        weights,
        compatible,
        {j: adjacency_bits[j] & compatible_mask for j in compatible},
    )
    extended = sorted(incumbent_set | set(extension))
    extended_value = incumbent_value + sum(weights[j] for j in extension)
    if extended_value > candidate_value:
        return extended
    return candidate


def deferred_acceptance(
    market: SpectrumMarket,
    record_trace: bool = True,
    monotone_guard: bool = True,
    recorder: Optional[Recorder] = None,
) -> StageOneResult:
    """Run Stage I (Algorithm 1) to an interference-free matching.

    Parameters
    ----------
    market:
        The virtual-level spectrum market.
    record_trace:
        Keep per-round :class:`~repro.core.trace.StageOneRound` records.
        Disable for large benchmark sweeps to save memory.
    monotone_guard:
        See module docstring; keep ``True`` unless reproducing the literal
        greedy-only behaviour.
    recorder:
        Observability backend (``None`` resolves to the ambient recorder,
        the null one by default).  When live, each round is emitted as a
        ``stage1.round`` event, the stage runs under a ``stage1`` span
        with one ``stage1.mwis`` child span per seller-side MWIS solve,
        and round/proposal counters accumulate in the metrics registry.

    Returns
    -------
    StageOneResult
        Matching plus round statistics.  The matching is guaranteed
        interference-free (each waitlist is an independent set by
        construction).
    """
    rec = resolve_recorder(recorder)
    if rec.enabled:
        with rec.span("stage1"):
            result = _deferred_acceptance_observed(
                market, record_trace, monotone_guard, rec
            )
        return result
    return _deferred_acceptance_impl(market, record_trace, monotone_guard)


def _deferred_acceptance_observed(
    market: SpectrumMarket,
    record_trace: bool,
    monotone_guard: bool,
    rec: Recorder,
) -> StageOneResult:
    """Instrumented Stage I wrapper: runs the core loop with a per-round
    observer, then reports the stage totals to the metrics registry."""
    result = _deferred_acceptance_impl(
        market, record_trace, monotone_guard, rec
    )
    metrics = rec.metrics
    if metrics.enabled:
        metrics.counter("stage1.rounds").inc(result.num_rounds)
        metrics.counter("stage1.proposals").inc(result.total_proposals)
    return result


def _deferred_acceptance_impl(
    market: SpectrumMarket,
    record_trace: bool = True,
    monotone_guard: bool = True,
    rec: Optional[Recorder] = None,
) -> StageOneResult:
    observing = rec is not None and rec.enabled
    emitting = observing and rec.events.enabled
    # A null registry returns a no-op timer, so this is safe to enter even
    # when only events or spans are live.
    mwis_timer = rec.metrics.timer("stage1.mwis_solve_s") if observing else None
    num_buyers = market.num_buyers

    # Kernel fast path: per-seller incremental pool caches feeding the
    # bitmask kernels.  Only GWMIN/GWMIN2 have kernels; other algorithms
    # (and SPECTRUM_FAST_KERNELS=0) use seller_select_coalition per call.
    # Both paths produce byte-identical waitlists (differential-tested).
    kernel = (
        _KERNEL_ALGORITHMS.get(market.mwis_algorithm)
        if fast_kernels_enabled()
        else None
    )
    if kernel is not None and batch_stage1_enabled():
        # Struct-of-arrays fast path: one vectorised proposal/score/
        # acceptance pass per round across all sellers, byte-identical
        # to the scalar loops below (differential- and golden-trace
        # tested).  SPECTRUM_BATCH_STAGE1=0 falls back to the scalar
        # per-seller kernel path.
        matching, rounds, num_rounds, total_proposals = (
            batched_deferred_acceptance(
                market, record_trace, monotone_guard, rec
            )
        )
        return StageOneResult(
            matching=matching,
            rounds=rounds,
            num_rounds=num_rounds,
            total_proposals=total_proposals,
        )
    caches: Dict[int, _SellerMwisCache] = {}

    def select_coalition(channel: int, pool: List[int], incumbent: List[int]):
        if kernel is None:
            return seller_select_coalition(
                market,
                channel,
                pool,
                incumbent=incumbent,
                monotone_guard=monotone_guard,
            )
        cache = caches.get(channel)
        if cache is None:
            cache = caches[channel] = _SellerMwisCache(
                market.graph(channel).adjacency_bits,
                market.channel_prices(channel),
            )
        return _seller_select_fast(
            cache,
            kernel,
            cache._adjacency_bits,
            pool,
            incumbent,
            monotone_guard,
        )

    # Algorithm 1, lines 1-3: initialise waitlists and unproposed lists.
    unproposed: List[List[int]] = [
        buyer_preference_order(market, j) for j in range(num_buyers)
    ]
    waitlists: List[Set[int]] = [set() for _ in range(market.num_channels)]
    matched_to: List[Optional[int]] = [None] * num_buyers

    rounds: List[StageOneRound] = []
    num_rounds = 0
    total_proposals = 0

    while True:
        # Line 4: continue while some unmatched buyer can still propose.
        proposers = [
            j for j in range(num_buyers) if matched_to[j] is None and unproposed[j]
        ]
        if not proposers:
            break
        num_rounds += 1

        # Lines 5-10: every such buyer proposes to her best remaining channel.
        proposals: Dict[int, List[int]] = {}
        for j in proposers:
            channel = unproposed[j].pop(0)
            proposals.setdefault(channel, []).append(j)
            total_proposals += 1

        # Lines 11-14: sellers with proposers re-form their waitlists.
        evictions: List[Tuple[int, int]] = []
        rejections: List[Tuple[int, int]] = []
        for channel in sorted(proposals):
            fresh = proposals[channel]
            pool = sorted(waitlists[channel] | set(fresh))
            incumbent = sorted(waitlists[channel])
            if observing:
                with rec.span("stage1.mwis"), mwis_timer:
                    selected = set(select_coalition(channel, pool, incumbent))
            else:
                selected = set(select_coalition(channel, pool, incumbent))
            for j in waitlists[channel] - selected:
                matched_to[j] = None
                evictions.append((j, channel))
            for j in fresh:
                if j not in selected:
                    rejections.append((j, channel))
            for j in selected:
                matched_to[j] = channel
            waitlists[channel] = selected

        if record_trace or emitting:
            record = StageOneRound(
                round_index=num_rounds,
                proposals={
                    channel: tuple(sorted(buyers))
                    for channel, buyers in proposals.items()
                },
                waitlists={
                    channel: tuple(sorted(members))
                    for channel, members in enumerate(waitlists)
                    if members
                },
                evictions=tuple(sorted(evictions)),
                rejections=tuple(sorted(rejections)),
            )
            if record_trace:
                rounds.append(record)
            if emitting:
                rec.events.emit(round_to_event(record))
        if observing:
            rec.metrics.counter("stage1.evictions").inc(len(evictions))
            rec.metrics.counter("stage1.rejections").inc(len(rejections))

    # Lines 16-25: materialise mu from the final waitlists.
    matching = Matching(market.num_channels, num_buyers)
    for channel, members in enumerate(waitlists):
        matching.set_coalition(channel, members)

    return StageOneResult(
        matching=matching,
        rounds=tuple(rounds),
        num_rounds=num_rounds,
        total_proposals=total_proposals,
    )
