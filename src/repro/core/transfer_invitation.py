"""Stage II: transfer and invitation (Algorithm 2 of the paper).

Stage I's output is interference-free but generally *not* stable: the peer
effect means a buyer rejected in the presence of an interfering rival may
become acceptable later, after that rival moved elsewhere.  Stage II
repairs this in two phases:

* **Phase 1 -- Transfer.**  Every buyer applies, in preference order, to
  the sellers she strictly prefers to her current match (``T_j`` of
  Algorithm 2, line 3).  A seller never evicts anyone in this stage: she
  accepts the most valuable set of applicants that is compatible with her
  current coalition (an MWIS among the compatible applicants), and records
  the rejected applicants on her *invitation list*.  No Ping-Pong is
  possible because each buyer applies at most once per seller.

* **Phase 2 -- Invitation.**  Once transfers settle, a seller whose
  coalition shrank may be able to host buyers she rejected earlier.  Each
  seller screens her invitation list down to buyers compatible with her
  current coalition, then invites them in descending price order; a buyer
  accepts iff the inviting seller is strictly better than her current
  match.  Phase 2 opportunities are rare (Section V-C) but necessary for
  Nash stability (Proposition 4).

Implementation notes (documented deviations, see DESIGN.md):

* ``T_j`` is fixed when Phase 1 starts, but a buyer skips (rather than
  sends) applications to sellers no longer better than her *current* match
  -- otherwise a literal reading would let a buyer "transfer" downwards
  after an earlier transfer succeeded.
* Accepting a transfer or invitation removes the buyer from her previous
  coalition (required for ``mu`` consistency).
* At invitation-sending time the seller re-checks compatibility against
  her *current* coalition; entries invalidated by later acceptances are
  dropped instead of invited.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.preferences import preferred_channels_above
from repro.core.trace import InvitationRound, TransferRound
from repro.interference.mwis import mwis_solve
from repro.obs.events import round_to_event
from repro.obs.recorder import Recorder, resolve_recorder

__all__ = ["StageTwoResult", "transfer_and_invitation"]

#: Shared stateless no-op context manager (the unobserved fast path).
_NULL_CM = nullcontext()


@dataclass(frozen=True)
class StageTwoResult:
    """Outcome of Stage II.

    Attributes
    ----------
    matching:
        Final matching after both phases (interference-free).
    matching_after_phase1:
        Snapshot taken between the phases, for per-phase welfare accounting
        (Fig. 7 plots the cumulative welfare of Stage I / Phase 1 / Phase 2).
    transfer_rounds / invitation_rounds:
        Per-round trace records (empty when ``record_trace=False``).
    num_transfer_rounds / num_invitation_rounds:
        Round counts -- the phases' running times in time slots (Fig. 8).
    """

    matching: Matching
    matching_after_phase1: Matching
    transfer_rounds: Tuple[TransferRound, ...]
    invitation_rounds: Tuple[InvitationRound, ...]
    num_transfer_rounds: int
    num_invitation_rounds: int


def _accept_best_applicants(
    market: SpectrumMarket,
    coalition_snapshot: frozenset,
    channel: int,
    applicants: List[int],
) -> Tuple[List[int], List[int]]:
    """Split applicants into (accepted, rejected) for one seller.

    The seller keeps her whole current coalition and adds the most valuable
    interference-free set of applicants compatible with it (Algorithm 2,
    lines 12-15).  Decisions are taken against the *round-start* coalition
    snapshot: all sellers decide simultaneously, exactly like the paper's
    toy example where seller ``c`` rejects buyer 5 against her pre-transfer
    coalition even though buyer 2 leaves ``c`` in the same round.  The
    snapshot is a superset of the members who actually remain, so accepted
    sets stay interference-free.
    """
    graph = market.graph(channel)
    compatible = graph.independent_subset_greedily_compatible(
        coalition_snapshot, applicants
    )
    prices = market.channel_prices(channel)
    weights = {j: float(prices[j]) for j in compatible}
    accepted = mwis_solve(graph, weights, compatible, market.mwis_algorithm)
    accepted_set = set(accepted)
    rejected = [j for j in applicants if j not in accepted_set]
    return accepted, rejected


def transfer_and_invitation(
    market: SpectrumMarket,
    matching: Matching,
    record_trace: bool = True,
    recorder: Optional[Recorder] = None,
) -> StageTwoResult:
    """Run Stage II (Algorithm 2) starting from a Stage-I matching.

    The input matching is not mutated; a copy is evolved and returned.

    Parameters
    ----------
    market:
        The virtual-level spectrum market.
    matching:
        Stage I's interference-free matching.
    record_trace:
        Keep per-round trace records (disable for large sweeps).
    recorder:
        Observability backend (``None`` resolves to the ambient recorder).
        When live, the stage runs under a ``stage2`` span with
        ``stage2.transfer`` / ``stage2.invitation`` phase children, each
        round is emitted as a ``stage2.transfer_round`` /
        ``stage2.invitation_round`` event, and accept/reject counters
        accumulate in the metrics registry.
    """
    rec = resolve_recorder(recorder)
    if not rec.enabled:
        return _transfer_and_invitation_impl(market, matching, record_trace)
    with rec.span("stage2"):
        result = _transfer_and_invitation_impl(
            market, matching, record_trace, rec
        )
    metrics = rec.metrics
    if metrics.enabled:
        metrics.counter("stage2.transfer_rounds").inc(
            result.num_transfer_rounds
        )
        metrics.counter("stage2.invitation_rounds").inc(
            result.num_invitation_rounds
        )
    return result


def _transfer_and_invitation_impl(
    market: SpectrumMarket,
    matching: Matching,
    record_trace: bool = True,
    rec: Optional[Recorder] = None,
) -> StageTwoResult:
    observing = rec is not None and rec.enabled
    emitting = observing and rec.events.enabled
    mu = matching.copy()
    utilities = market.utilities

    # ------------------------------------------------------------------
    # Phase 1: transfer (Algorithm 2, lines 4-17)
    # ------------------------------------------------------------------
    unapplied: List[List[int]] = []
    for j in range(market.num_buyers):
        baseline = mu.buyer_utility(j, utilities)
        unapplied.append(preferred_channels_above(market, j, baseline))

    invitation_lists: List[List[int]] = [[] for _ in range(market.num_channels)]
    transfer_rounds: List[TransferRound] = []
    num_transfer_rounds = 0

    phase1_span = rec.span("stage2.transfer") if observing else _NULL_CM
    with phase1_span:
        while True:
            # Each buyer with a non-empty unapplied list sends one
            # application, skipping channels that are stale (no longer
            # strictly better than her current match).
            applications: Dict[int, List[int]] = {}
            for j in range(market.num_buyers):
                queue = unapplied[j]
                current_value = mu.buyer_utility(j, utilities)
                while queue and utilities[j, queue[0]] <= current_value:
                    queue.pop(0)
                if queue:
                    channel = queue.pop(0)
                    applications.setdefault(channel, []).append(j)
            if not applications:
                break
            num_transfer_rounds += 1

            # All sellers decide against the round-start snapshot, then
            # moves are applied together (simultaneous rounds, Section IV's
            # time-slot model).  Each buyer applies to at most one seller
            # per round, so no buyer can be accepted twice.
            snapshots = {
                channel: mu.coalition(channel) for channel in applications
            }
            accepted_moves: List[Tuple[int, int, int]] = []
            rejected_apps: List[Tuple[int, int]] = []
            pending_moves: List[Tuple[int, int]] = []
            for channel in sorted(applications):
                applicants = applications[channel]
                accepted, rejected = _accept_best_applicants(
                    market, snapshots[channel], channel, applicants
                )
                for j in accepted:
                    pending_moves.append((j, channel))
                for j in rejected:
                    invitation_lists[channel].append(j)
                    rejected_apps.append((j, channel))
            for j, channel in pending_moves:
                previous = mu.channel_of(j)
                mu.move(j, channel)
                accepted_moves.append(
                    (j, previous if previous is not None else -1, channel)
                )

            if record_trace or emitting:
                record = TransferRound(
                    round_index=num_transfer_rounds,
                    applications={
                        channel: tuple(sorted(buyers))
                        for channel, buyers in applications.items()
                    },
                    accepted=tuple(sorted(accepted_moves)),
                    rejected=tuple(sorted(rejected_apps)),
                )
                if record_trace:
                    transfer_rounds.append(record)
                if emitting:
                    rec.events.emit(round_to_event(record))
            if observing:
                rec.metrics.counter("stage2.transfers_accepted").inc(
                    len(accepted_moves)
                )
                rec.metrics.counter("stage2.transfers_rejected").inc(
                    len(rejected_apps)
                )

    matching_after_phase1 = mu.copy()

    # ------------------------------------------------------------------
    # Phase 2: invitation (Algorithm 2, lines 18-33)
    # ------------------------------------------------------------------
    # Line 19-21: screen invitation lists against the post-Phase-1
    # coalitions, dropping duplicates while preserving first-seen order.
    screened: List[List[int]] = []
    for channel in range(market.num_channels):
        graph = market.graph(channel)
        coalition = mu.coalition(channel)
        seen: Set[int] = set()
        keep: List[int] = []
        for j in invitation_lists[channel]:
            if j in seen:
                continue
            seen.add(j)
            if j in coalition:
                continue
            if not graph.conflicts_with_set(j, coalition):
                keep.append(j)
        screened.append(keep)

    invitation_rounds: List[InvitationRound] = []
    num_invitation_rounds = 0

    phase2_span = rec.span("stage2.invitation") if observing else _NULL_CM
    with phase2_span:
        while any(screened):
            num_invitation_rounds += 1
            sent: List[Tuple[int, int]] = []
            accepted_moves = []
            declined: List[Tuple[int, int]] = []
            for channel in range(market.num_channels):
                pool = screened[channel]
                if not pool:
                    continue
                prices = market.channel_prices(channel)
                # Line 24: invite the highest-price listed buyer (ties by
                # id).
                j = max(pool, key=lambda b: (prices[b], -b))
                pool.remove(j)
                graph = market.graph(channel)
                coalition = mu.coalition(channel)
                if j in coalition or graph.conflicts_with_set(j, coalition):
                    # Invalidated by an acceptance since screening; drop
                    # silently (the seller would not send a self-defeating
                    # invitation).
                    continue
                sent.append((channel, j))
                # Lines 26-30: the buyer accepts iff strictly better off.
                if utilities[j, channel] > mu.buyer_utility(j, utilities):
                    previous = mu.channel_of(j)
                    mu.move(j, channel)
                    accepted_moves.append(
                        (j, previous if previous is not None else -1, channel)
                    )
                    # Line 29: drop the new member's interfering neighbours.
                    screened[channel] = [
                        k for k in pool if not graph.interferes(j, k)
                    ]
                else:
                    declined.append((channel, j))

            if record_trace or emitting:
                record = InvitationRound(
                    round_index=num_invitation_rounds,
                    invitations=tuple(sorted(sent)),
                    accepted=tuple(sorted(accepted_moves)),
                    declined=tuple(sorted(declined)),
                )
                if record_trace:
                    invitation_rounds.append(record)
                if emitting:
                    rec.events.emit(round_to_event(record))
            if observing:
                rec.metrics.counter("stage2.invitations_sent").inc(len(sent))
                rec.metrics.counter("stage2.invitations_accepted").inc(
                    len(accepted_moves)
                )
                rec.metrics.counter("stage2.invitations_declined").inc(
                    len(declined)
                )

    return StageTwoResult(
        matching=mu,
        matching_after_phase1=matching_after_phase1,
        transfer_rounds=tuple(transfer_rounds),
        invitation_rounds=tuple(invitation_rounds),
        num_transfer_rounds=num_transfer_rounds,
        num_invitation_rounds=num_invitation_rounds,
    )
