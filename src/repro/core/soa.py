"""Struct-of-arrays (SoA) Stage I: batched deferred acceptance.

The scalar Stage-I loop in :mod:`repro.core.deferred_acceptance` solves
each seller's MWIS one at a time in Python.  This module keeps the same
algorithm but holds the hot state in contiguous numpy arrays -- buyer
preference matrices, per-seller packed adjacency rows, waitlist
membership -- and advances *all* sellers of a proposal round through one
vectorised score/pick/removal loop.

Equivalence contract
--------------------
The batched kernels reproduce the bitset kernels' selections exactly,
not merely equivalently:

* GWMIN scores are ``w / (deg + 1.0)`` -- the identical two IEEE-754
  operations per node, on the identical operand bits.
* GWMIN2 closed-neighbourhood weights are initialised by an
  ascending-index sequential sum (``np.cumsum`` is a left-associated
  running sum; interleaved ``+ 0.0`` terms for non-neighbours do not
  change any bit of a finite partial sum) and decremented one removed
  node at a time in ascending buyer order, exactly like the scalar
  ``on_remove`` callback.
* Ties break to the smallest buyer index: pool arrays are kept in
  ascending buyer order, so a first-occurrence ``reduceat`` argmax is
  the same tie-break as the scalar lazy-heap ``(-score, j)`` pop.
* Isolated harvest: a node with no alive pool neighbours can never be
  removed by another pick and its own removal touches no score, so all
  such nodes are moved to the coalition eagerly.  The contested pick
  sequence -- and therefore every score mutation -- is unchanged, which
  keeps the final selection byte-identical while collapsing sparse
  pools in O(1) iterations.

The path is gated by ``SPECTRUM_FAST_KERNELS`` (shared with the bitset
kernels) plus its own ``SPECTRUM_BATCH_STAGE1`` escape hatch, and only
covers the algorithms with batched kernels (GWMIN, GWMIN2); everything
else falls back to the scalar paths.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.trace import StageOneRound
from repro.interference.mwis import MwisAlgorithm
from repro.obs.events import round_to_event
from repro.obs.recorder import Recorder

__all__ = [
    "BATCH_STAGE1_ENV",
    "BATCHED_ALGORITHMS",
    "COST_COUNTERS",
    "MarketSoA",
    "SellerPoolCache",
    "batch_stage1_enabled",
    "batched_deferred_acceptance",
]

#: Environment toggle for the batched SoA Stage-I path.  ``"0"`` falls
#: back to the scalar per-seller kernels; anything else (including
#: unset) keeps batching on.  Read per call so tests can flip it.
BATCH_STAGE1_ENV = "SPECTRUM_BATCH_STAGE1"

#: MWIS algorithms with a batched SoA kernel.
BATCHED_ALGORITHMS = (MwisAlgorithm.GWMIN, MwisAlgorithm.GWMIN2)

_ONE = np.uint64(1)
_LOW6 = np.uint64(63)

#: Deterministic cost counters for the batched SoA kernel: machine-
#: independent operation counts accumulated by every solve and
#: read/reset by :mod:`repro.prof.counters`.  Two same-seed runs must
#: show identical values; a drift is an algorithmic change, not noise.
COST_COUNTERS: Dict[str, int] = {
    "soa.mwis_iter_ops": 0,
    "soa.popcount_word_ops": 0,
    "soa.reduceat_row_ops": 0,
    "soa.compaction_ops": 0,
    "soa.isolated_harvest_ops": 0,
    "soa.pick_ops": 0,
    "soa.cache_departed_ops": 0,
    "soa.cache_arrived_ops": 0,
}


def batch_stage1_enabled() -> bool:
    """Whether the batched SoA Stage-I path is enabled (default yes)."""
    return os.environ.get(BATCH_STAGE1_ENV, "1") != "0"


if hasattr(np, "bitwise_count"):

    def _popcount(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words)

else:  # pragma: no cover - numpy < 2.0 fallback

    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount(words: np.ndarray) -> np.ndarray:
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return _POP8[as_bytes].reshape(words.shape + (8,)).sum(axis=-1)


def _slot_words_bits(slots: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Word index and bit mask for each slot (64-bit packed layout)."""
    return (slots >> 6).astype(np.intp), _ONE << (
        slots.astype(np.uint64) & _LOW6
    )


def _mask_words(slots: np.ndarray, words: int) -> np.ndarray:
    """Packed 64-bit word mask with the given slot bits set."""
    bits = np.zeros(words * 64, dtype=bool)
    bits[slots] = True
    return np.packbits(bits, bitorder="little").view(np.uint64)


#: Markets up to this many buyers use the dense id-space pool layout
#: (a packed ``N x N`` adjacency per channel, ~2 MiB at the threshold);
#: larger markets fall back to slot-compacted CSR-linked rows that never
#: materialise anything dense in ``N``.
DENSE_POOL_THRESHOLD = 4096


class SellerPoolCache:
    """Slot-stable packed pool state for one seller's candidate pools.

    The numpy analogue of the scalar ``_SellerMwisCache``: between
    consecutive rounds a seller's pool changes only by the departed
    (evicted/rejected) members and the fresh proposers, so the packed
    pool-local adjacency rows are maintained by delta instead of being
    rebuilt from the channel graph every round.

    Members occupy *slots* -- indices into fixed arrays.  ``rows[s]`` is
    member ``s``'s neighbourhood within the current pool as packed
    64-bit words over slot indices.  Two layouts share the interface
    (``slot_of``, ``ids``, ``weights``, ``rows``, ``words``):

    * **dense** (``N <= DENSE_POOL_THRESHOLD``): slots *are* buyer ids.
      Rows live in a fixed ``(N, ceil(N/64))`` table and the update is a
      direct transcription of the scalar cache's delta formula,
      ``row = (row & ~departed) | (adjacency & arrived)``, on the
      channel graph's packed adjacency matrix -- a few word-wide
      vectorised ops per round.
    * **sparse** (large ``N``): slots are recycled pool-local indices,
      so nothing dense in ``N`` is ever built.  A departure clears its
      slot's column from every row and frees the slot; an arrival takes
      the lowest free slot and links both directions from the channel
      graph's CSR neighbour lists.

    Weights (the buyer's offered channel price) are immutable per
    market, so they are never invalidated.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_adj",
        "_prices",
        "_member",
        "_pool_words",
        "num_buyers",
        "dense",
        "slot_of",
        "capacity",
        "words",
        "rows",
        "ids",
        "weights",
        "member",
        "_free",
    )

    def __init__(
        self, graph, prices, dense_threshold: Optional[int] = None
    ) -> None:
        if dense_threshold is None:
            # Resolved at call time (not def time) so tests can
            # monkeypatch the module constant to force the sparse
            # layout on small markets.
            dense_threshold = DENSE_POOL_THRESHOLD
        self._prices = np.asarray(prices, dtype=np.float64)
        num_buyers = graph.num_buyers
        self.num_buyers = num_buyers
        self.dense = num_buyers <= dense_threshold
        if self.dense:
            self.words = (num_buyers + 63) // 64 if num_buyers else 1
            self._adj = graph.packed_rows()
            self.rows = np.zeros((num_buyers, self.words), dtype=np.uint64)
            self.slot_of = np.arange(num_buyers, dtype=np.int32)
            self.ids = np.arange(num_buyers, dtype=np.int64)
            self.weights = self._prices
            self._member = np.zeros(num_buyers, dtype=bool)
            self._pool_words = np.zeros(self.words, dtype=np.uint64)
            return
        self._indptr, self._indices = graph.neighbor_csr()
        self.slot_of = np.full(num_buyers, -1, dtype=np.int32)
        self.capacity = 64
        self.words = 1
        self.rows = np.zeros((64, 1), dtype=np.uint64)
        self.ids = np.full(64, -1, dtype=np.int64)
        self.weights = np.zeros(64, dtype=np.float64)
        self.member = np.zeros(64, dtype=bool)
        self._free = list(range(63, -1, -1))

    def _grow(self) -> None:
        old_cap, old_words = self.capacity, self.words
        new_cap = old_cap * 2
        new_words = new_cap // 64
        rows = np.zeros((new_cap, new_words), dtype=np.uint64)
        rows[:old_cap, :old_words] = self.rows
        self.rows = rows
        self.ids = np.concatenate(
            [self.ids, np.full(old_cap, -1, dtype=np.int64)]
        )
        self.weights = np.concatenate(
            [self.weights, np.zeros(old_cap, dtype=np.float64)]
        )
        self.member = np.concatenate(
            [self.member, np.zeros(old_cap, dtype=bool)]
        )
        # Lowest slots are handed out first, keeping the active slot
        # range (and therefore the packed row width the solver touches)
        # as small as the largest pool seen so far.
        self._free.extend(range(new_cap - 1, old_cap - 1, -1))
        self.capacity, self.words = new_cap, new_words

    def update(self, pool: np.ndarray) -> None:
        """Apply the delta from the cached pool to ``pool`` (ascending ids)."""
        if self.dense:
            self._update_dense(pool)
        else:
            self._update_sparse(pool)

    def _update_dense(self, pool: np.ndarray) -> None:
        member = self._member
        new_member = np.zeros(self.num_buyers, dtype=bool)
        new_member[pool] = True
        departed = np.flatnonzero(member & ~new_member)
        arrivals = pool[~member[pool]]
        remain = np.flatnonzero(member & new_member)
        COST_COUNTERS["soa.cache_departed_ops"] += int(departed.size)
        COST_COUNTERS["soa.cache_arrived_ops"] += int(arrivals.size)
        rows, adj, words = self.rows, self._adj, self.words
        pool_words = self._pool_words
        dep_words = arr_words = None
        if departed.size:
            dep_words = _mask_words(departed, words)
            pool_words &= ~dep_words
        if arrivals.size:
            arr_words = _mask_words(arrivals, words)
            pool_words |= arr_words
        if remain.size:
            # The scalar cache's delta formula, one vectorised pass over
            # the surviving members' rows.
            if departed.size and arrivals.size:
                rows[remain] = (rows[remain] & ~dep_words) | (
                    adj[remain] & arr_words
                )
            elif departed.size:
                rows[remain] &= ~dep_words
            elif arrivals.size:
                rows[remain] |= adj[remain] & arr_words
        if arrivals.size:
            rows[arrivals] = adj[arrivals] & pool_words
        self._member = new_member

    def _update_sparse(self, pool: np.ndarray) -> None:
        slot_of = self.slot_of
        slots = slot_of[pool]
        missing = slots < 0
        current = np.flatnonzero(self.member)
        if current.size:
            keep = np.zeros(self.capacity, dtype=bool)
            keep[slots[~missing]] = True
            departed = current[~keep[current]]
        else:
            departed = current
        COST_COUNTERS["soa.cache_departed_ops"] += int(departed.size)
        if departed.size:
            self.member[departed] = False
            slot_of[self.ids[departed]] = -1
            self.ids[departed] = -1
            clear = _mask_words(departed, self.words)
            np.bitwise_and(self.rows, ~clear, out=self.rows)
            self.rows[departed] = 0
            self._free.extend(departed.tolist())
        arrivals = pool[missing]
        COST_COUNTERS["soa.cache_arrived_ops"] += int(arrivals.size)
        if arrivals.size:
            while len(self._free) < arrivals.size:
                self._grow()
            free = self._free
            new_slots = np.array(
                [free.pop() for _ in range(arrivals.size)], dtype=np.int64
            )
            self.ids[new_slots] = arrivals
            self.weights[new_slots] = self._prices[arrivals]
            self.member[new_slots] = True
            slot_of[arrivals] = new_slots
            self._link_arrivals(arrivals, new_slots)

    def _link_arrivals(
        self, arrivals: np.ndarray, new_slots: np.ndarray
    ) -> None:
        """Set both directions of every arrival-member adjacency bit.

        All arrivals are marked members before linking, so arrival-
        arrival edges are seen from both endpoints (idempotent OR) and
        never missed.  The ragged per-arrival neighbour lists from the
        channel CSR are flattened into one (source slot, neighbour slot)
        pair list, then both bit directions are materialised through
        boolean matrices + ``packbits`` -- no per-arrival Python loop.
        """
        indptr, indices, rows = self._indptr, self._indices, self.rows
        counts = indptr[arrivals + 1] - indptr[arrivals]
        total = int(counts.sum())
        if total == 0:
            return
        rep = np.repeat(np.arange(arrivals.size, dtype=np.int64), counts)
        ends = np.cumsum(counts)
        flat = (
            np.arange(total, dtype=np.int64)
            - (ends - counts)[rep]
            + indptr[arrivals][rep]
        )
        ns = self.slot_of[indices[flat]]
        valid = ns >= 0
        if not valid.any():
            return
        ns = ns[valid].astype(np.int64)
        rep = rep[valid]
        own = new_slots[rep]
        bits = self.words * 64
        forward = np.zeros((arrivals.size, bits), dtype=bool)
        forward[rep, ns] = True
        rows[new_slots] |= np.packbits(
            forward, axis=1, bitorder="little"
        ).view(np.uint64)
        touched, inverse = np.unique(ns, return_inverse=True)
        reverse = np.zeros((touched.size, bits), dtype=bool)
        reverse[inverse, own] = True
        rows[touched] |= np.packbits(
            reverse, axis=1, bitorder="little"
        ).view(np.uint64)


def _batched_mwis(
    algorithm: MwisAlgorithm,
    caches: Sequence[SellerPoolCache],
    pools: Sequence[np.ndarray],
) -> List[np.ndarray]:
    """Solve every segment's greedy MWIS in one vectorised loop.

    ``pools[s]`` is segment ``s``'s candidate pool as ascending buyer
    ids, already applied to ``caches[s]`` via :meth:`SellerPoolCache.update`
    (the pool may also be a subset of the cache's members, as in the
    monotone guard's extension solve).  Returns the chosen buyers per
    segment, ascending.
    """
    num_segments = len(pools)
    if num_segments == 0:
        return []
    gwmin2 = algorithm is MwisAlgorithm.GWMIN2

    sizes = [pool.size for pool in pools]
    slot_list = [
        cache.slot_of[pool].astype(np.int64)
        for cache, pool in zip(caches, pools)
    ]
    width = max(int(s.max()) // 64 + 1 for s in slot_list)

    total = sum(sizes)
    rows_g = np.zeros((total, width), dtype=np.uint64)
    alive = np.zeros((num_segments, width), dtype=np.uint64)
    offsets = np.zeros(num_segments + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    slots = np.concatenate(slot_list)
    ids = np.concatenate(pools)
    seg_id = np.repeat(np.arange(num_segments, dtype=np.int64), sizes)
    weights = np.concatenate(
        [
            cache.weights[slot_seg]
            for cache, slot_seg in zip(caches, slot_list)
        ]
    )
    for s in range(num_segments):
        cache, slot_seg = caches[s], slot_list[s]
        nw = int(slot_seg.max()) // 64 + 1
        rows_g[offsets[s] : offsets[s + 1], :nw] = cache.rows[slot_seg, :nw]
        alive[s] = _mask_words(slot_seg, width)
    wq, bit = _slot_words_bits(slots)

    closed = None
    if gwmin2:
        # Closed-neighbourhood weights, initialised per segment by the
        # ascending-buyer sequential sum the scalar kernel performs.
        closed = np.empty(total, dtype=np.float64)
        for s in range(num_segments):
            s0, s1 = int(offsets[s]), int(offsets[s + 1])
            slot_seg = slots[s0:s1]
            w_seg = weights[s0:s1]
            sub = rows_g[s0:s1][:, (slot_seg >> 6).astype(np.intp)]
            nbr = (sub >> (slot_seg.astype(np.uint64) & _LOW6)) & _ONE
            contrib = nbr.astype(np.float64) * w_seg[np.newaxis, :]
            acc = np.cumsum(contrib, axis=1)
            closed[s0:s1] = w_seg + acc[:, -1]

    chosen_ids: List[np.ndarray] = []
    chosen_seg: List[np.ndarray] = []

    def seg_bounds() -> np.ndarray:
        cuts = np.flatnonzero(np.diff(seg_id)) + 1
        return np.concatenate(
            [[0], cuts, [seg_id.size]]
        ).astype(np.int64)

    bounds = offsets
    starts = bounds[:-1]
    span = np.diff(bounds)
    positions = np.arange(slots.size, dtype=np.int64)
    iters = popcount_words = reduceat_rows = 0
    compactions = harvested = picked = 0
    while True:
        alive_m = (alive[seg_id, wq] & bit) != 0
        alive_count = int(np.count_nonzero(alive_m))
        if alive_count == 0:
            break
        iters += 1
        # Compaction: drop dead members (and finished segments) from the
        # working arrays once most of them are gone, so late iterations
        # only touch the still-contested tail.
        if slots.size > 256 and alive_count * 2 < slots.size:
            compactions += 1
            keep = alive_m
            slots, ids = slots[keep], ids[keep]
            seg_id, weights = seg_id[keep], weights[keep]
            rows_g = rows_g[keep]
            wq, bit = wq[keep], bit[keep]
            if closed is not None:
                closed = closed[keep]
            alive_m = alive_m[keep]
            bounds = seg_bounds()
            starts = bounds[:-1]
            span = np.diff(bounds)
            positions = np.arange(slots.size, dtype=np.int64)

        live = rows_g & alive[seg_id]
        if gwmin2:
            no_neighbour = ~live.any(axis=1)
        else:
            deg = _popcount(live).sum(axis=1).astype(np.int64)
            no_neighbour = deg == 0
            popcount_words += int(live.size)

        iso = alive_m & no_neighbour
        if iso.any():
            pos = np.flatnonzero(iso)
            harvested += int(pos.size)
            chosen_ids.append(ids[pos])
            chosen_seg.append(seg_id[pos])
            np.bitwise_xor.at(alive, (seg_id[pos], wq[pos]), bit[pos])
            alive_m[pos] = False
            if not alive_m.any():
                continue

        if gwmin2:
            score = np.zeros(slots.size, dtype=np.float64)
            positive = closed > 0.0
            np.divide(weights, closed, out=score, where=positive)
        else:
            score = weights / (deg + 1.0)
        masked = np.where(alive_m, score, -1.0)

        seg_max = np.maximum.reduceat(masked, starts)
        reduceat_rows += 2 * int(masked.size)  # max pass + min pass below
        active = seg_max >= 0.0
        if not active.any():  # pragma: no cover - alive members imply an
            break  # active segment; defensive against a stuck loop.
        cand = np.where(
            masked == np.repeat(seg_max, span), positions, slots.size
        )
        picks = np.minimum.reduceat(cand, starts)[active]

        chosen_ids.append(ids[picks])
        chosen_seg.append(seg_id[picks])
        picked += int(picks.size)
        pseg = seg_id[picks]
        before = alive[pseg]
        removed = rows_g[picks] & before
        removed[np.arange(picks.size), wq[picks]] |= bit[picks]
        alive[pseg] = before & ~removed

        if gwmin2 and picks.size:
            # Mirror the scalar on_remove exactly: every removed node,
            # in ascending buyer order, subtracts its weight from the
            # closed weight of each pool neighbour -- one scalar
            # subtraction per (removed, neighbour) pair.  The scalar
            # kernel only touches *alive* neighbours; decrementing dead
            # ones too is output-identical (a dead member's closed
            # weight is never read again) and saves the alive filter.
            # All per-pick bit decoding is batched across the picks of
            # this iteration; only the order-sensitive subtractions stay
            # in the Python loop.
            rbits = np.unpackbits(
                removed.view(np.uint8), axis=1, bitorder="little"
            )
            prow, rslot = np.nonzero(rbits)
            rcuts = np.searchsorted(prow, np.arange(picks.size + 1))
            lo_arr = np.searchsorted(seg_id, pseg)
            hi_arr = np.searchsorted(seg_id, pseg, side="right")
            rw_all = (rslot >> 6).astype(np.intp)
            rb_all = _ONE << (rslot.astype(np.uint64) & _LOW6)
            for a in range(picks.size):
                r0, r1 = int(rcuts[a]), int(rcuts[a + 1])
                if r1 - r0 <= 1:
                    continue
                cache = caches[int(pseg[a])]
                sl = rslot[r0:r1]
                rw, rb = rw_all[r0:r1], rb_all[r0:r1]
                if not cache.dense:
                    # Sparse slots are recycled, so ascending slot order
                    # is not ascending buyer order; dense slots are ids.
                    order = np.argsort(cache.ids[sl], kind="stable")
                    sl, rw, rb = sl[order], rw[order], rb[order]
                lo, hi = int(lo_arr[a]), int(hi_arr[a])
                touched = (rows_g[lo:hi][:, rw] & rb) != 0
                # Left-fold via cumsum: the reference applies
                # ``closed -= w_r`` per adjacent removed node in
                # ascending buyer order.  ``x + (-w) == x - w`` and
                # ``x + (-0.0) == x`` exactly in IEEE-754, so a single
                # row-wise cumsum over [closed, step_1, ..., step_R]
                # with -0.0 steps for non-neighbours reproduces the
                # sequential subtractions bit-for-bit.
                fold = np.empty((hi - lo, sl.size + 1), dtype=np.float64)
                fold[:, 0] = closed[lo:hi]
                np.multiply(touched, -cache.weights[sl], out=fold[:, 1:])
                np.cumsum(fold, axis=1, out=fold)
                closed[lo:hi] = fold[:, -1]

    counters = COST_COUNTERS
    counters["soa.mwis_iter_ops"] += iters
    counters["soa.popcount_word_ops"] += popcount_words
    counters["soa.reduceat_row_ops"] += reduceat_rows
    counters["soa.compaction_ops"] += compactions
    counters["soa.isolated_harvest_ops"] += harvested
    counters["soa.pick_ops"] += picked

    out: List[np.ndarray] = []
    if chosen_ids:
        all_ids = np.concatenate(chosen_ids)
        all_seg = np.concatenate(chosen_seg)
    else:
        all_ids = np.empty(0, dtype=np.int64)
        all_seg = np.empty(0, dtype=np.int64)
    for s in range(num_segments):
        sel = all_ids[all_seg == s]
        sel.sort()
        out.append(sel)
    return out


class MarketSoA:
    """Struct-of-arrays view of a market's Stage-I hot state.

    Holds the buyer-side preference arrays (``pref_order`` rows are each
    buyer's channels by descending utility, stable-tie-broken to the
    smallest channel index, matching ``buyer_preference_order``) and the
    per-seller :class:`SellerPoolCache` pool states, created lazily per
    channel exactly like the scalar cache dict.
    """

    __slots__ = ("market", "pref_order", "pref_len", "scratch", "_caches")

    def __init__(self, market: SpectrumMarket) -> None:
        self.market = market
        num_buyers = market.num_buyers
        num_channels = market.num_channels
        utilities = np.empty((num_buyers, num_channels), dtype=np.float64)
        for channel in range(num_channels):
            utilities[:, channel] = market.channel_prices(channel)
        self.pref_order = np.argsort(
            -utilities, axis=1, kind="stable"
        ).astype(np.int32)
        self.pref_len = np.count_nonzero(utilities > 0.0, axis=1).astype(
            np.int32
        )
        # Reusable membership scratchpad for set tests (callers must
        # reset the bits they set before returning).
        self.scratch = np.zeros(num_buyers, dtype=bool)
        self._caches: Dict[int, SellerPoolCache] = {}

    def cache(self, channel: int) -> SellerPoolCache:
        cache = self._caches.get(channel)
        if cache is None:
            cache = self._caches[channel] = SellerPoolCache(
                self.market.graph(channel),
                self.market.channel_prices(channel),
            )
        return cache


def _sum_weights(cache: SellerPoolCache, members: np.ndarray) -> float:
    """``sum(weights[j] for j in members)`` with Python-sum semantics."""
    return sum(cache.weights[cache.slot_of[members]].tolist())


def _select_coalitions(
    soa: MarketSoA,
    algorithm: MwisAlgorithm,
    segments: Sequence[Tuple[int, np.ndarray, np.ndarray, np.ndarray]],
    monotone_guard: bool,
) -> List[np.ndarray]:
    """Batched ``seller_select_coalition`` across one round's segments.

    Each segment is ``(channel, pool, waitlist, fresh)`` with ascending
    id arrays.  Applies the pool delta to each seller's cache, solves
    every primary MWIS in one batch, then (with the guard) every
    keep-and-extend alternative in a second batch, and compares values
    with the reference path's exact summation order.
    """
    caches = []
    pools = []
    for channel, pool, _waitlist, _fresh in segments:
        cache = soa.cache(channel)
        cache.update(pool)
        caches.append(cache)
        pools.append(pool)
    primary = _batched_mwis(algorithm, caches, pools)
    if not monotone_guard:
        return primary

    guarded = [i for i, seg in enumerate(segments) if seg[2].size]
    if not guarded:
        return primary

    ext_caches: List[SellerPoolCache] = []
    ext_pools: List[np.ndarray] = []
    ext_index: List[int] = []
    compat_of: Dict[int, np.ndarray] = {}
    for i in guarded:
        _channel, pool, waitlist, _fresh = segments[i]
        cache = caches[i]
        slots = cache.slot_of[pool]
        wl_slots = cache.slot_of[waitlist]
        inc_words = _mask_words(wl_slots, cache.words)
        conflict = (cache.rows[slots] & inc_words).any(axis=1)
        scratch = soa.scratch
        scratch[waitlist] = True
        in_incumbent = scratch[pool]
        scratch[waitlist] = False
        compat = pool[~in_incumbent & ~conflict]
        compat_of[i] = compat
        if compat.size:
            ext_caches.append(cache)
            ext_pools.append(compat)
            ext_index.append(i)
    extensions = dict(
        zip(ext_index, _batched_mwis(algorithm, ext_caches, ext_pools))
    )

    empty = np.empty(0, dtype=np.int64)
    out = list(primary)
    for i in guarded:
        _channel, _pool, waitlist, _fresh = segments[i]
        cache = caches[i]
        candidate = primary[i]
        extension = extensions.get(i, empty)
        candidate_value = _sum_weights(cache, candidate)
        incumbent_value = _sum_weights(cache, waitlist)
        extended_value = incumbent_value + _sum_weights(cache, extension)
        if extended_value > candidate_value:
            out[i] = np.sort(np.concatenate((waitlist, extension)))
    return out


def batched_deferred_acceptance(
    market: SpectrumMarket,
    record_trace: bool = True,
    monotone_guard: bool = True,
    rec: Optional[Recorder] = None,
):
    """SoA-batched Stage I; byte-identical to the scalar implementations.

    Drives the same round structure as ``_deferred_acceptance_impl`` --
    proposals, per-seller coalition re-formation, evictions/rejections,
    trace records -- with numpy array state and one batched MWIS solve
    per round (wrapped in a single ``stage1.mwis`` span covering all of
    the round's sellers).  Returns a ``StageOneResult``-compatible tuple
    of fields via the caller in :mod:`repro.core.deferred_acceptance`.
    """
    observing = rec is not None and rec.enabled
    emitting = observing and rec.events.enabled
    mwis_timer = rec.metrics.timer("stage1.mwis_solve_s") if observing else None

    soa = MarketSoA(market)
    num_buyers = market.num_buyers
    num_channels = market.num_channels
    algorithm = market.mwis_algorithm
    pref_order, pref_len = soa.pref_order, soa.pref_len

    cursor = np.zeros(num_buyers, dtype=np.int32)
    matched_to = np.full(num_buyers, -1, dtype=np.int32)
    empty = np.empty(0, dtype=np.int64)
    waitlists: List[np.ndarray] = [empty] * num_channels

    rounds: List[StageOneRound] = []
    num_rounds = 0
    total_proposals = 0

    while True:
        proposers = np.flatnonzero((matched_to < 0) & (cursor < pref_len))
        if proposers.size == 0:
            break
        num_rounds += 1
        total_proposals += int(proposers.size)

        chan = pref_order[proposers, cursor[proposers]].astype(np.int64)
        cursor[proposers] += 1
        order = np.argsort(chan, kind="stable")
        sorted_chan = chan[order]
        sorted_prop = proposers[order].astype(np.int64)
        cuts = np.flatnonzero(np.diff(sorted_chan)) + 1
        starts = np.concatenate([[0], cuts])
        ends = np.concatenate([cuts, [sorted_chan.size]])
        channels = sorted_chan[starts]

        segments = []
        for idx in range(channels.size):
            channel = int(channels[idx])
            fresh = sorted_prop[starts[idx] : ends[idx]]
            waitlist = waitlists[channel]
            # Fresh proposers are unmatched, so pool = waitlist | fresh
            # is a disjoint sorted merge.
            pool = np.sort(np.concatenate((waitlist, fresh)))
            segments.append((channel, pool, waitlist, fresh))

        if observing:
            with rec.span("stage1.mwis"), mwis_timer:
                selected = _select_coalitions(
                    soa, algorithm, segments, monotone_guard
                )
        else:
            selected = _select_coalitions(
                soa, algorithm, segments, monotone_guard
            )

        evicted_ids: List[np.ndarray] = []
        evicted_chan: List[int] = []
        rejected_ids: List[np.ndarray] = []
        rejected_chan: List[int] = []
        scratch = soa.scratch
        for (channel, _pool, waitlist, fresh), chosen in zip(
            segments, selected
        ):
            scratch[chosen] = True
            evicted = waitlist[~scratch[waitlist]]
            rejected = fresh[~scratch[fresh]]
            scratch[chosen] = False
            if evicted.size:
                matched_to[evicted] = -1
                evicted_ids.append(evicted)
                evicted_chan.append(channel)
            if rejected.size:
                rejected_ids.append(rejected)
                rejected_chan.append(channel)
            matched_to[chosen] = channel
            waitlists[channel] = chosen

        num_evictions = sum(arr.size for arr in evicted_ids)
        num_rejections = sum(arr.size for arr in rejected_ids)

        if record_trace or emitting:
            record = StageOneRound(
                round_index=num_rounds,
                proposals=_proposals_record(
                    channels, starts, ends, sorted_prop
                ),
                waitlists={
                    channel: tuple(waitlists[channel].tolist())
                    for channel in range(num_channels)
                    if waitlists[channel].size
                },
                evictions=_pairs_record(evicted_ids, evicted_chan),
                rejections=_pairs_record(rejected_ids, rejected_chan),
            )
            if record_trace:
                rounds.append(record)
            if emitting:
                rec.events.emit(round_to_event(record))
        if observing:
            rec.metrics.counter("stage1.evictions").inc(num_evictions)
            rec.metrics.counter("stage1.rejections").inc(num_rejections)

    matching = Matching(num_channels, num_buyers)
    for channel in range(num_channels):
        matching.set_coalition(channel, waitlists[channel].tolist())

    return matching, tuple(rounds), num_rounds, total_proposals


def _proposals_record(
    channels: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    sorted_prop: np.ndarray,
) -> Dict[int, Tuple[int, ...]]:
    """Round proposals keyed by channel, in first-proposer order.

    The scalar loop inserts a channel into its proposals dict when the
    smallest buyer proposing to it is reached, so the dict (and the
    golden trace JSON serialised from it) is ordered by each channel's
    minimum proposer.  ``sorted_prop`` slices are ascending already.
    """
    first_proposer = sorted_prop[starts]
    record: Dict[int, Tuple[int, ...]] = {}
    for idx in np.argsort(first_proposer, kind="stable").tolist():
        record[int(channels[idx])] = tuple(
            sorted_prop[starts[idx] : ends[idx]].tolist()
        )
    return record


def _pairs_record(
    id_arrays: List[np.ndarray], channel_of: List[int]
) -> Tuple[Tuple[int, int], ...]:
    """``(buyer, channel)`` pairs sorted like the scalar trace records.

    A buyer appears at most once per round (evicted from, or rejected
    by, exactly one channel), so sorting by buyer id alone reproduces
    ``tuple(sorted(pairs))``.
    """
    if not id_arrays:
        return ()
    buyers = np.concatenate(id_arrays)
    chans = np.concatenate(
        [
            np.full(arr.size, channel, dtype=np.int64)
            for arr, channel in zip(id_arrays, channel_of)
        ]
    )
    order = np.argsort(buyers, kind="stable")
    return tuple(
        zip(buyers[order].tolist(), chans[order].tolist())
    )
