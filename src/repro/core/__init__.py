"""Core spectrum-matching machinery: the paper's primary contribution.

Contents map directly onto the paper's sections:

* :mod:`~repro.core.market` -- the free spectrum market of Section II-A,
  including the dummy expansion of multi-channel sellers and multi-demand
  buyers into virtual one-channel participants.
* :mod:`~repro.core.matching` -- the matching function ``mu`` of
  Definition 1, kept bidirectionally consistent at all times.
* :mod:`~repro.core.coalition` / :mod:`~repro.core.preferences` -- spectrum
  coalitions and the preference relations of eqs. (5) and (6).
* :mod:`~repro.core.deferred_acceptance` -- Stage I, the adapted deferred
  acceptance of Algorithm 1.
* :mod:`~repro.core.transfer_invitation` -- Stage II, the transfer and
  invitation procedure of Algorithm 2.
* :mod:`~repro.core.two_stage` -- the complete two-stage pipeline with
  per-stage welfare/round accounting (used by the Fig. 7 / Fig. 8 benches).
* :mod:`~repro.core.stability` -- individual rationality, Nash stability
  (Definitions 2-3, Propositions 3-4) and the *negative* results of
  Section III-D (pairwise stability, buyer optimality).
"""

from repro.core.market import SpectrumMarket, PhysicalBuyer, PhysicalSeller
from repro.core.matching import Matching
from repro.core.coalition import Coalition, buyer_utility_in_coalition, seller_revenue
from repro.core.preferences import (
    buyer_prefers,
    seller_prefers,
    buyer_preference_order,
)
from repro.core.deferred_acceptance import deferred_acceptance, StageOneResult
from repro.core.transfer_invitation import transfer_and_invitation, StageTwoResult
from repro.core.two_stage import run_two_stage, TwoStageResult
from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
    nash_blocking_moves,
    pairwise_blocking_pairs,
    is_pairwise_stable,
    pareto_dominates_for_buyers,
)

__all__ = [
    "SpectrumMarket",
    "PhysicalBuyer",
    "PhysicalSeller",
    "Matching",
    "Coalition",
    "buyer_utility_in_coalition",
    "seller_revenue",
    "buyer_prefers",
    "seller_prefers",
    "buyer_preference_order",
    "deferred_acceptance",
    "StageOneResult",
    "transfer_and_invitation",
    "StageTwoResult",
    "run_two_stage",
    "TwoStageResult",
    "is_individually_rational",
    "is_nash_stable",
    "nash_blocking_moves",
    "pairwise_blocking_pairs",
    "is_pairwise_stable",
    "pareto_dominates_for_buyers",
]
