"""Round-by-round trace records for the matching algorithms.

Both stages of the algorithm (and the message-passing runtime built on top
of them) emit structured per-round records rather than log strings, so
tests can assert exact intermediate states -- e.g. the paper's toy example
(Figs. 1-2) is verified round by round -- and the analysis layer can count
rounds per stage for the Fig. 8 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "StageOneRound",
    "TransferRound",
    "InvitationRound",
]


@dataclass(frozen=True)
class StageOneRound:
    """One proposal round of Stage I (Algorithm 1).

    Attributes
    ----------
    round_index:
        1-based round counter (one round = one time slot, Section IV).
    proposals:
        ``{channel: [proposing buyers]}`` for this round, buyer ids sorted.
    waitlists:
        ``{channel: (waitlisted buyers,)}`` *after* the sellers' selections,
        for channels whose waitlist is non-empty.
    evictions:
        ``(buyer, channel)`` pairs evicted from a waitlist this round.
    rejections:
        ``(buyer, channel)`` pairs whose fresh proposal was declined this
        round (never waitlisted).
    """

    round_index: int
    proposals: Dict[int, Tuple[int, ...]]
    waitlists: Dict[int, Tuple[int, ...]]
    evictions: Tuple[Tuple[int, int], ...]
    rejections: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class TransferRound:
    """One round of Stage II Phase 1 (transfer applications).

    Attributes
    ----------
    round_index:
        1-based round counter within Phase 1.
    applications:
        ``{channel: (applying buyers,)}`` sent this round.
    accepted:
        ``(buyer, from_channel_or_minus_1, to_channel)`` transfers granted;
        ``-1`` marks a previously unmatched buyer.
    rejected:
        ``(buyer, channel)`` applications declined (buyer enters the
        seller's invitation list).
    """

    round_index: int
    applications: Dict[int, Tuple[int, ...]]
    accepted: Tuple[Tuple[int, int, int], ...]
    rejected: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class InvitationRound:
    """One round of Stage II Phase 2 (invitations).

    Attributes
    ----------
    round_index:
        1-based round counter within Phase 2.
    invitations:
        ``(channel, buyer)`` invitations sent this round.
    accepted:
        ``(buyer, from_channel_or_minus_1, to_channel)`` accepted invites.
    declined:
        ``(channel, buyer)`` invitations turned down (current match at
        least as good).
    """

    round_index: int
    invitations: Tuple[Tuple[int, int], ...]
    accepted: Tuple[Tuple[int, int, int], ...]
    declined: Tuple[Tuple[int, int], ...]
