"""Crash-consistent file writes shared by every artifact writer.

A process can die at any instruction -- SIGKILL, OOM, power loss -- and a
plain ``open(path, "w"); write()`` caught mid-flight leaves a *torn* file:
half a JSON document that poisons the next reader.  Every durable artifact
in this repo (experiment-row JSON, ``BENCH_*.json`` baselines, OpenMetrics
expositions, run-dir manifests and checkpoints) therefore goes through one
helper implementing the classic recipe:

1. write the full payload to a temporary file in the *same directory*
   (same filesystem, so the final rename cannot degrade to a copy);
2. flush and ``fsync`` the temporary file (the bytes are on disk, not in
   the page cache);
3. ``os.replace`` it over the destination -- atomic on POSIX and Windows,
   so any concurrent or post-crash reader sees either the complete old
   file or the complete new file, never a mixture;
4. best-effort ``fsync`` of the directory so the rename itself survives a
   power loss (skipped silently where directories cannot be opened, e.g.
   Windows).

Appending logs (the runtime WAL, JSONL traces) have different semantics
and are handled by their owners; the one append this module offers is
:func:`append_jsonl` -- whole-line durable appends for history files
like the benchmark trajectory, where a torn tail line is tolerable (a
reader skips it) but a lost fsync is not.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Union

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "append_jsonl",
    "canonical_json",
    "config_hash",
    "fsync_directory",
]

_PathLike = Union[str, "os.PathLike[str]"]


def fsync_directory(directory: _PathLike) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: _PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)


def atomic_write_text(
    path: _PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: _PathLike,
    payload: Any,
    indent: int = 2,
    sort_keys: bool = True,
) -> None:
    """Atomically replace ``path`` with ``payload`` serialised as JSON.

    Serialisation happens *before* the temporary file is created, so a
    non-serialisable payload raises without disturbing the existing file.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write_text(path, text + "\n")


def append_jsonl(path: _PathLike, payload: Any) -> None:
    """Durably append ``payload`` as one canonical-JSON line.

    The line is written in a single ``write`` call, flushed and fsynced,
    so concurrent appenders interleave at line granularity and a crash
    can at worst tear the final line -- which a JSONL reader skips --
    never corrupt earlier history.
    """
    line = canonical_json(payload) + "\n"
    with open(os.fspath(path), "a", encoding="utf-8") as handle:
        handle.write(line)
        handle.flush()
        os.fsync(handle.fileno())


def read_json(path: _PathLike) -> Any:
    """Load one JSON document (thin wrapper kept next to the writer)."""
    return json.loads(Path(os.fspath(path)).read_text(encoding="utf-8"))


def canonical_json(payload: Any) -> str:
    """The one canonical serialisation of a JSON-safe payload.

    Sorted keys, no whitespace: two payloads serialise identically if and
    only if they are equal, regardless of key insertion order.  This is
    the form every identity hash in the repo is computed over -- the
    durable-run manifest hash (:func:`config_hash`) and the
    :class:`repro.run.spec.RunSpec` spec hash are byte-compatible because
    both go through this function.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_hash(config: Any) -> str:
    """Stable short hash of a JSON-safe run configuration.

    Canonical-JSON SHA-256, truncated to 16 hex chars: enough to make
    collisions between *different* configs of the same repo vanishingly
    unlikely, short enough to read in error messages.  Key order never
    matters (see :func:`canonical_json`).
    """
    digest = hashlib.sha256(canonical_json(config).encode("utf-8"))
    return digest.hexdigest()[:16]
