"""Brute-force optimal matching (the paper's benchmark, footnote 4).

Enumerates every assignment of buyers to {channel 0, ..., channel M-1,
unmatched}, keeps the interference-feasible ones, and returns the welfare
maximiser.  The search space is ``(M+1)^N``, so this is only usable on the
small markets of Fig. 6 (``M <= 6``, ``N <= 10``) -- exactly the regime the
paper itself brute-forces ("we can only simulate small-scale spectrum
markets").  An explicit guard refuses anything larger.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.errors import SolverLimitExceeded

__all__ = ["optimal_matching_bruteforce", "DEFAULT_BRUTEFORCE_STATE_LIMIT"]

#: Refuse instances whose raw search space exceeds this many assignments.
DEFAULT_BRUTEFORCE_STATE_LIMIT = 5_000_000


def optimal_matching_bruteforce(
    market: SpectrumMarket,
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> Matching:
    """Solve the integer program (1)-(4) exhaustively.

    Parameters
    ----------
    market:
        The market instance.
    state_limit:
        Maximum allowed ``(M+1)^N``; exceeded instances raise
        :class:`~repro.errors.SolverLimitExceeded` rather than hanging.

    Returns
    -------
    Matching
        A welfare-maximising interference-free matching.  Among equal-value
        optima the first one in depth-first order (buyers assigned in index
        order, channels tried in ascending order, unmatched last) is
        returned, which makes results deterministic.
    """
    num_buyers = market.num_buyers
    num_channels = market.num_channels
    space = float(num_channels + 1) ** num_buyers
    if space > state_limit:
        raise SolverLimitExceeded(
            f"brute force would enumerate (M+1)^N = {space:.3g} assignments, "
            f"over the limit of {state_limit}; use branch and bound instead"
        )

    utilities = market.utilities
    graphs = [market.graph(i) for i in range(num_channels)]

    best_value = -1.0
    best_assignment: Optional[List[Optional[int]]] = None
    assignment: List[Optional[int]] = [None] * num_buyers
    coalitions: List[List[int]] = [[] for _ in range(num_channels)]

    def recurse(buyer: int, value: float) -> None:
        nonlocal best_value, best_assignment
        if buyer == num_buyers:
            if value > best_value:
                best_value = value
                best_assignment = list(assignment)
            return
        for channel in range(num_channels):
            if graphs[channel].conflicts_with_set(buyer, coalitions[channel]):
                continue
            assignment[buyer] = channel
            coalitions[channel].append(buyer)
            recurse(buyer + 1, value + float(utilities[buyer, channel]))
            coalitions[channel].pop()
            assignment[buyer] = None
        recurse(buyer + 1, value)  # leave the buyer unmatched

    recurse(0, 0.0)

    matching = Matching(num_channels, num_buyers)
    assert best_assignment is not None  # the all-unmatched assignment always exists
    for buyer, channel in enumerate(best_assignment):
        if channel is not None:
            matching.match(buyer, channel)
    return matching
