"""Exhaustive enumeration of Nash-stable matchings (small markets).

Definition 5 of the paper compares Nash-stable matchings by buyer-Pareto
dominance, and Section III-D shows the algorithm's output need not be
buyer-optimal among them.  For small markets we can make those statements
computational:

* :func:`enumerate_feasible_matchings` -- every interference-free
  matching (the search space of program (1)-(4));
* :func:`enumerate_nash_stable_matchings` -- the Nash-stable subset;
* :func:`buyer_optimal_nash_stable` -- the Pareto frontier of Definition
  5 (matchings not dominated by any other Nash-stable matching);
* :func:`price_of_nash_stability` -- best Nash-stable welfare divided by
  the unconstrained optimum, quantifying what stability costs.

All functions guard against combinatorial blow-up with the same
``(M+1)^N`` limit as the brute-force solver.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.stability import is_nash_stable, pareto_dominates_for_buyers
from repro.errors import SolverLimitExceeded
from repro.optimal.bruteforce import (
    DEFAULT_BRUTEFORCE_STATE_LIMIT,
    optimal_matching_bruteforce,
)

__all__ = [
    "enumerate_feasible_matchings",
    "enumerate_nash_stable_matchings",
    "enumerate_pairwise_stable_matchings",
    "find_pairwise_stable_matching",
    "buyer_optimal_nash_stable",
    "price_of_nash_stability",
]


def _check_size(market: SpectrumMarket, state_limit: int) -> None:
    space = float(market.num_channels + 1) ** market.num_buyers
    if space > state_limit:
        raise SolverLimitExceeded(
            f"enumeration would visit (M+1)^N = {space:.3g} assignments, "
            f"over the limit of {state_limit}"
        )


def enumerate_feasible_matchings(
    market: SpectrumMarket,
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> Iterator[Matching]:
    """Yield every interference-free matching of the market.

    Matchings are yielded in depth-first assignment order (buyer 0's
    channel varies slowest; ``unmatched`` is tried last for each buyer),
    so iteration order is deterministic.  The yielded objects are
    independent copies safe to store.
    """
    _check_size(market, state_limit)
    num_buyers = market.num_buyers
    num_channels = market.num_channels
    graphs = [market.graph(i) for i in range(num_channels)]
    assignment: List[Optional[int]] = [None] * num_buyers
    coalitions: List[List[int]] = [[] for _ in range(num_channels)]

    def recurse(buyer: int) -> Iterator[Matching]:
        if buyer == num_buyers:
            matching = Matching(num_channels, num_buyers)
            for j, channel in enumerate(assignment):
                if channel is not None:
                    matching.match(j, channel)
            yield matching
            return
        for channel in range(num_channels):
            if graphs[channel].conflicts_with_set(buyer, coalitions[channel]):
                continue
            assignment[buyer] = channel
            coalitions[channel].append(buyer)
            yield from recurse(buyer + 1)
            coalitions[channel].pop()
            assignment[buyer] = None
        yield from recurse(buyer + 1)  # unmatched branch

    return recurse(0)


def enumerate_nash_stable_matchings(
    market: SpectrumMarket,
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> Iterator[Matching]:
    """Yield every Nash-stable (Definition 3) feasible matching."""
    for matching in enumerate_feasible_matchings(market, state_limit):
        if is_nash_stable(market, matching):
            yield matching


def enumerate_pairwise_stable_matchings(
    market: SpectrumMarket,
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> Iterator[Matching]:
    """Yield every pairwise-stable (Definition 4) feasible matching.

    The paper proves its algorithm does not always *find* a pairwise
    stable matching; whether one always *exists* is left open.  This
    enumerator makes the question decidable per instance.  (On every
    Section V-A workload we have enumerated, at least one exists --
    the welfare-optimal matching is often but not always among them.)
    """
    from repro.core.stability import is_pairwise_stable

    for matching in enumerate_feasible_matchings(market, state_limit):
        if is_pairwise_stable(market, matching):
            yield matching


def find_pairwise_stable_matching(
    market: SpectrumMarket,
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> Optional[Matching]:
    """Return a welfare-maximal pairwise-stable matching, or ``None``.

    ``None`` would witness an instance of the spectrum-matching model
    with an *empty core-like set* -- none has been observed on the
    paper's workloads, but the checker keeps the question honest.
    """
    best: Optional[Matching] = None
    best_value = -1.0
    for matching in enumerate_pairwise_stable_matchings(market, state_limit):
        value = matching.social_welfare(market.utilities)
        if value > best_value:
            best_value = value
            best = matching
    return best


def buyer_optimal_nash_stable(
    market: SpectrumMarket,
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> List[Matching]:
    """Return the buyer-Pareto frontier of the Nash-stable set.

    These are exactly the matchings that are *buyer-optimal* in the sense
    of Definition 5: no other Nash-stable matching makes some buyer
    better off and none worse off.  The list is empty only if the market
    has no Nash-stable matching at all (which cannot happen: the
    algorithm's own output is one).
    """
    stable = list(enumerate_nash_stable_matchings(market, state_limit))
    frontier: List[Matching] = []
    for candidate in stable:
        dominated = any(
            pareto_dominates_for_buyers(market, other, candidate)
            for other in stable
            if other is not candidate
        )
        if not dominated:
            frontier.append(candidate)
    return frontier


def price_of_nash_stability(
    market: SpectrumMarket,
    state_limit: int = DEFAULT_BRUTEFORCE_STATE_LIMIT,
) -> Tuple[float, Matching]:
    """Best Nash-stable welfare over the unconstrained optimum.

    Returns ``(ratio, best_stable_matching)``.  A ratio of 1 means
    stability is free on this instance; the Section III-D counterexample
    has ratio 1 as well (its optimum happens to be Nash-stable), while
    instances exist where every Nash-stable matching loses welfare.
    """
    best_stable: Optional[Matching] = None
    best_value = -1.0
    for matching in enumerate_nash_stable_matchings(market, state_limit):
        value = matching.social_welfare(market.utilities)
        if value > best_value:
            best_value = value
            best_stable = matching
    assert best_stable is not None  # the empty matching is checked too
    optimum = optimal_matching_bruteforce(market, state_limit)
    optimum_value = optimum.social_welfare(market.utilities)
    ratio = best_value / optimum_value if optimum_value > 0 else 1.0
    return ratio, best_stable
