"""Centralised solvers and baselines for the optimal-matching benchmark.

The paper compares its distributed algorithm against the *optimal matching*
of Section II-B -- the NP-hard integer program (1)-(4) maximising social
welfare subject to one-channel-per-buyer and interference-freedom.  The
paper solves it by brute force on small markets (footnote 4); we provide:

* :func:`~repro.optimal.bruteforce.optimal_matching_bruteforce` -- the
  paper's approach, with an explicit instance-size guard;
* :func:`~repro.optimal.branch_and_bound.optimal_matching_branch_and_bound`
  -- an exact solver that scales noticeably further via pruning;
* :func:`~repro.optimal.lp_relaxation.lp_relaxation_bound` -- a polynomial
  upper bound on the optimum (scipy linprog), useful for sanity-checking
  the exact solvers and for larger instances;
* greedy / random / fixed-quota-deferred-acceptance baselines for the
  ablation benchmarks.
"""

from repro.optimal.bruteforce import optimal_matching_bruteforce
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.lp_relaxation import lp_relaxation_bound
from repro.optimal.greedy import greedy_centralized_matching
from repro.optimal.random_baseline import random_matching
from repro.optimal.college_admission import fixed_quota_deferred_acceptance

__all__ = [
    "optimal_matching_bruteforce",
    "optimal_matching_branch_and_bound",
    "lp_relaxation_bound",
    "greedy_centralized_matching",
    "random_matching",
    "fixed_quota_deferred_acceptance",
]
