"""Centralised solvers and baselines for the optimal-matching benchmark.

The paper compares its distributed algorithm against the *optimal matching*
of Section II-B -- the NP-hard integer program (1)-(4) maximising social
welfare subject to one-channel-per-buyer and interference-freedom.  The
paper solves it by brute force on small markets (footnote 4); we provide:

* :func:`~repro.optimal.bruteforce.optimal_matching_bruteforce` -- the
  paper's approach, with an explicit instance-size guard;
* :func:`~repro.optimal.branch_and_bound.optimal_matching_branch_and_bound`
  -- an exact solver that scales noticeably further via pruning;
* :func:`~repro.optimal.lp_relaxation.lp_relaxation_bound` -- a polynomial
  upper bound on the optimum (scipy linprog), useful for sanity-checking
  the exact solvers and for larger instances;
* greedy / random / fixed-quota-deferred-acceptance baselines for the
  ablation benchmarks.
"""

from repro.optimal.bruteforce import (
    DEFAULT_BRUTEFORCE_STATE_LIMIT,
    optimal_matching_bruteforce,
)
from repro.optimal.branch_and_bound import (
    DEFAULT_NODE_BUDGET,
    optimal_matching_branch_and_bound,
)
from repro.optimal.lp_relaxation import lp_relaxation_bound
from repro.optimal.greedy import greedy_centralized_matching
from repro.optimal.random_baseline import random_matching
from repro.optimal.college_admission import fixed_quota_deferred_acceptance
from repro.optimal.nash_enumeration import (
    buyer_optimal_nash_stable,
    enumerate_feasible_matchings,
    enumerate_nash_stable_matchings,
    enumerate_pairwise_stable_matchings,
    find_pairwise_stable_matching,
    price_of_nash_stability,
)

__all__ = [
    # exact solvers (and their safety limits)
    "optimal_matching_bruteforce",
    "DEFAULT_BRUTEFORCE_STATE_LIMIT",
    "optimal_matching_branch_and_bound",
    "DEFAULT_NODE_BUDGET",
    # bounds and baselines
    "lp_relaxation_bound",
    "greedy_centralized_matching",
    "random_matching",
    "fixed_quota_deferred_acceptance",
    # stable-set enumeration
    "enumerate_feasible_matchings",
    "enumerate_nash_stable_matchings",
    "enumerate_pairwise_stable_matchings",
    "find_pairwise_stable_matching",
    "buyer_optimal_nash_stable",
    "price_of_nash_stability",
]
