"""Random feasible matching baseline.

Buyers arrive in random order and each takes a uniformly random channel
among those still feasible for her (positive utility, no interference with
the channel's current coalition); a buyer with no feasible channel stays
unmatched.  The weakest sensible baseline -- it respects feasibility but
ignores preferences entirely -- used to lower-bound the welfare axis in the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching

__all__ = ["random_matching"]


def random_matching(market: SpectrumMarket, rng: np.random.Generator) -> Matching:
    """Sample one random feasible matching.

    Parameters
    ----------
    market:
        The market instance.
    rng:
        NumPy generator controlling both the arrival order and the channel
        choices (pass a seeded generator for reproducibility).
    """
    matching = Matching(market.num_channels, market.num_buyers)
    order = rng.permutation(market.num_buyers)
    for buyer in order:
        buyer = int(buyer)
        feasible = []
        for channel in range(market.num_channels):
            if market.price(channel, buyer) <= 0.0:
                continue
            graph = market.graph(channel)
            if graph.conflicts_with_set(buyer, matching.coalition(channel)):
                continue
            feasible.append(channel)
        if feasible:
            choice = feasible[int(rng.integers(len(feasible)))]
            matching.match(buyer, choice)
    return matching
