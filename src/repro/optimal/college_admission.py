"""Fixed-quota deferred acceptance: the college-admission strawman.

The paper's central argument for *adapting* deferred acceptance is that the
classic college-admission formulation cannot express interference: a
channel's "quota" is infinite for non-interfering buyers but one for
interfering buyers (Section I).  This module implements the strawman -- the
original Gale-Shapley many-to-one algorithm with a fixed per-channel quota,
oblivious to interference -- followed by a repair pass that drops
conflicting buyers (keeping the highest-priced ones) so the output is at
least feasible.

Its welfare in the ``bench_baselines`` ablation quantifies how much the
interference-aware adaptation matters: with quotas too small the channels
are under-used; with quotas large enough to fill the channels, the repair
pass throws welfare away.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.core.preferences import buyer_preference_order

__all__ = ["fixed_quota_deferred_acceptance"]


def fixed_quota_deferred_acceptance(
    market: SpectrumMarket,
    quota: int,
    repair: bool = True,
) -> Matching:
    """Classic deferred acceptance with quota ``quota`` per channel.

    Parameters
    ----------
    market:
        The market instance; only utilities are used during matching.
    quota:
        Fixed number of seats per channel (the college's ``q``).
    repair:
        If ``True`` (default), after DA converges each channel drops
        buyers greedily (lowest price first) until its coalition is
        interference-free, so the returned matching is always feasible.
        If ``False`` the raw (possibly infeasible) DA outcome is returned
        -- useful for measuring how much welfare the repair destroys.

    Returns
    -------
    Matching
        The (repaired) matching.
    """
    if quota < 1:
        raise ValueError(f"quota must be >= 1, got {quota}")

    unproposed: List[List[int]] = [
        buyer_preference_order(market, j) for j in range(market.num_buyers)
    ]
    waitlists: List[Set[int]] = [set() for _ in range(market.num_channels)]
    matched: List[Optional[int]] = [None] * market.num_buyers
    utilities = market.utilities

    while True:
        proposers = [
            j
            for j in range(market.num_buyers)
            if matched[j] is None and unproposed[j]
        ]
        if not proposers:
            break
        proposals: Dict[int, List[int]] = {}
        for j in proposers:
            channel = unproposed[j].pop(0)
            proposals.setdefault(channel, []).append(j)
        for channel, fresh in proposals.items():
            pool = sorted(waitlists[channel] | set(fresh))
            # Keep the top-`quota` buyers by offered price (ties by id).
            pool.sort(key=lambda j: (-utilities[j, channel], j))
            selected = set(pool[:quota])
            for j in waitlists[channel] - selected:
                matched[j] = None
            for j in selected:
                matched[j] = channel
            waitlists[channel] = selected

    matching = Matching(market.num_channels, market.num_buyers)
    for channel, members in enumerate(waitlists):
        matching.set_coalition(channel, members)

    if repair:
        for channel in range(market.num_channels):
            graph = market.graph(channel)
            members = sorted(
                matching.coalition(channel),
                key=lambda j: (-utilities[j, channel], j),
            )
            kept: List[int] = []
            for j in members:
                if not graph.conflicts_with_set(j, kept):
                    kept.append(j)
            matching.set_coalition(channel, kept)

    return matching
