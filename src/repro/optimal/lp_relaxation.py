"""LP relaxation of the optimal-matching integer program.

Relaxing ``x_{i,j} in {0,1}`` to ``x_{i,j} in [0,1]`` in program (1)-(4)
yields a linear program solvable in polynomial time whose optimum is an
*upper bound* on the true optimal social welfare.  The bound serves two
purposes in this repository:

* cross-checking the exact solvers in tests (``exact <= LP bound``), and
* estimating the proposed algorithm's optimality gap on markets too large
  to solve exactly (the paper could not report Fig. 7-scale gaps at all).

The quadratic interference constraint ``x_{i,j} * x_{i,j'} = 0`` for each
interfering pair is linearised the standard way as
``x_{i,j} + x_{i,j'} <= 1``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.core.market import SpectrumMarket
from repro.errors import SolverError

__all__ = ["lp_relaxation_bound"]


def lp_relaxation_bound(market: SpectrumMarket) -> float:
    """Solve the LP relaxation of (1)-(4) and return its optimal value.

    Variables are indexed ``x[channel * N + buyer]``.  Uses scipy's HiGHS
    backend.  Raises :class:`~repro.errors.SolverError` if the LP solver
    reports failure (should not happen for well-formed markets: the LP is
    always feasible, e.g. ``x = 0``).
    """
    num_buyers = market.num_buyers
    num_channels = market.num_channels
    num_vars = num_buyers * num_channels
    utilities = market.utilities

    # linprog minimises, so negate the welfare objective.
    objective = np.zeros(num_vars)
    for channel in range(num_channels):
        for buyer in range(num_buyers):
            objective[channel * num_buyers + buyer] = -float(
                utilities[buyer, channel]
            )

    rows: List[int] = []
    constraint_rows = 0
    matrix = lil_matrix((0, num_vars))

    # Count constraints first: one per buyer + one per (channel, edge).
    edge_constraints = sum(
        market.graph(channel).num_edges for channel in range(num_channels)
    )
    total_rows = num_buyers + edge_constraints
    matrix = lil_matrix((total_rows, num_vars))
    upper = np.ones(total_rows)

    row = 0
    # Constraint (2): each buyer holds at most one channel.
    for buyer in range(num_buyers):
        for channel in range(num_channels):
            matrix[row, channel * num_buyers + buyer] = 1.0
        row += 1
    # Constraint (3), linearised: interfering pairs can't share a channel.
    for channel in range(num_channels):
        for j, k in market.graph(channel).edges():
            matrix[row, channel * num_buyers + j] = 1.0
            matrix[row, channel * num_buyers + k] = 1.0
            row += 1

    result = linprog(
        objective,
        A_ub=matrix.tocsr(),
        b_ub=upper,
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"LP relaxation failed: {result.message}")
    return float(-result.fun)
