"""Exact optimal matching by branch and bound.

Same problem as :mod:`~repro.optimal.bruteforce` -- the NP-hard program
(1)-(4) -- but with two classic accelerations that let the Fig. 6 sweeps
use more repetitions and slightly larger markets:

* buyers are branched in descending order of their best available utility,
  channels tried best-first, so good incumbents are found early;
* subtrees are pruned with the bound ``value + sum of remaining buyers'
  max utilities``.

A node budget bounds worst-case work explicitly; exceeding it raises
:class:`~repro.errors.SolverLimitExceeded` instead of silently returning a
non-optimal result.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching
from repro.errors import SolverLimitExceeded

__all__ = ["optimal_matching_branch_and_bound", "DEFAULT_NODE_BUDGET"]

#: Default maximum number of search-tree nodes explored.
DEFAULT_NODE_BUDGET = 20_000_000


def optimal_matching_branch_and_bound(
    market: SpectrumMarket,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> Matching:
    """Solve the optimal matching exactly with pruned search.

    Parameters
    ----------
    market:
        The market instance.
    node_budget:
        Hard cap on explored search nodes.

    Returns
    -------
    Matching
        A welfare-maximising interference-free matching (deterministic for
        a given market).

    Raises
    ------
    SolverLimitExceeded
        If the search would exceed ``node_budget`` nodes.
    """
    utilities = market.utilities
    num_buyers = market.num_buyers
    num_channels = market.num_channels
    graphs = [market.graph(i) for i in range(num_channels)]

    # Branch buyers in descending best-utility order: high-value buyers
    # constrain the bound the most, so deciding them early tightens pruning.
    best_utility = utilities.max(axis=1)
    order = sorted(range(num_buyers), key=lambda j: (-best_utility[j], j))
    suffix_bound = [0.0] * (num_buyers + 1)
    for idx in range(num_buyers - 1, -1, -1):
        suffix_bound[idx] = suffix_bound[idx + 1] + float(best_utility[order[idx]])

    best_value = -1.0
    best_assignment: Optional[List[Optional[int]]] = None
    assignment: List[Optional[int]] = [None] * num_buyers
    coalitions: List[List[int]] = [[] for _ in range(num_channels)]
    nodes_explored = 0

    def recurse(idx: int, value: float) -> None:
        nonlocal best_value, best_assignment, nodes_explored
        nodes_explored += 1
        if nodes_explored > node_budget:
            raise SolverLimitExceeded(
                f"branch and bound exceeded its node budget of {node_budget}"
            )
        if value + suffix_bound[idx] <= best_value + 1e-12:
            return
        if idx == num_buyers:
            if value > best_value:
                best_value = value
                best_assignment = list(assignment)
            return
        buyer = order[idx]
        # Channels best-first for this buyer; skip zero-utility channels --
        # assigning them cannot beat leaving the buyer unmatched.
        channels = sorted(
            (i for i in range(num_channels) if utilities[buyer, i] > 0.0),
            key=lambda i: (-utilities[buyer, i], i),
        )
        for channel in channels:
            if graphs[channel].conflicts_with_set(buyer, coalitions[channel]):
                continue
            assignment[buyer] = channel
            coalitions[channel].append(buyer)
            recurse(idx + 1, value + float(utilities[buyer, channel]))
            coalitions[channel].pop()
            assignment[buyer] = None
        recurse(idx + 1, value)  # unmatched branch

    recurse(0, 0.0)

    matching = Matching(num_channels, num_buyers)
    assert best_assignment is not None
    for buyer, channel in enumerate(best_assignment):
        if channel is not None:
            matching.match(buyer, channel)
    return matching
