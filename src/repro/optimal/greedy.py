"""Centralised greedy matching baseline.

A natural welfare heuristic an auctioneer could run: scan all
(channel, buyer) pairs in descending price order and grant each pair whose
buyer is still free and whose channel coalition stays interference-free.
Runs in ``O(MN log(MN))`` and needs global knowledge -- it is a *baseline*,
not a mechanism (no stability properties).  Used by the ``bench_baselines``
ablation to contextualise the two-stage algorithm's welfare.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.market import SpectrumMarket
from repro.core.matching import Matching

__all__ = ["greedy_centralized_matching"]


def greedy_centralized_matching(market: SpectrumMarket) -> Matching:
    """Greedy descending-price assignment.

    Returns an interference-free matching.  Deterministic: price ties are
    broken by (channel, buyer) index.
    """
    utilities = market.utilities
    pairs: List[Tuple[float, int, int]] = []
    for channel in range(market.num_channels):
        for buyer in range(market.num_buyers):
            price = float(utilities[buyer, channel])
            if price > 0.0:
                pairs.append((price, channel, buyer))
    pairs.sort(key=lambda item: (-item[0], item[1], item[2]))

    matching = Matching(market.num_channels, market.num_buyers)
    for price, channel, buyer in pairs:
        if matching.is_matched(buyer):
            continue
        graph = market.graph(channel)
        if graph.conflicts_with_set(buyer, matching.coalition(channel)):
            continue
        matching.match(buyer, channel)
    return matching
