"""Write-ahead log + atomic snapshots for durable runs.

A *run directory* is the unit of durability::

    RUN_DIR/
      manifest.json           run identity: kind, seed, config, config hash
      wal.jsonl               one fsynced record per completed epoch/slot
      trace.jsonl             the run's own JSONL event trace
      checkpoints/
        ckpt-00000010.json    atomic state snapshot every N WAL records
      result.json             written once, atomically, on completion

The invariants the layout maintains:

* **Manifest first.**  ``manifest.json`` is written atomically before
  anything else; a directory without one is not a durable run and
  resume refuses it with a clear :class:`~repro.errors.CheckpointError`.
* **WAL before state.**  Each completed step appends one JSON line and
  fsyncs before the run advances, so after any crash the WAL names every
  outcome the process committed to.  A SIGKILL mid-append leaves at most
  one torn final line, which :meth:`CheckpointStore.read_wal` detects
  and :meth:`CheckpointStore.truncate_wal` repairs.
* **Snapshots are atomic and self-verifying.**  Checkpoints go through
  :func:`repro.ioutil.atomic_write_json` (tmp + fsync + rename) and
  embed a SHA-256 digest of their serialised state plus the run's config
  hash; a truncated file, a flipped bit, or a snapshot smuggled in from
  a differently-configured run is rejected at load time, and
  :meth:`CheckpointStore.latest_checkpoint` falls back to the newest
  *valid* snapshot.
* **Checkpoints anchor the trace.**  Every snapshot records the trace's
  byte length at snapshot time; resume truncates ``trace.jsonl`` to that
  offset and deterministic re-execution regenerates the tail, so the
  resumed trace converges with the uninterrupted run's.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.ioutil import (
    atomic_write_json,
    config_hash,
    fsync_directory,
    read_json,
)

__all__ = ["CheckpointStore", "config_hash"]

#: Bump when the manifest/WAL/checkpoint layout changes incompatibly.
STORE_SCHEMA_VERSION = 1


class CheckpointStore:
    """One durable run directory (see module docstring for the layout)."""

    MANIFEST_NAME = "manifest.json"
    WAL_NAME = "wal.jsonl"
    TRACE_NAME = "trace.jsonl"
    RESULT_NAME = "result.json"
    CHECKPOINT_DIR = "checkpoints"

    def __init__(self, run_dir: os.PathLike, manifest: Dict[str, Any]) -> None:
        self.run_dir = Path(run_dir)
        self.manifest = manifest
        self.manifest_path = self.run_dir / self.MANIFEST_NAME
        self.wal_path = self.run_dir / self.WAL_NAME
        self.trace_path = self.run_dir / self.TRACE_NAME
        self.result_path = self.run_dir / self.RESULT_NAME
        self.checkpoint_dir = self.run_dir / self.CHECKPOINT_DIR

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        run_dir: os.PathLike,
        kind: str,
        seed: int,
        config: Dict[str, Any],
    ) -> "CheckpointStore":
        """Initialise a fresh durable run directory.

        Refuses a directory that already holds a *different* run's
        manifest (same kind+config is allowed: re-running the identical
        command restarts the run from scratch).
        """
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": STORE_SCHEMA_VERSION,
            "kind": kind,
            "seed": int(seed),
            "config": config,
            "config_hash": config_hash(config),
        }
        existing = run_dir / cls.MANIFEST_NAME
        if existing.exists():
            previous = read_json(existing)
            if previous.get("config_hash") != manifest["config_hash"]:
                raise CheckpointError(
                    f"run directory {run_dir} already belongs to a different "
                    f"run (config hash {previous.get('config_hash')!r} != "
                    f"{manifest['config_hash']!r}); use a fresh directory or "
                    f"'repro resume' to continue the existing run"
                )
        store = cls(run_dir, manifest)
        store.checkpoint_dir.mkdir(exist_ok=True)
        atomic_write_json(store.manifest_path, manifest)
        # Restarting from scratch invalidates any previous attempt's log,
        # snapshots and result.
        store._reset_artifacts()
        return store

    @classmethod
    def open(cls, run_dir: os.PathLike) -> "CheckpointStore":
        """Open an existing durable run directory, validating its manifest."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / cls.MANIFEST_NAME
        if not manifest_path.exists():
            raise CheckpointError(
                f"{run_dir} is not a durable run directory (no "
                f"{cls.MANIFEST_NAME}); start one with --checkpoint-dir"
            )
        try:
            manifest = read_json(manifest_path)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable run manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("schema") != STORE_SCHEMA_VERSION:
            raise CheckpointError(
                f"run manifest {manifest_path} has schema "
                f"{manifest.get('schema')!r}; this build understands "
                f"{STORE_SCHEMA_VERSION}"
            )
        for key in ("kind", "seed", "config", "config_hash"):
            if key not in manifest:
                raise CheckpointError(
                    f"run manifest {manifest_path} is missing {key!r}"
                )
        if config_hash(manifest["config"]) != manifest["config_hash"]:
            raise CheckpointError(
                f"run manifest {manifest_path} fails its own config hash "
                f"(the manifest was edited or corrupted)"
            )
        store = cls(run_dir, manifest)
        store.checkpoint_dir.mkdir(exist_ok=True)
        return store

    def _reset_artifacts(self) -> None:
        for path in (self.wal_path, self.result_path):
            try:
                path.unlink()
            except OSError:
                pass
        for stale in sorted(self.checkpoint_dir.glob("ckpt-*.json")):
            try:
                stale.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return str(self.manifest["kind"])

    @property
    def seed(self) -> int:
        return int(self.manifest["seed"])

    @property
    def config(self) -> Dict[str, Any]:
        return self.manifest["config"]

    @property
    def config_hash(self) -> str:
        return str(self.manifest["config_hash"])

    @property
    def completed(self) -> bool:
        """Whether the run already wrote its final ``result.json``."""
        return self.result_path.exists()

    def read_result(self) -> Dict[str, Any]:
        return read_json(self.result_path)

    def write_result(self, result: Dict[str, Any]) -> None:
        """Atomically mark the run complete (the commit point of a run)."""
        atomic_write_json(self.result_path, result)

    # ------------------------------------------------------------------
    # Write-ahead log
    # ------------------------------------------------------------------
    def open_wal(self) -> "io.TextIOWrapper":  # noqa: F821 - doc only
        """Open the WAL for appending (caller owns the handle)."""
        return open(self.wal_path, "a", encoding="utf-8")

    @staticmethod
    def append_wal(handle, record: Dict[str, Any]) -> None:
        """Append one record and fsync (the WAL durability contract)."""
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def read_wal(self) -> Tuple[List[Dict[str, Any]], int]:
        """Read the WAL tolerantly: ``(records, valid_byte_length)``.

        A torn *final* line (crash mid-append) is excluded from both the
        records and the valid length -- :meth:`truncate_wal` with the
        returned length repairs the file.  A malformed line anywhere
        *before* the tail is real corruption and raises.
        """
        if not self.wal_path.exists():
            return [], 0
        data = self.wal_path.read_bytes()
        records: List[Dict[str, Any]] = []
        valid = 0
        offset = 0
        for line in data.split(b"\n"):
            end = offset + len(line) + 1  # +1 for the newline
            if end <= len(data):  # newline-terminated: a committed record
                stripped = line.strip()
                if stripped:
                    try:
                        records.append(json.loads(stripped))
                    except json.JSONDecodeError as exc:
                        raise CheckpointError(
                            f"corrupt WAL record at byte {offset} of "
                            f"{self.wal_path}: {exc}"
                        ) from exc
                valid = end
            offset = end
        return records, valid

    def truncate_wal(self, valid_bytes: int) -> None:
        """Drop everything after ``valid_bytes`` (torn-tail repair)."""
        if not self.wal_path.exists():
            return
        with open(self.wal_path, "rb+") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _checkpoint_path(self, index: int) -> Path:
        return self.checkpoint_dir / f"ckpt-{index:08d}.json"

    def write_checkpoint(
        self,
        index: int,
        state: Any,
        trace_bytes: int,
        wal_records: int,
        codec: str = "json",
    ) -> Path:
        """Atomically persist one state snapshot.

        ``index`` is the number of WAL records the snapshot covers (the
        run's logical clock); ``trace_bytes`` is the trace file's length
        at snapshot time; ``codec`` is ``"json"`` for JSON-safe state
        (dynamic runs) or ``"pickle"`` for opaque object graphs
        (distributed simulator state), stored base64-encoded.
        """
        if codec == "json":
            serialised = json.dumps(
                state, sort_keys=True, separators=(",", ":")
            )
            payload_state: Any = state
            digest = hashlib.sha256(serialised.encode("utf-8")).hexdigest()
        elif codec == "pickle":
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            payload_state = base64.b64encode(blob).decode("ascii")
            digest = hashlib.sha256(blob).hexdigest()
        else:
            raise CheckpointError(f"unknown checkpoint codec {codec!r}")
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "index": int(index),
            "wal_records": int(wal_records),
            "trace_bytes": int(trace_bytes),
            "config_hash": self.config_hash,
            "codec": codec,
            "digest": digest,
            "state": payload_state,
        }
        path = self._checkpoint_path(index)
        atomic_write_json(path, payload, indent=None)
        fsync_directory(self.checkpoint_dir)
        return path

    def load_checkpoint(self, path: os.PathLike) -> Dict[str, Any]:
        """Load and fully validate one checkpoint file.

        Raises :class:`~repro.errors.CheckpointError` for unparseable or
        truncated files, digest mismatches, unknown schema/codec, and --
        most importantly -- a config hash that differs from this run's
        (a stale snapshot from a different configuration).
        """
        path = Path(path)
        try:
            payload = read_json(path)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("schema") != (
            STORE_SCHEMA_VERSION
        ):
            raise CheckpointError(
                f"checkpoint {path} has unknown schema "
                f"{getattr(payload, 'get', lambda *_: None)('schema')!r}"
            )
        if payload.get("config_hash") != self.config_hash:
            raise CheckpointError(
                f"stale checkpoint {path}: it was written under config hash "
                f"{payload.get('config_hash')!r} but this run is "
                f"{self.config_hash!r}; refusing to restore state from a "
                f"different configuration"
            )
        codec = payload.get("codec")
        if codec == "json":
            serialised = json.dumps(
                payload["state"], sort_keys=True, separators=(",", ":")
            )
            digest = hashlib.sha256(serialised.encode("utf-8")).hexdigest()
            state = payload["state"]
        elif codec == "pickle":
            try:
                blob = base64.b64decode(payload["state"])
            except (ValueError, TypeError) as exc:
                raise CheckpointError(
                    f"corrupt checkpoint {path}: bad base64 state: {exc}"
                ) from exc
            digest = hashlib.sha256(blob).hexdigest()
            if digest != payload.get("digest"):
                raise CheckpointError(
                    f"corrupt checkpoint {path}: state digest mismatch"
                )
            state = pickle.loads(blob)
        else:
            raise CheckpointError(
                f"checkpoint {path} uses unknown codec {codec!r}"
            )
        if digest != payload.get("digest"):
            raise CheckpointError(
                f"corrupt checkpoint {path}: state digest mismatch"
            )
        return {
            "index": int(payload["index"]),
            "wal_records": int(payload["wal_records"]),
            "trace_bytes": int(payload["trace_bytes"]),
            "codec": codec,
            "state": state,
            "path": path,
        }

    def latest_checkpoint(self) -> Optional[Dict[str, Any]]:
        """Newest *valid* checkpoint, or ``None``.

        Corrupt snapshots (truncated, digest mismatch, unparseable) are
        skipped -- the point of keeping more than one -- but a stale
        config hash raises immediately: every snapshot in this directory
        claims to belong to this run, so a foreign one means the
        directory itself is suspect.
        """
        candidates = sorted(
            self.checkpoint_dir.glob("ckpt-*.json"), reverse=True
        )
        for path in candidates:
            try:
                return self.load_checkpoint(path)
            except CheckpointError as exc:
                if "stale checkpoint" in str(exc):
                    raise
                continue  # corrupt: fall back to the previous snapshot
        return None

    # ------------------------------------------------------------------
    # Trace file management
    # ------------------------------------------------------------------
    def truncate_trace(self, valid_bytes: int) -> None:
        """Cut the trace back to a checkpoint's recorded byte offset."""
        if not self.trace_path.exists():
            if valid_bytes:
                raise CheckpointError(
                    f"checkpoint references {valid_bytes} trace bytes but "
                    f"{self.trace_path} does not exist"
                )
            return
        size = self.trace_path.stat().st_size
        if size < valid_bytes:
            raise CheckpointError(
                f"trace {self.trace_path} is shorter ({size} bytes) than "
                f"its checkpoint's recorded offset ({valid_bytes}); the "
                f"trace was rewritten or the checkpoint is foreign"
            )
        with open(self.trace_path, "rb+") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
