"""Durable runners: execute a market run under WAL + checkpoint protection.

These runners wrap the deterministic engines -- the epoch loop of
:class:`~repro.dynamic.online.OnlineMatcher` and the slot loop of
:class:`~repro.distributed.simulator.TimeSlottedSimulator` -- with the
durability protocol of :mod:`repro.runtime.checkpoint`:

1. the run directory's ``trace.jsonl`` receives the run's event stream
   (tee'd into the ambient CLI sink when one is live, so ``--trace-out``
   and ``--serve-metrics`` keep working unchanged);
2. after every completed epoch/slot, one WAL record is appended and
   fsynced *before* the run advances;
3. every ``checkpoint_every`` records, the engine state is snapshotted
   atomically together with the trace's current byte length.

Because the engines are pure functions of (config, seed), the WAL tail
doubles as a verification oracle on resume: re-executed steps must
reproduce the recorded outcomes bit for bit, or resume aborts with a
:class:`~repro.errors.CheckpointError` instead of silently forking
history.

``runtime.*`` lifecycle events and counters go to the *ambient* recorder
only -- never into the run-dir trace -- which keeps the trace a pure
function of (config, seed): an interrupted-and-resumed run's trace
converges byte-for-byte with an uninterrupted one.

``inject_stall_after=N`` (CLI ``--inject-stall-after``) makes the runner
stop making progress after N WAL records: a deterministic crash/stall
site used by the resume tests, the CI ``resume-smoke`` job and supervisor
stall-detection tests.  It is deliberately refused on resume -- a resumed
run must run to completion.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import CheckpointError
from repro.obs.events import EventSink, JsonlEventSink
from repro.obs.manifest import build_manifest
from repro.obs.recorder import Recorder, resolve_recorder
from repro.runtime.checkpoint import CheckpointStore

__all__ = ["run_durable_dynamic", "run_durable_chaos", "run_params"]


def run_params(store: CheckpointStore) -> Dict[str, Any]:
    """Normalise a run directory's stored config to the flat legacy keys.

    Durable run directories hold one of two config shapes: the legacy
    flat mapping documented on :func:`run_durable_dynamic` /
    :func:`run_durable_chaos`, or (since the Session layer) a
    spec-shaped identity from
    :meth:`repro.run.spec.RunSpec.durable_identity` with nested
    ``market`` / ``engine`` / ``faults`` sections.  Every reader below
    goes through this flattener, so both shapes build and resume
    identically.
    """
    config = store.config
    if "market" not in config:
        return dict(config)
    params: Dict[str, Any] = {
        "checkpoint_every": config.get("checkpoint_every", 0),
    }
    market = config.get("market", {})
    for key in ("buyers", "sellers", "seed"):
        if key in market:
            params[key] = market[key]
    workload = market.get("workload") or {}
    for key in (
        "epochs",
        "arrival_rate",
        "departure_prob",
        "drift",
        "strategy",
    ):
        if key in workload:
            params[key] = workload[key]
    options = config.get("engine", {}).get("options", {})
    for key in ("policy", "max_slots"):
        if key in options:
            params[key] = options[key]
    faults = config.get("faults", {})
    for key in (
        "loss",
        "crashes",
        "partitions",
        "deadline_slots",
        "on_timeout",
    ):
        if key in faults:
            params[key] = faults[key]
    return params


class _TeeSink(EventSink):
    """Forward events to the run-dir sink and the ambient CLI sink."""

    def __init__(self, owned: EventSink, borrowed: EventSink) -> None:
        self._owned = owned
        self._borrowed = borrowed

    def emit(self, event: Dict[str, Any]) -> None:
        self._owned.emit(event)
        self._borrowed.emit(event)

    def flush(self) -> None:
        self._owned.flush()
        self._borrowed.flush()

    def close(self) -> None:
        # Ownership stays with the callers: the durable runner closes the
        # run-dir sink explicitly; the CLI closes the ambient one.
        self.flush()


class _DurableRun:
    """Shared WAL/trace/checkpoint plumbing for one durable execution."""

    def __init__(
        self,
        store: CheckpointStore,
        recorder: Optional[Recorder],
        fresh: bool,
        inject_stall_after: Optional[int],
        prior_records: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        if not fresh and inject_stall_after is not None:
            raise CheckpointError(
                "--inject-stall-after applies to fresh runs only; a resumed "
                "run must run to completion"
            )
        self.store = store
        self.ambient = resolve_recorder(recorder)
        self.inject_stall_after = inject_stall_after
        self.checkpoint_every = int(
            run_params(store).get("checkpoint_every", 0) or 0
        )
        #: All committed WAL records, prior (on resume) plus new.
        self.records: List[Dict[str, Any]] = list(prior_records or [])
        #: Recorded records past the restore point, used as the
        #: verification oracle while re-executing.
        self.verify_tail: Dict[int, Dict[str, Any]] = {}
        self.checkpoints_written = 0

        mode = "w" if fresh else "a"
        self._trace_stream = open(
            store.trace_path, mode, encoding="utf-8"
        )
        manifest = None
        if fresh:
            manifest = build_manifest(
                seed=store.seed,
                config={"kind": store.kind, **store.config},
            )
        self.sink = JsonlEventSink(self._trace_stream, manifest=manifest)
        events: EventSink = self.sink
        if self.ambient.events.enabled:
            events = _TeeSink(self.sink, self.ambient.events)
        #: Recorder handed to the engine: run-dir events (tee'd to the
        #: ambient sink), ambient metrics and run registry, no spans (span
        #: events carry wall-clock fields and would make the trace
        #: nondeterministic).
        self.recorder = Recorder(
            events=events,
            metrics=self.ambient.metrics,
            runs=self.ambient.runs,
        )
        self._wal_handle = store.open_wal()

    # ------------------------------------------------------------------
    def commit_record(self, record: Dict[str, Any]) -> None:
        """Append one WAL record, verifying against a recorded twin.

        On resume, re-executed steps land on indices the WAL already
        holds; determinism demands the recomputed record match exactly.
        """
        index = int(record["index"])
        expected = self.verify_tail.pop(index, None)
        if expected is not None and expected != record:
            raise CheckpointError(
                f"resume diverged from the WAL at index {index}: recorded "
                f"{expected!r}, recomputed {record!r}; the run directory "
                f"does not belong to this configuration/build"
            )
        self.store.append_wal(self._wal_handle, record)
        self.records.append(record)

    def maybe_checkpoint(self, state_fn, codec: str) -> None:
        """Snapshot the engine when the checkpoint cadence is due."""
        count = len(self.records)
        if self.checkpoint_every <= 0 or count % self.checkpoint_every:
            return
        # The snapshot anchors the trace at its current durable length:
        # flush the sink's buffer, push it to disk, then measure.
        self.sink.flush()
        self._trace_stream.flush()
        os.fsync(self._trace_stream.fileno())
        trace_bytes = self.store.trace_path.stat().st_size
        self.store.write_checkpoint(
            index=count,
            state=state_fn(),
            trace_bytes=trace_bytes,
            wal_records=count,
            codec=codec,
        )
        self.checkpoints_written += 1
        self.ambient.emit(
            "runtime.checkpoint",
            index=count,
            trace_bytes=trace_bytes,
            run_dir=str(self.store.run_dir),
        )
        if self.ambient.metrics.enabled:
            self.ambient.metrics.counter("runtime.checkpoints").inc()

    def maybe_stall(self) -> None:
        """Deterministic fault injection: stop progressing, await SIGKILL."""
        if (
            self.inject_stall_after is not None
            and len(self.records) >= self.inject_stall_after
        ):
            while True:  # pragma: no cover - only ever exits via SIGKILL
                time.sleep(0.05)

    def close(self) -> None:
        self.sink.close()
        self._trace_stream.close()
        self._wal_handle.close()


# ----------------------------------------------------------------------
# Dynamic (epoch-stream) runs
# ----------------------------------------------------------------------
def _build_dynamic_engine(store: CheckpointStore):
    from repro.dynamic.generator import DynamicMarketGenerator
    from repro.dynamic.online import OnlineMatcher, RematchStrategy

    config = run_params(store)
    generator = DynamicMarketGenerator(
        num_channels=int(config["sellers"]),
        initial_buyers=int(config["buyers"]),
        arrival_rate=float(config["arrival_rate"]),
        departure_prob=float(config["departure_prob"]),
        drift_sigma=float(config["drift"]),
        rng=np.random.default_rng(store.seed),
    )
    matcher = OnlineMatcher(RematchStrategy(config["strategy"]))
    return generator, matcher


def _drive_dynamic(
    run: _DurableRun, generator, matcher, start_index: int
) -> Dict[str, Any]:
    """Execute epochs ``start_index..epochs-1`` under WAL protection."""
    store = run.store
    epochs = int(run_params(store)["epochs"])
    matcher._recorder = run.recorder  # route dynamic.epoch into the trace
    for index in range(start_index, epochs):
        epoch = generator.next_epoch()
        outcome = matcher.step(epoch)
        run.commit_record(
            {
                "index": index,
                "epoch": outcome.epoch_index,
                "buyers": epoch.market.num_buyers,
                "welfare": outcome.social_welfare,
                "churned": outcome.churned,
                "persistent": outcome.persistent,
                "rounds": outcome.rounds,
            }
        )
        run.maybe_checkpoint(
            lambda: {
                "generator": generator.snapshot(),
                "matcher": matcher.snapshot(),
            },
            codec="json",
        )
        run.maybe_stall()
    if run.verify_tail:
        raise CheckpointError(
            f"WAL holds records past the configured horizon: indices "
            f"{sorted(run.verify_tail)[:5]} (epochs={epochs})"
        )
    records = run.records
    if run.recorder.enabled and records:
        # Mirror OnlineMatcher.run()'s closing lifecycle event exactly.
        run.recorder.emit(
            "dynamic.run_end",
            strategy=matcher.strategy.value,
            epochs=len(records),
            social_welfare=records[-1]["welfare"],
            total_churned=sum(r["churned"] for r in records),
            total_rounds=sum(r["rounds"] for r in records),
        )
    result = {
        "kind": "dynamic",
        "strategy": matcher.strategy.value,
        "epochs": len(records),
        "social_welfare": records[-1]["welfare"] if records else 0.0,
        "total_welfare": sum(r["welfare"] for r in records),
        "total_churned": sum(r["churned"] for r in records),
        "total_rounds": sum(r["rounds"] for r in records),
        "assignment": matcher.snapshot()["assignment"],
    }
    store.write_result(result)
    return result


def run_durable_dynamic(
    run_dir: "os.PathLike",
    config: Dict[str, Any],
    recorder: Optional[Recorder] = None,
    inject_stall_after: Optional[int] = None,
) -> Dict[str, Any]:
    """Run a dynamic market durably from scratch.

    ``config`` keys: ``sellers``, ``buyers``, ``arrival_rate``,
    ``departure_prob``, ``drift``, ``epochs``, ``seed``, ``strategy``
    (``warm`` | ``cold``), ``checkpoint_every``.

    A shim over :func:`repro.run.session.execute_durable`, which holds
    the execution body; behaviour and the run-dir layout are unchanged.
    """
    from repro.run.session import execute_durable

    return execute_durable(
        "dynamic",
        run_dir,
        config,
        seed=int(config["seed"]),
        recorder=recorder,
        inject_stall_after=inject_stall_after,
    )


# ----------------------------------------------------------------------
# Distributed chaos (slot-stream) runs
# ----------------------------------------------------------------------
def _build_chaos_simulation(store: CheckpointStore, recorder: Recorder):
    from repro.distributed.faults import (
        CrashFault,
        FaultSchedule,
        PartitionFault,
    )
    from repro.distributed.protocol import build_distributed_simulation
    from repro.distributed.transition import adaptive_policy, default_policy
    from repro.workloads.scenarios import paper_simulation_market

    config = run_params(store)
    rng = np.random.default_rng(store.seed)
    market = paper_simulation_market(
        int(config["buyers"]), int(config["sellers"]), rng
    )
    policy = (
        adaptive_policy()
        if config.get("policy") == "adaptive"
        else default_policy()
    )
    schedule = FaultSchedule(
        crashes=[CrashFault.parse(s) for s in config.get("crashes", [])],
        partitions=[
            PartitionFault.parse(s) for s in config.get("partitions", [])
        ],
    )
    network = None
    reliable = False
    loss = float(config.get("loss", 0.0))
    if loss > 0.0:
        from repro.distributed.network import LossyNetwork

        network = LossyNetwork(loss)
        reliable = True
    return build_distributed_simulation(
        market,
        policy=policy,
        network=network,
        seed=store.seed,
        reliable_transport=reliable,
        recorder=recorder,
        fault_schedule=schedule if not schedule.empty else None,
    )


def _drive_chaos(run: _DurableRun, sim) -> Dict[str, Any]:
    """Run the simulator to quiescence under WAL protection."""
    store = run.store
    config = run_params(store)
    simulator = sim.simulator

    def on_slot(s) -> None:
        run.commit_record(
            {
                "index": s.now,
                "sent": s.messages_sent,
                "delivered": s.messages_delivered,
                "dropped": s.messages_dropped,
                "lost_to_crash": s.messages_lost_to_crash,
                "crashes": s.crashes,
                "restarts": s.restarts,
            }
        )
        run.maybe_checkpoint(s.snapshot_state, codec="pickle")
        run.maybe_stall()

    deadline = config.get("deadline_slots")
    max_slots = int(config.get("max_slots", 1_000_000))
    bound = int(deadline) if deadline is not None else max_slots
    on_timeout = str(config.get("on_timeout", "degrade"))
    slots = simulator.run(
        max_slots=bound,
        on_timeout="stop" if on_timeout == "degrade" else "raise",
        on_slot=on_slot,
    )
    if run.verify_tail:
        raise CheckpointError(
            f"WAL holds records past quiescence: indices "
            f"{sorted(run.verify_tail)[:5]} (slots={slots})"
        )
    outcome = sim.finalize(slots)
    matching = outcome.matching
    result = {
        "kind": "chaos",
        "status": outcome.status,
        "slots": outcome.slots,
        "social_welfare": outcome.social_welfare,
        "matched": matching.num_matched(),
        "assignment": {
            str(j): matching.channel_of(j)
            for j in range(matching.num_buyers)
            if matching.channel_of(j) is not None
        },
        "messages_sent": outcome.messages_sent,
        "messages_delivered": outcome.messages_delivered,
        "messages_dropped": outcome.messages_dropped,
        "messages_lost_to_crash": outcome.messages_lost_to_crash,
        "crashes": outcome.crashes,
        "restarts": outcome.restarts,
        "partition_drops": outcome.partition_drops,
        "view_divergences": outcome.view_divergences,
    }
    store.write_result(result)
    return result


def run_durable_chaos(
    run_dir: "os.PathLike",
    config: Dict[str, Any],
    recorder: Optional[Recorder] = None,
    inject_stall_after: Optional[int] = None,
) -> Dict[str, Any]:
    """Run a distributed chaos market durably from scratch.

    ``config`` keys: ``buyers``, ``sellers``, ``seed``, ``policy``
    (``default`` | ``adaptive``), ``loss``, ``crashes`` /``partitions``
    (lists of CLI fault-spec strings -- see
    :meth:`~repro.distributed.faults.CrashFault.parse`),
    ``deadline_slots``, ``on_timeout``, ``max_slots``,
    ``checkpoint_every``.

    A shim over :func:`repro.run.session.execute_durable`, which holds
    the execution body; behaviour and the run-dir layout are unchanged.
    """
    from repro.run.session import execute_durable

    return execute_durable(
        "chaos",
        run_dir,
        config,
        seed=int(config["seed"]),
        recorder=recorder,
        inject_stall_after=inject_stall_after,
    )
