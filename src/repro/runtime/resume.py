"""Crash-consistent resume of durable runs (``repro resume RUN_DIR``).

Recovery protocol, in order:

1. **Open and validate** the run directory's manifest
   (:meth:`CheckpointStore.open`): missing, corrupt, foreign-schema or
   hash-inconsistent manifests fail fast with a clear
   :class:`~repro.errors.CheckpointError`.
2. **Idempotency.**  ``result.json`` is the run's atomic commit point; if
   it exists the run already finished and resume returns it unchanged.
3. **Pick the restore point**: the newest *valid* checkpoint (corrupt
   snapshots are skipped, stale config hashes refuse loudly).  With no
   usable checkpoint the run restarts from scratch -- the WAL of the
   crashed attempt still serves as a verification oracle.
4. **Truncate to the snapshot.**  The trace is cut back to the
   checkpoint's recorded byte offset and the WAL to its record count
   (this also repairs a torn final line from a crash mid-append).
5. **Rebuild and replay.**  The engine is reconstructed from the
   manifest config (construction is deterministic in its arguments),
   the snapshot state is restored into it, and execution continues.
   Every re-executed step's WAL record is compared against the crashed
   attempt's recorded twin: determinism says they must match bit for
   bit, so any divergence (wrong binary, edited config, foreign
   directory) aborts instead of silently forking history.

The net effect is the acceptance property of this subsystem: a seeded
run SIGKILLed mid-step and resumed produces the identical final
matching, welfare, ``result.json`` and canonicalized trace as the same
run left uninterrupted.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.errors import CheckpointError
from repro.obs.recorder import Recorder, resolve_recorder
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.durable import (
    _build_chaos_simulation,
    _build_dynamic_engine,
    _drive_chaos,
    _drive_dynamic,
    _DurableRun,
)

__all__ = ["resume_run"]


def _wal_byte_offset(store: CheckpointStore, record_count: int) -> int:
    """Byte offset just past the first ``record_count`` WAL lines."""
    offset = 0
    remaining = record_count
    with open(store.wal_path, "rb") as handle:
        while remaining > 0:
            line = handle.readline()
            if not line:
                raise CheckpointError(
                    f"WAL {store.wal_path} holds fewer records than its "
                    f"checkpoint covers ({record_count}); the log was "
                    f"rewritten or the checkpoint is foreign"
                )
            offset += len(line)
            remaining -= 1
    return offset


def resume_run(
    run_dir: "os.PathLike", recorder: Optional[Recorder] = None
) -> Dict[str, Any]:
    """Resume (or idempotently report) a durable run directory."""
    store = CheckpointStore.open(run_dir)
    ambient = resolve_recorder(recorder)

    if store.completed:
        if ambient.enabled:
            ambient.emit(
                "runtime.resume",
                run_dir=str(store.run_dir),
                kind=store.kind,
                already_complete=True,
            )
        return store.read_result()

    checkpoint = store.latest_checkpoint()
    records, valid_bytes = store.read_wal()
    store.truncate_wal(valid_bytes)  # repair a torn tail either way

    if checkpoint is None:
        # No usable snapshot: restart from scratch.  The crashed
        # attempt's WAL still verifies the re-execution.
        start = 0
        prior: list = []
        tail = records
        store.truncate_wal(0)
        fresh = True
    else:
        start = checkpoint["wal_records"]
        if len(records) < start:
            raise CheckpointError(
                f"checkpoint {checkpoint['path']} covers {start} WAL "
                f"records but only {len(records)} are on disk"
            )
        prior = records[:start]
        tail = records[start:]
        store.truncate_wal(_wal_byte_offset(store, start))
        store.truncate_trace(checkpoint["trace_bytes"])
        fresh = False

    if ambient.enabled:
        ambient.emit(
            "runtime.resume",
            run_dir=str(store.run_dir),
            kind=store.kind,
            from_index=start,
            wal_tail=len(tail),
            from_scratch=checkpoint is None,
        )
        if ambient.metrics.enabled:
            ambient.metrics.counter("runtime.resumes").inc()

    run = _DurableRun(
        store,
        recorder,
        fresh=fresh,
        inject_stall_after=None,
        prior_records=prior,
    )
    run.verify_tail = {int(r["index"]): r for r in tail}
    try:
        if store.kind == "dynamic":
            generator, matcher = _build_dynamic_engine(store)
            if checkpoint is not None:
                generator.restore(checkpoint["state"]["generator"])
                matcher.restore(checkpoint["state"]["matcher"])
            return _drive_dynamic(run, generator, matcher, start_index=start)
        if store.kind == "chaos":
            sim = _build_chaos_simulation(store, run.recorder)
            if checkpoint is None:
                sim.emit_run_start()
            else:
                sim.simulator.restore_state(checkpoint["state"])
            return _drive_chaos(run, sim)
        raise CheckpointError(
            f"run manifest declares unknown kind {store.kind!r}; this "
            f"build can resume 'dynamic' and 'chaos' runs"
        )
    finally:
        run.close()
