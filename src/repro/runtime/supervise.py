"""Supervised retry runtime: deadlines, stall detection, bounded restarts.

Durable runs (:mod:`repro.runtime.durable`) make a crash *recoverable*;
the :class:`Supervisor` makes recovery *automatic*.  It runs a market
command as a child process and watches two progress signals:

* **exit status** -- a non-zero exit (or a crash signal) fails the
  attempt;
* **progress age** -- how long since the run last demonstrably advanced,
  measured from the WAL's mtime (:func:`wal_progress_age`; every
  committed epoch/slot fsyncs the WAL, so its mtime is a durable
  heartbeat) or from the live run registry
  (:func:`registry_progress_age`).  An attempt whose progress age
  exceeds the stall timeout is SIGKILLed: a stalled run is treated
  exactly like a crashed one.

Failed attempts are retried from the latest checkpoint (relaunching as
``repro resume RUN_DIR``) under exponential backoff with seeded jitter
and a bounded budget; exhausting the budget or the overall deadline
raises :class:`~repro.errors.RetryBudgetExceeded` with the last failure
chained.  Lifecycle is observable: ``runtime.retry`` / ``runtime.gave_up``
events and ``runtime.retries`` / ``runtime.stalls`` counters flow to the
ambient recorder, so the SLO engine and ``/metrics`` endpoint see every
recovery.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import RetryBudgetExceeded
from repro.obs.recorder import Recorder, resolve_recorder
from repro.runtime.checkpoint import CheckpointStore

__all__ = [
    "RetryPolicy",
    "Supervisor",
    "wal_progress_age",
    "registry_progress_age",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``max_retries`` counts *re*-tries: a budget of 3 allows up to 4
    attempts total.  Jitter is drawn from a policy-seeded PRNG so
    supervision schedules are reproducible in tests while still
    de-synchronising real fleets.
    """

    max_retries: int = 3
    base_backoff_s: float = 0.5
    max_backoff_s: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        delay = min(self.max_backoff_s, self.base_backoff_s * (2.0 ** attempt))
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


def wal_progress_age(run_dir: "os.PathLike") -> float:
    """Seconds since the run directory's WAL last advanced.

    Every committed step fsyncs the WAL, so its mtime is a durable
    progress heartbeat.  ``inf`` when the WAL does not exist yet.
    """
    wal = Path(run_dir) / CheckpointStore.WAL_NAME
    try:
        return max(0.0, time.time() - wal.stat().st_mtime)
    except OSError:
        return float("inf")


def registry_progress_age(recorder: Optional[Recorder] = None) -> float:
    """Seconds since the live run registry last saw an event.

    The in-process complement of :func:`wal_progress_age`: the ambient
    :class:`~repro.obs.live.RunRegistry` folds every lifecycle event, so
    its ``last_event_age_s`` measures progress of a run hosted in *this*
    process.  ``inf`` when no run is being tracked.
    """
    rec = resolve_recorder(recorder)
    active = rec.runs.active_run()
    if not active:
        return float("inf")
    age = active.get("last_event_age_s")
    return float("inf") if age is None else float(age)


class Supervisor:
    """Run work under a deadline with stall detection and bounded retries.

    Parameters
    ----------
    policy:
        Retry budget and backoff schedule.
    recorder:
        Observability backend for ``runtime.*`` events/counters (``None``
        resolves to the ambient recorder).
    stall_timeout_s:
        Kill a child whose progress age exceeds this (``None`` disables
        stall detection).  Progress age is the *minimum* of the WAL age
        and the attempt's own wall-clock age, so a freshly launched
        attempt is never condemned by a stale WAL it has not touched yet.
    deadline_s:
        Overall wall-clock budget across *all* attempts; exceeding it
        raises :class:`~repro.errors.RetryBudgetExceeded`.
    poll_interval_s:
        Child liveness/stall polling period.
    sleep:
        Injection point for tests (defaults to :func:`time.sleep`).
    """

    def __init__(
        self,
        policy: RetryPolicy = RetryPolicy(),
        recorder: Optional[Recorder] = None,
        stall_timeout_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        poll_interval_s: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy
        self._recorder = recorder
        self.stall_timeout_s = stall_timeout_s
        self.deadline_s = deadline_s
        self.poll_interval_s = poll_interval_s
        self._sleep = sleep
        self._rng = random.Random(policy.seed)
        #: Attempt-by-attempt account of the last supervised run.
        self.history: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit(self, event_type: str, **fields: Any) -> None:
        rec = resolve_recorder(self._recorder)
        if rec.enabled:
            rec.emit(event_type, **fields)

    def _count(self, name: str) -> None:
        metrics = resolve_recorder(self._recorder).metrics
        if metrics.enabled:
            metrics.counter(name).inc()

    def _give_up(self, reason: str, attempts: int, cause: Optional[BaseException]):
        self._emit("runtime.gave_up", reason=reason, attempts=attempts)
        self._count("runtime.gave_up")
        error = RetryBudgetExceeded(
            f"supervised run failed permanently after {attempts} attempt(s): "
            f"{reason}"
        )
        if cause is not None:
            raise error from cause
        raise error

    # ------------------------------------------------------------------
    # In-process supervision
    # ------------------------------------------------------------------
    def run_callable(self, fn: Callable[[], Any]) -> Any:
        """Call ``fn`` until it succeeds or the retry budget is spent.

        The in-process twin of :meth:`run_command`, used where the work
        is a Python callable (and by the unit tests to exercise the
        retry/backoff/give-up state machine without subprocesses).
        """
        started = time.monotonic()
        last_error: Optional[BaseException] = None
        for attempt in range(self.policy.max_retries + 1):
            if (
                self.deadline_s is not None
                and time.monotonic() - started > self.deadline_s
            ):
                self._give_up("deadline exceeded", attempt, last_error)
            try:
                return fn()
            except RetryBudgetExceeded:
                raise
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                last_error = exc
                if attempt >= self.policy.max_retries:
                    self._give_up(f"retry budget exhausted: {exc}", attempt + 1, exc)
                delay = self.policy.backoff_s(attempt, self._rng)
                self._emit(
                    "runtime.retry",
                    attempt=attempt + 1,
                    reason=str(exc),
                    backoff_s=delay,
                )
                self._count("runtime.retries")
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Subprocess supervision
    # ------------------------------------------------------------------
    def _resume_command(self, run_dir: Path) -> List[str]:
        return [sys.executable, "-m", "repro.cli", "resume", str(run_dir)]

    def _watch(self, proc: "subprocess.Popen", run_dir: Optional[Path], deadline_at: Optional[float]):
        """Poll one attempt until exit, stall-kill, or deadline-kill."""
        attempt_started = time.monotonic()
        while True:
            code = proc.poll()
            if code is not None:
                return ("exit", code)
            now = time.monotonic()
            if deadline_at is not None and now >= deadline_at:
                proc.kill()
                proc.wait()
                return ("deadline", None)
            if self.stall_timeout_s is not None and run_dir is not None:
                # A fresh attempt has not touched the WAL yet; measure
                # progress as the newer of (WAL advance, attempt start).
                age = min(
                    wal_progress_age(run_dir), now - attempt_started
                )
                if age > self.stall_timeout_s:
                    proc.kill()
                    proc.wait()
                    return ("stall", None)
            self._sleep(self.poll_interval_s)

    def run_command(
        self,
        command: Sequence[str],
        run_dir: Optional["os.PathLike"] = None,
    ) -> int:
        """Supervise ``command`` to successful completion; return 0.

        When ``run_dir`` names a durable run directory, failed attempts
        relaunch as ``repro resume RUN_DIR`` -- continuing from the
        latest checkpoint instead of repeating finished work -- and the
        WAL's mtime feeds stall detection.  Without it, retries re-run
        ``command`` verbatim and only the deadline applies.
        """
        started = time.monotonic()
        deadline_at = (
            started + self.deadline_s if self.deadline_s is not None else None
        )
        run_dir_path = Path(run_dir) if run_dir is not None else None
        self.history = []
        last_error: Optional[BaseException] = None
        for attempt in range(self.policy.max_retries + 1):
            resumable = (
                run_dir_path is not None
                and (run_dir_path / CheckpointStore.MANIFEST_NAME).exists()
            )
            cmd = (
                self._resume_command(run_dir_path)
                if attempt > 0 and resumable
                else list(command)
            )
            proc = subprocess.Popen(cmd)
            outcome, code = self._watch(proc, run_dir_path, deadline_at)
            self.history.append(
                {"attempt": attempt, "outcome": outcome, "code": code,
                 "command": cmd}
            )
            if outcome == "exit" and code == 0:
                return 0
            if outcome == "deadline":
                self._give_up("deadline exceeded", attempt + 1, last_error)
            if outcome == "stall":
                reason = (
                    f"no progress for more than {self.stall_timeout_s}s "
                    f"(stalled; killed)"
                )
                self._count("runtime.stalls")
            else:
                reason = f"exit code {code}"
            last_error = RuntimeError(f"attempt {attempt + 1}: {reason}")
            if attempt >= self.policy.max_retries:
                self._give_up(
                    f"retry budget exhausted: {reason}", attempt + 1, last_error
                )
            delay = self.policy.backoff_s(attempt, self._rng)
            if deadline_at is not None and time.monotonic() + delay >= deadline_at:
                self._give_up("deadline exceeded", attempt + 1, last_error)
            self._emit(
                "runtime.retry",
                attempt=attempt + 1,
                reason=reason,
                backoff_s=delay,
                # Whether the *next* attempt can resume from the run dir
                # (the failed attempt may have just created the manifest).
                resumable=run_dir_path is not None
                and (run_dir_path / CheckpointStore.MANIFEST_NAME).exists(),
            )
            self._count("runtime.retries")
            self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover
