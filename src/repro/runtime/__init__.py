"""Durable runs: write-ahead checkpointing, resume, and supervision.

A long market simulation is only as useful as its ability to survive the
process hosting it.  This package adds three layers on top of the
deterministic engines in :mod:`repro.dynamic` and :mod:`repro.distributed`:

* :mod:`repro.runtime.checkpoint` -- the storage layer: a *run
  directory* holding a config-hashed manifest, a write-ahead log (one
  fsynced record per epoch/slot), atomic state snapshots, and the run's
  own event trace.
* :mod:`repro.runtime.durable` -- durable runners that execute a dynamic
  or distributed-chaos run while appending to the WAL and snapshotting
  every N steps (``repro dynamic/chaos --checkpoint-dir``).
* :mod:`repro.runtime.resume` -- crash-consistent resume
  (``repro resume RUN_DIR``): reload the latest valid checkpoint,
  truncate the trace and WAL to the snapshot's recorded offsets, replay
  deterministically, and verify the recomputed tail against the WAL.
* :mod:`repro.runtime.supervise` -- a supervised retry runtime: run a
  command under a deadline, detect stalls from WAL progress age, SIGKILL
  and resume from the latest checkpoint with exponential backoff and a
  bounded retry budget.

The determinism contract is what makes all of this sound: every engine
is a pure function of (config, seed), so a run restored from a snapshot
re-produces the *identical* remaining event stream, and a resumed run's
final matching, welfare and canonicalized trace match the uninterrupted
run exactly.
"""

from repro.runtime.checkpoint import CheckpointStore, config_hash
from repro.runtime.durable import run_durable_chaos, run_durable_dynamic
from repro.runtime.resume import resume_run
from repro.runtime.supervise import (
    RetryPolicy,
    Supervisor,
    registry_progress_age,
    wal_progress_age,
)

__all__ = [
    "CheckpointStore",
    "config_hash",
    "run_durable_dynamic",
    "run_durable_chaos",
    "resume_run",
    "RetryPolicy",
    "Supervisor",
    "wal_progress_age",
    "registry_progress_age",
]
