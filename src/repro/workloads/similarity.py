"""Spearman rank-correlation machinery (Section V-A).

The paper quantifies how similar buyers' utility vectors are with the
average pairwise Spearman rank correlation coefficient (SRCC): 1 means all
buyers rank the channels identically, ~0 means independent rankings.

:func:`average_pairwise_srcc` is vectorised (rank every row once, then one
correlation-matrix product), so computing the measured similarity of a
300-buyer market is cheap enough to report in every experiment row.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

from repro.errors import MarketConfigurationError

__all__ = ["spearman_rank_correlation", "average_pairwise_srcc"]


def spearman_rank_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """SRCC between two vectors (Pearson correlation of their ranks).

    Average ranks are used for ties.  Raises if either vector is constant
    (the correlation is undefined); with continuous utility draws this has
    probability zero.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise MarketConfigurationError(
            f"expected two equal-length 1-D vectors, got {x.shape} and {y.shape}"
        )
    if x.size < 2:
        raise MarketConfigurationError("SRCC needs vectors of length >= 2")
    rank_x = rankdata(x)
    rank_y = rankdata(y)
    std_x = rank_x.std()
    std_y = rank_y.std()
    if std_x == 0.0 or std_y == 0.0:
        raise MarketConfigurationError("SRCC is undefined for constant vectors")
    return float(
        ((rank_x - rank_x.mean()) * (rank_y - rank_y.mean())).mean() / (std_x * std_y)
    )


def average_pairwise_srcc(utilities: np.ndarray) -> float:
    """Mean SRCC over all unordered buyer pairs.

    ``utilities`` is the ``(N, M)`` matrix; each row is ranked and the full
    pairwise Pearson correlation of ranks is computed in one matrix
    product.  Rows with constant values (all-equal utilities) would make
    SRCC undefined and raise.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 2:
        raise MarketConfigurationError("utilities must be a 2-D (N, M) array")
    num_buyers, num_channels = utilities.shape
    if num_buyers < 2:
        raise MarketConfigurationError("need at least two buyers for pairwise SRCC")
    if num_channels < 2:
        raise MarketConfigurationError("need at least two channels for SRCC")

    ranks = np.apply_along_axis(rankdata, 1, utilities)
    centered = ranks - ranks.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(centered, axis=1)
    if np.any(norms == 0.0):
        raise MarketConfigurationError(
            "SRCC is undefined: some buyer has a constant utility vector"
        )
    normalized = centered / norms[:, None]
    correlation = normalized @ normalized.T
    upper = np.triu_indices(num_buyers, k=1)
    return float(correlation[upper].mean())
