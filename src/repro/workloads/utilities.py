"""Utility-vector generation and the similarity manoeuvre (Section V-A).

Buyers' per-channel utilities are i.i.d. U[0, 1].  To study how the
*similarity* of buyers' preferences shapes the matching outcome, the paper
manipulates the vectors as follows:

    "First, we sort all buyers' utilities in the ascending (or descending)
    order.  In this way, the average SRCC is 1.  Then, for each buyer, we
    randomly select m out of M items from her utility vector and perform an
    m-permutation.  As m increases, the average SRCC will decrease ...
    When m = M, the SRCC is approximately 0."

:func:`utilities_with_permutation_level` implements exactly that
procedure; :func:`permutation_level_for_similarity` provides the coarse
inverse map used to aim for a target similarity level on the benchmark
x-axes (the *measured* average SRCC is always reported alongside).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MarketConfigurationError

__all__ = [
    "iid_uniform_utilities",
    "sorted_base_utilities",
    "apply_m_permutation",
    "utilities_with_permutation_level",
    "permutation_level_for_similarity",
]


def _check_shape(num_buyers: int, num_channels: int) -> None:
    if num_buyers < 1 or num_channels < 1:
        raise MarketConfigurationError(
            f"need at least one buyer and one channel, got "
            f"N={num_buyers}, M={num_channels}"
        )


def iid_uniform_utilities(
    num_buyers: int, num_channels: int, rng: np.random.Generator
) -> np.ndarray:
    """I.i.d. U[0, 1] utility matrix of shape ``(N, M)``.

    This is the paper's default when similarity is not being controlled;
    with continuous draws the average pairwise SRCC is approximately 0.
    """
    _check_shape(num_buyers, num_channels)
    return rng.random((num_buyers, num_channels))


def sorted_base_utilities(
    num_buyers: int,
    num_channels: int,
    rng: np.random.Generator,
    descending: bool = False,
) -> np.ndarray:
    """I.i.d. U[0,1] draws with each buyer's vector sorted by channel index.

    All buyers then rank the channels identically, so every pairwise SRCC
    is exactly 1 (ties have probability zero under continuous draws).
    """
    utilities = iid_uniform_utilities(num_buyers, num_channels, rng)
    utilities.sort(axis=1)
    if descending:
        utilities = utilities[:, ::-1].copy()
    return utilities


def apply_m_permutation(
    utilities: np.ndarray, m: int, rng: np.random.Generator
) -> np.ndarray:
    """Randomly permute ``m`` entries of each buyer's utility vector.

    For each row, ``m`` distinct channel positions are chosen uniformly and
    the values at those positions are shuffled uniformly.  ``m = 0`` or
    ``m = 1`` leaves rows unchanged; ``m = M`` fully shuffles each row.
    Returns a new array; the input is not modified.
    """
    utilities = np.asarray(utilities, dtype=float)
    if utilities.ndim != 2:
        raise MarketConfigurationError("utilities must be a 2-D (N, M) array")
    num_channels = utilities.shape[1]
    if not 0 <= m <= num_channels:
        raise MarketConfigurationError(
            f"m must lie in [0, M={num_channels}], got {m}"
        )
    result = utilities.copy()
    if m < 2:
        return result
    for row in result:
        positions = rng.choice(num_channels, size=m, replace=False)
        shuffled = positions.copy()
        rng.shuffle(shuffled)
        row[positions] = row[shuffled]
    return result


def utilities_with_permutation_level(
    num_buyers: int,
    num_channels: int,
    m: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """The paper's full similarity manoeuvre: sort, then m-permute.

    ``m = 0`` yields perfectly similar vectors (average SRCC 1); ``m = M``
    yields approximately independent rankings (average SRCC ~ 0).
    """
    base = sorted_base_utilities(num_buyers, num_channels, rng)
    return apply_m_permutation(base, m, rng)


def permutation_level_for_similarity(
    target_similarity: float, num_channels: int
) -> int:
    """Coarse inverse of the manoeuvre: pick ``m`` aiming at a target SRCC.

    The average SRCC decreases roughly linearly from 1 (``m = 0``) to about
    0 (``m = M``), so ``m = round((1 - target) * M)`` is a serviceable aim.
    Experiments report the *measured* average SRCC next to the nominal
    target rather than pretending the inverse is exact.
    """
    if not 0.0 <= target_similarity <= 1.0:
        raise MarketConfigurationError(
            f"target similarity must lie in [0, 1], got {target_similarity}"
        )
    level = int(round((1.0 - target_similarity) * num_channels))
    return max(0, min(num_channels, level))
