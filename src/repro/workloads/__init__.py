"""Workload generation: the paper's simulation settings (Section V-A).

* :mod:`~repro.workloads.deployment` -- buyers uniform in a 10x10 area,
  per-channel transmission ranges uniform in (0, 5].
* :mod:`~repro.workloads.utilities` -- i.i.d. U[0,1] utility vectors and
  the sort + random m-permutation manoeuvre that controls their similarity.
* :mod:`~repro.workloads.similarity` -- Spearman's rank correlation
  coefficient (SRCC) machinery that quantifies that similarity.
* :mod:`~repro.workloads.scenarios` -- named, fully reproducible market
  builders: the paper's toy example (Figs. 1-3), a pairwise-instability
  counterexample (Section III-D), and the paper's randomized simulation
  setup.
"""

from repro.workloads.deployment import (
    random_deployment,
    clustered_deployment,
    random_transmission_ranges,
    Deployment,
)
from repro.workloads.utilities import (
    iid_uniform_utilities,
    sorted_base_utilities,
    apply_m_permutation,
    utilities_with_permutation_level,
    permutation_level_for_similarity,
)
from repro.workloads.similarity import (
    spearman_rank_correlation,
    average_pairwise_srcc,
)
from repro.workloads.scenarios import (
    toy_example_market,
    counterexample_market,
    paper_simulation_market,
    physical_market_example,
)
from repro.workloads.physical import random_physical_market

__all__ = [
    "random_deployment",
    "clustered_deployment",
    "random_transmission_ranges",
    "Deployment",
    "iid_uniform_utilities",
    "sorted_base_utilities",
    "apply_m_permutation",
    "utilities_with_permutation_level",
    "permutation_level_for_similarity",
    "spearman_rank_correlation",
    "average_pairwise_srcc",
    "toy_example_market",
    "counterexample_market",
    "paper_simulation_market",
    "physical_market_example",
    "random_physical_market",
]
