"""Geometric deployments: buyer locations and channel transmission ranges.

Section V-A of the paper: "buyers are randomly located in a 10 x 10 area.
The transmission range of each channel is randomly chosen in the range
(0, 5]."  The interference graph of each channel then follows from the disk
model (see :mod:`repro.interference.geometric`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import MarketConfigurationError
from repro.interference.geometric import build_geometric_interference_map
from repro.interference.graph import InterferenceMap

__all__ = [
    "Deployment",
    "random_deployment",
    "clustered_deployment",
    "random_transmission_ranges",
]

#: Paper defaults (Section V-A).
DEFAULT_AREA_SIDE = 10.0
DEFAULT_MAX_RANGE = 5.0


@dataclass(frozen=True)
class Deployment:
    """A concrete geometric scenario: locations plus channel ranges.

    Attributes
    ----------
    locations:
        ``(N, 2)`` buyer coordinates.
    transmission_ranges:
        One interference radius per channel.
    area_side:
        Side length of the square deployment area (metadata for reports).
    """

    locations: np.ndarray
    transmission_ranges: Tuple[float, ...]
    area_side: float

    def interference_map(self) -> InterferenceMap:
        """Materialise the per-channel disk-model interference graphs."""
        return build_geometric_interference_map(
            self.locations, self.transmission_ranges
        )


def random_deployment(
    num_buyers: int,
    num_channels: int,
    rng: np.random.Generator,
    area_side: float = DEFAULT_AREA_SIDE,
    max_range: float = DEFAULT_MAX_RANGE,
) -> Deployment:
    """Sample a deployment with the paper's distributions.

    Buyer locations are uniform on ``[0, area_side]^2``; each channel's
    transmission range is uniform on ``(0, max_range]``.
    """
    if num_buyers < 1:
        raise MarketConfigurationError("need at least one buyer")
    if num_channels < 1:
        raise MarketConfigurationError("need at least one channel")
    if area_side <= 0 or max_range <= 0:
        raise MarketConfigurationError("area_side and max_range must be positive")
    locations = rng.uniform(0.0, area_side, size=(num_buyers, 2))
    ranges = random_transmission_ranges(num_channels, rng, max_range=max_range)
    return Deployment(
        locations=locations,
        transmission_ranges=ranges,
        area_side=float(area_side),
    )


def clustered_deployment(
    num_buyers: int,
    num_channels: int,
    rng: np.random.Generator,
    num_clusters: int = 3,
    cluster_spread: float = 1.0,
    area_side: float = DEFAULT_AREA_SIDE,
    max_range: float = DEFAULT_MAX_RANGE,
) -> Deployment:
    """Sample a hotspot deployment (Matern-like cluster process).

    Real wireless demand concentrates around hotspots (campuses, malls,
    stadiums) rather than spreading uniformly.  ``num_clusters`` centres
    are placed uniformly in the area; each buyer picks a centre uniformly
    and lands at a Gaussian offset of scale ``cluster_spread``, clipped
    to the area.  Clustered buyers interfere far more, so per-channel
    capacity drops sharply -- the deployment-sensitivity ablation
    (``bench_deployments``) quantifies what that does to the matching.
    """
    if num_buyers < 1:
        raise MarketConfigurationError("need at least one buyer")
    if num_channels < 1:
        raise MarketConfigurationError("need at least one channel")
    if num_clusters < 1:
        raise MarketConfigurationError("need at least one cluster")
    if cluster_spread < 0:
        raise MarketConfigurationError("cluster_spread must be >= 0")
    if area_side <= 0 or max_range <= 0:
        raise MarketConfigurationError("area_side and max_range must be positive")

    centres = rng.uniform(0.0, area_side, size=(num_clusters, 2))
    assignments = rng.integers(0, num_clusters, size=num_buyers)
    offsets = rng.normal(0.0, cluster_spread, size=(num_buyers, 2))
    locations = np.clip(centres[assignments] + offsets, 0.0, area_side)
    ranges = random_transmission_ranges(num_channels, rng, max_range=max_range)
    return Deployment(
        locations=locations,
        transmission_ranges=ranges,
        area_side=float(area_side),
    )


def random_transmission_ranges(
    num_channels: int,
    rng: np.random.Generator,
    max_range: float = DEFAULT_MAX_RANGE,
) -> Tuple[float, ...]:
    """Per-channel ranges uniform on ``(0, max_range]``.

    Implemented as ``max_range * (1 - U)`` with ``U ~ U[0, 1)`` so the
    interval is half-open at zero, exactly as the paper specifies (a radius
    of zero would make a channel's graph trivially empty).
    """
    if num_channels < 1:
        raise MarketConfigurationError("need at least one channel")
    uniforms = rng.random(num_channels)
    return tuple(float(max_range * (1.0 - u)) for u in uniforms)
