"""Random physical-level markets (multi-channel sellers, multi-demand buyers).

The paper's model starts from *physical* participants -- seller ``i``
supplies ``m_i`` channels, buyer ``j`` demands ``n_j`` -- and evaluates on
the expanded virtual market.  This generator samples the physical level
directly, so experiments can ask physical-level questions: how much of
each provider's demand was satisfied, how multi-demand pressure shapes
the market, how the clone cliques bite.

Each physical buyer gets ONE deployment site; all her clones inherit it
(her radios are co-located, which is also why they must not share a
channel -- the dummy-expansion clique is geometrically redundant here but
kept per the paper).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.market import PhysicalBuyer, PhysicalSeller, SpectrumMarket
from repro.errors import MarketConfigurationError
from repro.interference.geometric import build_geometric_interference_map
from repro.interference.mwis import MwisAlgorithm
from repro.workloads.deployment import (
    DEFAULT_AREA_SIDE,
    DEFAULT_MAX_RANGE,
    random_transmission_ranges,
)

__all__ = ["random_physical_market"]


def random_physical_market(
    num_sellers: int,
    num_buyers: int,
    rng: np.random.Generator,
    max_channels_per_seller: int = 3,
    max_demand: int = 3,
    area_side: float = DEFAULT_AREA_SIDE,
    max_range: float = DEFAULT_MAX_RANGE,
    mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
) -> SpectrumMarket:
    """Sample a physical market and expand it.

    Parameters
    ----------
    num_sellers / num_buyers:
        Physical participant counts ``I`` and ``J``.
    max_channels_per_seller:
        ``m_i ~ UniformInt[1, max_channels_per_seller]``.
    max_demand:
        ``n_j ~ UniformInt[1, max_demand]``.
    rng:
        Seeded generator (the whole market is a function of it).
    area_side / max_range:
        Geometry of the deployment (paper defaults).
    mwis_algorithm:
        Coalition solver configured on the returned market.

    Returns
    -------
    SpectrumMarket
        The expanded virtual market; physical identities are recoverable
        through ``buyer_owner`` / ``channel_owner`` and the participant
        name prefixes (``seller<i>``, ``buyer<j>``).
    """
    if num_sellers < 1 or num_buyers < 1:
        raise MarketConfigurationError(
            "need at least one physical seller and one physical buyer"
        )
    if max_channels_per_seller < 1 or max_demand < 1:
        raise MarketConfigurationError(
            "max_channels_per_seller and max_demand must be >= 1"
        )

    sellers = [
        PhysicalSeller(
            name=f"seller{i}",
            num_channels=int(rng.integers(1, max_channels_per_seller + 1)),
        )
        for i in range(num_sellers)
    ]
    num_channels = sum(s.num_channels for s in sellers)

    demands = [int(rng.integers(1, max_demand + 1)) for _ in range(num_buyers)]
    buyers = [
        PhysicalBuyer(
            name=f"buyer{j}",
            num_requested=demand,
            utilities=tuple(rng.random(num_channels)),
        )
        for j, demand in enumerate(demands)
    ]
    num_virtual = sum(demands)

    # One site per PHYSICAL buyer; clones co-located.
    sites = rng.uniform(0.0, area_side, size=(num_buyers, 2))
    virtual_locations: List[np.ndarray] = []
    for j, demand in enumerate(demands):
        virtual_locations.extend([sites[j]] * demand)
    locations = np.stack(virtual_locations)
    assert locations.shape == (num_virtual, 2)

    ranges = random_transmission_ranges(num_channels, rng, max_range=max_range)
    interference = build_geometric_interference_map(locations, ranges)
    market = SpectrumMarket.from_physical(
        sellers, buyers, interference, mwis_algorithm=mwis_algorithm
    )
    market.validate()
    return market
