"""Named, fully reproducible market scenarios.

* :func:`toy_example_market` -- the paper's running example (Figs. 1-3):
  five buyers, three sellers, hand-specified interference.  Stage I ends
  with social welfare 27 and Stage II improves it to 30; the test suite
  asserts the full round-by-round trace.
* :func:`counterexample_market` -- a five-buyer instance with the same
  character as the paper's Fig. 4/5 counterexample: the two-stage
  algorithm's output is individually rational and Nash-stable, yet it is
  pairwise-blocked (Definition 4) and not buyer-optimal (Definition 5) --
  another Nash-stable matching Pareto-dominates it for buyers.
* :func:`paper_simulation_market` -- the randomized setup of Section V-A
  (uniform deployment, disk interference, U[0,1] utilities, optional
  similarity manoeuvre).
* :func:`physical_market_example` -- a multi-channel-seller /
  multi-demand-buyer market exercising the dummy expansion of Section II-A.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.market import PhysicalBuyer, PhysicalSeller, SpectrumMarket
from repro.interference.generators import interference_map_from_edge_lists
from repro.interference.mwis import MwisAlgorithm
from repro.workloads.deployment import random_deployment
from repro.workloads.utilities import (
    iid_uniform_utilities,
    utilities_with_permutation_level,
)

__all__ = [
    "toy_example_market",
    "counterexample_market",
    "paper_simulation_market",
    "sparse_simulation_market",
    "physical_market_example",
    "homogeneous_market",
]


def toy_example_market(mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN) -> SpectrumMarket:
    """The paper's toy example (Fig. 3), 0-indexed.

    Paper buyers 1-5 are ids 0-4; sellers a, b, c are channels 0-2.
    Utility vectors (rows = buyers, columns = channels a, b, c) are exactly
    Fig. 3(b).  The interference edges are the unique minimal sets
    consistent with every seller decision in the Fig. 1 / Fig. 2 walkthrough:

    * channel a: 1-2 and 1-4 interfere (ids 0-1, 0-3);
    * channel b: 1-3, 2-3, 3-4 interfere (ids 0-2, 1-2, 2-3);
    * channel c: 2-5 interferes (ids 1-4).
    """
    utilities = np.array(
        [
            [7.0, 6.0, 3.0],  # buyer 1
            [6.0, 5.0, 4.0],  # buyer 2
            [9.0, 10.0, 8.0],  # buyer 3
            [8.0, 9.0, 7.0],  # buyer 4
            [1.0, 2.0, 3.0],  # buyer 5
        ]
    )
    interference = interference_map_from_edge_lists(
        num_buyers=5,
        per_channel_edges=[
            [(0, 1), (0, 3)],  # channel a
            [(0, 2), (1, 2), (2, 3)],  # channel b
            [(1, 4)],  # channel c
        ],
    )
    return SpectrumMarket(
        utilities,
        interference,
        mwis_algorithm=mwis_algorithm,
        buyer_names=["buyer1", "buyer2", "buyer3", "buyer4", "buyer5"],
        channel_names=["a", "b", "c"],
    )


def counterexample_market(
    mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
) -> SpectrumMarket:
    """A Section III-D style counterexample (pairwise-unstable output).

    Five buyers z, w, x, y, j on channels A, B, C.  Running the two-stage
    algorithm yields ``A = {z, y}, B = {w, x}, C = {j}`` (welfare 23),
    which is Nash-stable but:

    * **pairwise-blocked** by ``(B, j)``: seller B could evict x (price 3)
      and admit j (price 5) -- both strictly gain -- but the algorithm
      never allows that eviction in Stage II;
    * **not buyer-optimal**: ``A = {z, y}, B = {j, w}, C = {x}`` is also
      Nash-stable, makes buyer j strictly better off (1 -> 5) and nobody
      worse (welfare 27, which is also the optimum).

    The mechanics mirror the paper's Fig. 4/5 story: j is rejected by B in
    Stage I while interfering rivals (x, y) hold it; y is later evicted,
    but by then Stage II's no-eviction rule keeps j out.
    """
    # Buyers:        z      w      x      y      j
    # ids:           0      1      2      3      4
    # Channels:      A(0)   B(1)   C(2)
    utilities = np.array(
        [
            [10.0, 0.0, 0.0],  # z: anchor on A
            [7.0, 6.0, 0.0],  # w: prefers A, settles on B
            [0.0, 3.0, 3.0],  # x: indifferent between B and C
            [3.0, 4.0, 0.0],  # y: prefers B, evicted to A
            [0.0, 5.0, 1.0],  # j: wants B, stuck on C
        ]
    )
    interference = interference_map_from_edge_lists(
        num_buyers=5,
        per_channel_edges=[
            [(0, 1)],  # A: z-w
            [(2, 4), (3, 4), (1, 3)],  # B: x-j, y-j, w-y
            [],  # C: conflict-free
        ],
    )
    return SpectrumMarket(
        utilities,
        interference,
        mwis_algorithm=mwis_algorithm,
        buyer_names=["z", "w", "x", "y", "j"],
        channel_names=["A", "B", "C"],
    )


def paper_simulation_market(
    num_buyers: int,
    num_channels: int,
    rng: np.random.Generator,
    permutation_level: Optional[int] = None,
    area_side: float = 10.0,
    max_range: float = 5.0,
    mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
) -> SpectrumMarket:
    """One random market with the paper's Section V-A settings.

    Parameters
    ----------
    num_buyers / num_channels:
        ``N`` and ``M``.
    rng:
        Seeded NumPy generator; a given (rng state, sizes) pair always
        produces the same market.
    permutation_level:
        ``None`` (default) draws plain i.i.d. U[0,1] utilities; an integer
        ``m`` applies the sort + m-permutation similarity manoeuvre (see
        :mod:`repro.workloads.utilities`).
    area_side / max_range:
        Geometry knobs; paper defaults 10 and 5.
    """
    deployment = random_deployment(
        num_buyers, num_channels, rng, area_side=area_side, max_range=max_range
    )
    if permutation_level is None:
        utilities = iid_uniform_utilities(num_buyers, num_channels, rng)
    else:
        utilities = utilities_with_permutation_level(
            num_buyers, num_channels, permutation_level, rng
        )
    return SpectrumMarket(
        utilities,
        deployment.interference_map(),
        mwis_algorithm=mwis_algorithm,
    )


def sparse_simulation_market(
    num_buyers: int,
    num_channels: int,
    rng: np.random.Generator,
    density: float = 5.0,
    max_range: float = 1.0,
    mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
) -> SpectrumMarket:
    """A constant-density large market for the scalability benches.

    :func:`paper_simulation_market` keeps the paper's fixed ``10 x 10``
    area, so pushing ``N`` to the tens of thousands makes every disk
    cover a constant *fraction* of the buyers -- ``O(N^2)`` edges and an
    ``O(N^2)`` distance matrix.  Scalability runs instead hold the
    spatial buyer *density* fixed (``area_side = sqrt(N / density)``),
    which keeps expected interference degree bounded (at most
    ``density * pi * max_range^2``) while ``N`` grows, and build each
    channel's graph through the KD-tree sparse path
    (:func:`~repro.interference.geometric.sparse_disk_interference_graph`,
    ``O(E)`` memory).  Everything else follows Section V-A: uniform
    locations, per-channel ranges uniform on ``(0, max_range]``, i.i.d.
    U[0,1] utilities.
    """
    from repro.interference.geometric import sparse_disk_interference_graph
    from repro.interference.graph import InterferenceMap
    from repro.workloads.deployment import random_transmission_ranges

    if density <= 0:
        raise ValueError(f"density must be positive, got {density}")
    area_side = float(np.sqrt(num_buyers / density))
    locations = rng.uniform(0.0, area_side, size=(num_buyers, 2))
    ranges = random_transmission_ranges(
        num_channels, rng, max_range=max_range
    )
    interference = InterferenceMap(
        [sparse_disk_interference_graph(locations, r) for r in ranges]
    )
    utilities = iid_uniform_utilities(num_buyers, num_channels, rng)
    return SpectrumMarket(
        utilities, interference, mwis_algorithm=mwis_algorithm
    )


def homogeneous_market(
    values: "np.ndarray",
    graph,
    num_channels: int,
    mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
) -> SpectrumMarket:
    """A market with identical channels (TRUST's setting, paper ref. [16]).

    Every channel shares one interference ``graph`` and every buyer values
    all channels equally at ``values[j]``.  This is the common ground on
    which the matching algorithm and the TRUST double auction can be
    compared head to head (``benchmarks/bench_auction.py``).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("values must be a 1-D per-buyer vector")
    from repro.interference.graph import InterferenceMap

    utilities = np.repeat(values[:, None], num_channels, axis=1)
    interference = InterferenceMap([graph] * num_channels)
    return SpectrumMarket(utilities, interference, mwis_algorithm=mwis_algorithm)


def physical_market_example(
    rng: np.random.Generator,
    mwis_algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
) -> SpectrumMarket:
    """A physical-level market exercising the dummy expansion.

    Two physical sellers (2 + 1 channels) and three physical buyers
    demanding 2, 1 and 2 channels respectively: ``M = 3`` channels and
    ``N = 5`` virtual buyers, with clones of the same physical buyer
    interfering everywhere.  Geometric interference is sampled from the
    paper's distributions for the virtual buyers.
    """
    sellers = [
        PhysicalSeller(name="carrierA", num_channels=2),
        PhysicalSeller(name="carrierB", num_channels=1),
    ]
    num_channels = sum(s.num_channels for s in sellers)
    demands = [2, 1, 2]
    buyers = [
        PhysicalBuyer(
            name=f"isp{idx}",
            num_requested=demand,
            utilities=tuple(rng.random(num_channels)),
        )
        for idx, demand in enumerate(demands)
    ]
    num_virtual = sum(demands)
    deployment = random_deployment(num_virtual, num_channels, rng)
    market = SpectrumMarket.from_physical(
        sellers,
        buyers,
        deployment.interference_map(),
        mwis_algorithm=mwis_algorithm,
    )
    market.validate()
    return market
