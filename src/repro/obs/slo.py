"""Declarative SLO rules evaluated on live telemetry snapshots.

A rule is one comparison over a named *signal*: ``rounds_to_convergence
<= 40``, ``drop_rate < 0.05``, ``slot_age_s <= 2``.  The
:class:`SloEngine` resolves signals against the recorder's metrics
registry and run registry at evaluation time, so the same rule text
works for a centralised two-stage run (stage round counters), a
distributed chaos run (kernel counters and slot heartbeats) or a dynamic
market (epoch welfare).

Evaluation is pulled, Prometheus-style: the telemetry server evaluates
on every scrape, and the CLI evaluates once more after the command
finishes (``final=True``).  Each rule's *first* violation emits one
``slo.violated`` event and increments the ``slo.violations`` counter;
repeated violations are counted but not re-emitted, so a tight rule on a
long run does not flood the trace.  Under ``policy="fail"`` the engine's
:meth:`~SloEngine.exit_code` turns violations into a nonzero CLI exit.

Built-in signals
----------------
``rounds_to_convergence``
    Sum of the stage round counters (``stage1.rounds`` +
    ``stage2.transfer_rounds`` + ``stage2.invitation_rounds``), falling
    back to the active run's round heartbeat count.
``slots``
    The kernel's ``sim.slots`` counter.
``slot_age_s``
    Seconds since the active run's last event -- the liveness signal
    (``max_slot_age_s`` in operator speak: ``slot_age_s <= N``).
``drop_rate``
    ``sim.messages_dropped / sim.messages_sent`` (skipped until any
    message has been sent).
``welfare_regression_pct``
    ``100 * (reference - current) / reference`` against a reference
    welfare installed via :meth:`SloEngine.set_reference` (the chaos CLI
    installs its fault-free twin's welfare automatically).

Any other name resolves as a raw counter, then gauge, from the metrics
snapshot -- e.g. ``sim.messages_dropped >= 1`` or
``two_stage.welfare_phase2 > 25``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.recorder import Recorder

__all__ = ["SloRule", "SloViolation", "SloEngine", "parse_slo_rule"]

_RULE_RE = re.compile(
    r"^\s*(?P<signal>[A-Za-z_][A-Za-z0-9_.]*)\s*"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<threshold>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)%?\s*$"
)

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    "<": lambda value, threshold: value < threshold,
    ">=": lambda value, threshold: value >= threshold,
    ">": lambda value, threshold: value > threshold,
}

#: Counters summed into ``rounds_to_convergence``.
_ROUND_COUNTERS = (
    "stage1.rounds",
    "stage2.transfer_rounds",
    "stage2.invitation_rounds",
)


@dataclass(frozen=True)
class SloRule:
    """One declarative objective: ``signal op threshold``."""

    signal: str
    op: str
    threshold: float

    def holds(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    @property
    def text(self) -> str:
        return f"{self.signal}{self.op}{self.threshold:g}"


@dataclass(frozen=True)
class SloViolation:
    """One rule observed outside its objective."""

    rule: SloRule
    value: float
    final: bool

    def describe(self) -> str:
        stage = "final" if self.final else "live"
        return (
            f"slo violated ({stage}): {self.rule.text} "
            f"(measured {self.value:g})"
        )


def parse_slo_rule(text: str) -> SloRule:
    """Parse ``"signal<=value"`` (ops ``<= < >= >``; ``%`` suffix ok)."""
    match = _RULE_RE.match(text)
    if match is None:
        raise ObservabilityError(
            f"bad SLO rule {text!r} (expected e.g. "
            f"'rounds_to_convergence<=40' or 'drop_rate<0.05')"
        )
    return SloRule(
        signal=match.group("signal"),
        op=match.group("op"),
        threshold=float(match.group("threshold")),
    )


class SloEngine:
    """Evaluate a rule set against a recorder's live state.

    Parameters
    ----------
    rules:
        :class:`SloRule` instances or rule strings (parsed on the spot).
    recorder:
        Source of metrics/run snapshots, and the stream ``slo.violated``
        events are emitted into.
    policy:
        ``"warn"`` (report only) or ``"fail"`` (:meth:`exit_code`
        returns 1 once any rule has been violated).
    """

    def __init__(
        self,
        rules: Sequence[Any],
        recorder: Recorder,
        policy: str = "warn",
    ) -> None:
        if policy not in ("warn", "fail"):
            raise ObservabilityError(
                f"slo policy must be 'warn' or 'fail', got {policy!r}"
            )
        self.rules: List[SloRule] = [
            rule if isinstance(rule, SloRule) else parse_slo_rule(str(rule))
            for rule in rules
        ]
        self.policy = policy
        self._recorder = recorder
        self._references: Dict[str, float] = {}
        #: rule text -> times seen in violation.
        self.violation_counts: Dict[str, int] = {}

    def set_reference(self, name: str, value: float) -> None:
        """Install a reference level (e.g. fault-free ``welfare``)."""
        self._references[name] = float(value)

    # ------------------------------------------------------------------
    # Signal resolution
    # ------------------------------------------------------------------
    def _signal(
        self,
        name: str,
        counters: Mapping[str, Any],
        gauges: Mapping[str, Any],
        active_run: Optional[Mapping[str, Any]],
    ) -> Optional[float]:
        if name == "rounds_to_convergence":
            present = [c for c in _ROUND_COUNTERS if c in counters]
            if present:
                return float(sum(counters[c] for c in present))
            if active_run is not None and active_run.get("rounds"):
                return float(active_run["rounds"])
            return None
        if name == "slots":
            value = counters.get("sim.slots")
            return None if value is None else float(value)
        if name == "slot_age_s":
            if active_run is None or active_run.get("status") != "running":
                return None
            return float(active_run["last_event_age_s"])
        if name == "drop_rate":
            sent = counters.get("sim.messages_sent")
            if not sent:
                return None
            return float(counters.get("sim.messages_dropped", 0)) / float(sent)
        if name == "welfare_regression_pct":
            reference = self._references.get("welfare")
            if reference is None or reference <= 0.0:
                return None
            current = gauges.get("two_stage.welfare_phase2")
            if current is None and active_run is not None:
                welfare = active_run.get("welfare") or ()
                current = welfare[-1] if welfare else None
            if current is None:
                return None
            return 100.0 * (reference - float(current)) / reference
        if name in counters:
            return float(counters[name])
        value = gauges.get(name)
        return None if value is None else float(value)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, final: bool = False) -> List[SloViolation]:
        """Evaluate every rule against a fresh snapshot.

        Returns the violations *of this pass*.  A signal that is not yet
        measurable (no data) never violates.  New violations (a rule's
        first, or any violation on the ``final`` pass) are emitted as
        ``slo.violated`` events.
        """
        snapshot = self._recorder.metrics.snapshot()
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        active_run = self._recorder.runs.active_run()
        violations: List[SloViolation] = []
        for rule in self.rules:
            value = self._signal(rule.signal, counters, gauges, active_run)
            if value is None or rule.holds(value):
                continue
            violation = SloViolation(rule=rule, value=value, final=final)
            violations.append(violation)
            seen = self.violation_counts.get(rule.text, 0)
            self.violation_counts[rule.text] = seen + 1
            if seen == 0 or final:
                self._recorder.emit(
                    "slo.violated",
                    rule=rule.text,
                    signal=rule.signal,
                    value=value,
                    threshold=rule.threshold,
                    final=final,
                )
                metrics = self._recorder.metrics
                if metrics.enabled:
                    metrics.counter("slo.violations").inc()
        return violations

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------
    @property
    def violated(self) -> bool:
        return bool(self.violation_counts)

    def exit_code(self) -> int:
        """0, or 1 when ``policy="fail"`` and any rule was violated."""
        return 1 if self.policy == "fail" and self.violated else 0

    def status(self) -> Dict[str, Any]:
        """JSON-safe rule status (the server's ``/slo`` payload)."""
        snapshot = self._recorder.metrics.snapshot()
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        active_run = self._recorder.runs.active_run()
        rules = []
        for rule in self.rules:
            value = self._signal(rule.signal, counters, gauges, active_run)
            rules.append(
                {
                    "rule": rule.text,
                    "value": value,
                    "violations": self.violation_counts.get(rule.text, 0),
                    "ok": value is None or rule.holds(value),
                }
            )
        return {"policy": self.policy, "rules": rules}
