"""Human-readable summaries of a recorder's metrics and spans.

The CLI's ``--metrics`` flag prints this after a command finishes; the
benchmark harness writes the JSON snapshot instead (machine-readable),
so both views come from the same instruments.
"""

from __future__ import annotations

from typing import List

from repro.obs.metrics import snapshot_quantile
from repro.obs.recorder import Recorder

__all__ = ["format_metrics_summary", "format_span_tree"]


def format_metrics_summary(recorder: Recorder) -> str:
    """Render counters, gauges, timers, histograms and spans as text.

    Sections with no data are omitted; a fully idle recorder renders to
    ``"(no metrics recorded)"``.
    """
    snapshot = recorder.metrics.snapshot()
    lines: List[str] = []

    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value}")

    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            shown = "-" if value is None else f"{value:g}"
            lines.append(f"  {name:<{width}}  {shown}")

    timers = snapshot.get("timers", {})
    if timers:
        lines.append("timers:")
        width = max(len(name) for name in timers)
        for name, stats in timers.items():
            lines.append(
                f"  {name:<{width}}  n={stats['count']} "
                f"total={stats['total_s']:.6f}s mean={stats['mean_s']:.6f}s "
                f"max={stats['max_s']:.6f}s"
            )

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name, stats in histograms.items():
            lines.append(
                f"  {name:<{width}}  n={stats['count']} mean={stats['mean']:g} "
                f"min={stats['min']:g} "
                f"p50={snapshot_quantile(stats, 0.5):g} "
                f"p99={snapshot_quantile(stats, 0.99):g} "
                f"max={stats['max']:g}"
            )

    tree = format_span_tree(recorder)
    if tree:
        lines.append("spans (wall / cpu / self):")
        lines.append(tree)

    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def format_span_tree(
    recorder: Recorder, max_lines: int = 40, sort: str = "record"
) -> str:
    """Indented span tree, aggregated by (depth, name, parent-chain).

    Repeated spans (e.g. one ``stage1.mwis`` per seller per round) are
    rolled up into one line with a count, so the tree stays readable for
    arbitrarily long runs.  Each line shows wall, cpu and *self* time
    (wall minus direct children), so the dominant leaf phase is visible
    without exporting the trace.  ``sort`` orders siblings: ``record``
    keeps first-finish order, ``self`` puts the most expensive first.
    At most ``max_lines`` lines are returned; a truncation marker
    reports anything dropped.
    """
    if sort not in ("record", "self"):
        raise ValueError(
            f"format_span_tree: sort must be 'record' or 'self', got {sort!r}"
        )
    records = recorder.spans.records
    if not records:
        return ""

    # Children finish before parents, so rebuild the tree from the
    # parent indices, then aggregate sibling spans sharing a name.
    children: dict = {}
    child_wall: dict = {}
    for record in records:
        children.setdefault(record.parent, []).append(record)
        if record.parent >= 0:
            child_wall[record.parent] = (
                child_wall.get(record.parent, 0.0) + record.wall_s
            )

    lines: List[str] = []

    def render(parent_index: int, indent: int) -> None:
        grouped: dict = {}
        for record in children.get(parent_index, []):
            grouped.setdefault(record.name, []).append(record)
        groups = list(grouped.items())
        if sort == "self":
            groups.sort(
                key=lambda item: -sum(
                    max(r.wall_s - child_wall.get(r.index, 0.0), 0.0)
                    for r in item[1]
                )
            )
        for name, group in groups:
            wall = sum(r.wall_s for r in group)
            cpu = sum(r.cpu_s for r in group)
            self_s = sum(
                max(r.wall_s - child_wall.get(r.index, 0.0), 0.0)
                for r in group
            )
            count = f" x{len(group)}" if len(group) > 1 else ""
            lines.append(
                f"{'  ' * (indent + 1)}{name}{count}  "
                f"{wall:.6f}s / {cpu:.6f}s / {self_s:.6f}s"
            )
            for record in group:
                render(record.index, indent + 1)

    render(-1, 0)
    if len(lines) > max_lines:
        dropped = len(lines) - max_lines
        lines = lines[:max_lines] + [f"  ... ({dropped} more span lines)"]
    return "\n".join(lines)
