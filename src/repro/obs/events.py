"""Event sinks and the algorithm-round event schema.

An *event* is one flat JSON-safe dict with an ``"event"`` type field.
Sinks decide where events go:

* :class:`NullEventSink` -- nowhere (the default; zero cost).
* :class:`ListEventSink` -- an in-memory list (tests, ad-hoc analysis).
* :class:`JsonlEventSink` -- one JSON object per line in a file, opened
  with a :mod:`repro.obs.manifest` header so the trace is self-describing.

The module also owns the *round event schema*: lossless serialisation of
the per-round trace dataclasses (:class:`~repro.core.trace.StageOneRound`,
``TransferRound``, ``InvitationRound``) to JSON dicts, plus the inverse
(:func:`event_to_round`).  Round-tripping is exact -- ``json`` turns int
dict keys into strings and tuples into lists, and the inverse undoes both
-- which is what lets tests assert that a written trace reconstructs the
recorded rounds bit for bit.
"""

from __future__ import annotations

import io
import json
import threading
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.trace import InvitationRound, StageOneRound, TransferRound
from repro.errors import ObservabilityError

__all__ = [
    "EventSink",
    "NullEventSink",
    "ListEventSink",
    "JsonlEventSink",
    "round_to_event",
    "event_to_round",
]

AnyRound = Union[StageOneRound, TransferRound, InvitationRound]


class EventSink:
    """Base sink: receives event dicts via :meth:`emit`."""

    enabled = True

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered events to the backing store (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullEventSink(EventSink):
    """Disabled sink: drops everything at zero cost."""

    enabled = False

    def emit(self, event: Dict[str, Any]) -> None:
        pass


class ListEventSink(EventSink):
    """In-memory sink used by tests and interactive analysis."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def of_type(self, event_type: str) -> List[Dict[str, Any]]:
        """Events whose ``"event"`` field equals ``event_type``."""
        return [e for e in self.events if e.get("event") == event_type]


class JsonlEventSink(EventSink):
    """Append events as JSON lines to a file.

    Parameters
    ----------
    target:
        A path (opened and owned by the sink) or an existing text stream
        (borrowed; ``close()`` flushes but does not close it).
    manifest:
        Optional manifest dict written as the first line.
    flush_every:
        Buffer this many serialised events before writing them out in
        one call (default 1: every event reaches the stream
        immediately, the historical behaviour).  Large chaos runs emit
        hundreds of thousands of message events, where per-event writes
        are a measurable cost; ``close()`` always drains the buffer, so
        a cleanly closed trace is complete regardless of batch size.

    Writes are **tail-safe**: each drain is a single ``write()`` call of
    whole ``\\n``-terminated lines, so a concurrent tail-follower (the
    ``repro watch`` console) never observes a line split across writes,
    and the sink may be shared by threads (the run thread and the SLO
    engine evaluating from a telemetry-server scrape) without
    interleaving lines.
    """

    def __init__(
        self,
        target: Union[str, "io.TextIOBase"],
        manifest: Optional[Dict[str, Any]] = None,
        flush_every: int = 1,
    ) -> None:
        if flush_every < 1:
            raise ObservabilityError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        if isinstance(target, (str, bytes)):
            self._stream = open(target, "w", encoding="utf-8")
            self._owns_stream = True
            #: Filesystem path of the trace, when the sink owns one.
            self.path: Optional[str] = (
                target if isinstance(target, str) else target.decode()
            )
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self._closed = False
        self._flush_every = flush_every
        self._buffer: List[str] = []
        self._lock = threading.Lock()
        self.lines_written = 0
        if manifest is not None:
            self.emit(manifest)

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            if self._closed:
                raise ObservabilityError("emit() on a closed JsonlEventSink")
            self._buffer.append(line)
            self.lines_written += 1
            if len(self._buffer) >= self._flush_every:
                self._drain()

    def _drain(self) -> None:
        # One write() of complete lines (caller holds the lock): a reader
        # tailing the file sees whole lines or nothing, never a torn one.
        if self._buffer:
            self._stream.write("".join(line + "\n" for line in self._buffer))
            self._buffer.clear()

    def flush(self) -> None:
        """Drain the batch buffer and flush the OS-level stream."""
        with self._lock:
            if self._closed:
                return
            self._drain()
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain()
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()


# ----------------------------------------------------------------------
# Round event schema
# ----------------------------------------------------------------------
#: Event type names for each trace dataclass.
_ROUND_EVENT_TYPES = {
    StageOneRound: "stage1.round",
    TransferRound: "stage2.transfer_round",
    InvitationRound: "stage2.invitation_round",
}


def _int_key_map(mapping: Mapping[int, Any]) -> Dict[str, List[int]]:
    """``{3: (1, 2)} -> {"3": [1, 2]}`` (JSON objects need string keys)."""
    return {str(k): list(v) for k, v in sorted(mapping.items())}


def _pairs(pairs) -> List[List[int]]:
    return [list(p) for p in pairs]


def round_to_event(record: AnyRound) -> Dict[str, Any]:
    """Serialise one trace record to a flat JSON-safe event dict."""
    if isinstance(record, StageOneRound):
        return {
            "event": "stage1.round",
            "round": record.round_index,
            "proposals": _int_key_map(record.proposals),
            "waitlists": _int_key_map(record.waitlists),
            "evictions": _pairs(record.evictions),
            "rejections": _pairs(record.rejections),
        }
    if isinstance(record, TransferRound):
        return {
            "event": "stage2.transfer_round",
            "round": record.round_index,
            "applications": _int_key_map(record.applications),
            "accepted": _pairs(record.accepted),
            "rejected": _pairs(record.rejected),
        }
    if isinstance(record, InvitationRound):
        return {
            "event": "stage2.invitation_round",
            "round": record.round_index,
            "invitations": _pairs(record.invitations),
            "accepted": _pairs(record.accepted),
            "declined": _pairs(record.declined),
        }
    raise ObservabilityError(f"not a trace record: {record!r}")


def _tuple_map(mapping: Mapping[str, List[int]]) -> Dict[int, tuple]:
    return {int(k): tuple(v) for k, v in mapping.items()}


def _tuple_pairs(pairs: List[List[int]]) -> tuple:
    return tuple(tuple(p) for p in pairs)


def event_to_round(event: Mapping[str, Any]) -> AnyRound:
    """Reconstruct the trace dataclass a round event was serialised from.

    Inverse of :func:`round_to_event`: for any record ``r``,
    ``event_to_round(json.loads(json.dumps(round_to_event(r)))) == r``.
    """
    event_type = event.get("event")
    if event_type == "stage1.round":
        return StageOneRound(
            round_index=event["round"],
            proposals=_tuple_map(event["proposals"]),
            waitlists=_tuple_map(event["waitlists"]),
            evictions=_tuple_pairs(event["evictions"]),
            rejections=_tuple_pairs(event["rejections"]),
        )
    if event_type == "stage2.transfer_round":
        return TransferRound(
            round_index=event["round"],
            applications=_tuple_map(event["applications"]),
            accepted=_tuple_pairs(event["accepted"]),
            rejected=_tuple_pairs(event["rejected"]),
        )
    if event_type == "stage2.invitation_round":
        return InvitationRound(
            round_index=event["round"],
            invitations=_tuple_pairs(event["invitations"]),
            accepted=_tuple_pairs(event["accepted"]),
            declined=_tuple_pairs(event["declined"]),
        )
    raise ObservabilityError(f"not a round event: {event_type!r}")
