"""The :class:`Recorder` facade and the ambient current-recorder slot.

A recorder bundles the three observability backends -- an event sink, a
metrics registry and a span tracer -- behind one object that the
instrumented layers (``core``, ``distributed``, ``dynamic``, ``analysis``)
accept as an optional parameter.  :data:`NULL_RECORDER` is the all-null
bundle: its ``enabled`` flag is ``False`` and every operation is a no-op,
so instrumentation guarded by ``if recorder.enabled`` is free by default.

Instrumented entry points take ``recorder=None`` and resolve it through
:func:`resolve_recorder`, which falls back to the *ambient* recorder --
a :mod:`contextvars` slot installed with :func:`use_recorder`.  The CLI
and benchmark harness install a live recorder once, and every nested call
(``run_two_stage`` inside ``run_figure`` inside a CLI command) picks it
up without threading the object through every signature.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional

from repro.obs.events import EventSink, NullEventSink
from repro.obs.live import NULL_RUN_REGISTRY, RunRegistry
from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.spans import NullSpanTracer, SpanRecord, SpanTracer

__all__ = [
    "Recorder",
    "NULL_RECORDER",
    "get_recorder",
    "use_recorder",
    "resolve_recorder",
]


class Recorder:
    """Bundle of event sink + metrics registry + span tracer + run registry.

    Parameters
    ----------
    events / metrics / spans / runs:
        Backends; any omitted backend defaults to its null implementation.
        When both the tracer and the sink are live, finished spans are
        mirrored into the event stream as ``span`` events.  When ``runs``
        is a live :class:`~repro.obs.live.RunRegistry`, every event that
        passes through :meth:`emit` also feeds the registry, which is how
        instrumented entry points appear on the telemetry server's
        ``/runs`` endpoint with no extra plumbing.
    """

    def __init__(
        self,
        events: Optional[EventSink] = None,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanTracer] = None,
        runs: Optional[RunRegistry] = None,
    ) -> None:
        self.events = events if events is not None else NullEventSink()
        self.metrics = metrics if metrics is not None else NullMetrics()
        self.spans = spans if spans is not None else NullSpanTracer()
        self.runs = runs if runs is not None else NULL_RUN_REGISTRY
        if self.spans.enabled and self.events.enabled:
            previous = self.spans.on_finish

            def _mirror(record: SpanRecord, _previous=previous) -> None:
                if _previous is not None:
                    _previous(record)
                self.events.emit(
                    {
                        "event": "span",
                        "name": record.name,
                        "depth": record.depth,
                        "parent": record.parent,
                        "wall_s": record.wall_s,
                        "cpu_s": record.cpu_s,
                        "start_s": record.start_s,
                    }
                )

            self.spans.on_finish = _mirror
        #: Cached master switch consulted on hot paths.
        self.enabled = bool(
            self.events.enabled
            or self.metrics.enabled
            or self.spans.enabled
            or self.runs.enabled
        )

    def emit(self, event_type: str, **fields: Any) -> None:
        """Emit one event dict (no-op when sink and run registry are null)."""
        if self.events.enabled or self.runs.enabled:
            self.forward({"event": event_type, **fields})

    def forward(self, event: Dict[str, Any]) -> None:
        """Route one pre-built event dict to the sink and run registry.

        Used by hot paths (the simulator's per-slot loop) that build the
        dict themselves; callers should gate on ``events.enabled or
        runs.enabled`` to keep the disabled path allocation-free.
        """
        if self.events.enabled:
            self.events.emit(event)
        if self.runs.enabled:
            self.runs.observe(event)

    def span(self, name: str):
        """Open a span context manager on the bundled tracer."""
        return self.spans.span(name)

    def close(self) -> None:
        """Close the event sink (metrics/spans stay readable)."""
        self.events.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: The default, always-off recorder.  Shared and stateless.
NULL_RECORDER = Recorder()

_CURRENT: ContextVar[Recorder] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def get_recorder() -> Recorder:
    """The ambient recorder (:data:`NULL_RECORDER` unless installed)."""
    return _CURRENT.get()


@contextlib.contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` as the ambient recorder for the ``with`` body."""
    token = _CURRENT.set(recorder)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)


def resolve_recorder(recorder: Optional[Recorder]) -> Recorder:
    """An explicit recorder if given, else the ambient one.

    The single resolution point used by every instrumented signature's
    ``recorder=None`` default; one :class:`~contextvars.ContextVar` read
    per *entry point* call (never per round or per slot).
    """
    return recorder if recorder is not None else _CURRENT.get()
