"""Live run registry: in-process progress tracking for running markets.

The offline obs stack (events, metrics, spans) answers questions *after*
a run; this module answers them *while* it runs.  A :class:`RunRegistry`
is a fourth recorder backend: :meth:`~repro.obs.recorder.Recorder.emit`
forwards every lifecycle event to :meth:`RunRegistry.observe`, which
folds the stream into a small table of runs -- id, kind, phase,
slot/round/epoch progress, welfare trajectory, active faults, and the
age of the last event.  Because it rides on events the instrumented
layers already emit (``two_stage.start``, ``sim.slot``,
``distributed.run_end``, ``dynamic.epoch``, ...), every entry point --
:func:`~repro.core.two_stage.run_two_stage`, the time-slotted kernel,
:class:`~repro.dynamic.online.OnlineMatcher`, the sweep runner, chaos
runs, benchmarks -- registers itself with **zero new plumbing at call
sites**.

The registry is thread-safe: the run thread feeds ``observe`` while the
telemetry server (:mod:`repro.obs.server`) snapshots it from its request
threads, and the SLO engine (:mod:`repro.obs.slo`) reads last-event ages
from the same snapshots.  :data:`NULL_RUN_REGISTRY` is the disabled
default; with it installed, the recorder's fast path is unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["RunRegistry", "NullRunRegistry", "NULL_RUN_REGISTRY"]

#: Event types that *begin* a run, mapped to the run kind they begin.
_RUN_START_EVENTS = {
    "two_stage.start": "two_stage",
    "distributed.run_start": "distributed",
}

#: Round events counted toward a run's rounds-to-convergence.
_ROUND_EVENTS = (
    "stage1.round",
    "stage2.transfer_round",
    "stage2.invitation_round",
)

#: Cap on stored welfare-trajectory points per run (the watch console's
#: sparkline never needs more; long dynamic runs stay bounded).
_MAX_WELFARE_POINTS = 240


class _RunEntry:
    """Mutable per-run record (internal; snapshots are plain dicts)."""

    __slots__ = (
        "run_id", "kind", "phase", "status", "started_unix", "last_unix",
        "_last_monotonic", "slot", "rounds", "epoch", "progress", "welfare",
        "crashed", "partitions", "violations", "meta",
    )

    def __init__(self, run_id: int, kind: str, meta: Dict[str, Any]) -> None:
        now_wall, now_mono = time.time(), time.monotonic()
        self.run_id = run_id
        self.kind = kind
        self.phase = "starting"
        self.status = "running"
        self.started_unix = now_wall
        self.last_unix = now_wall
        self._last_monotonic = now_mono
        self.slot: Optional[int] = None
        self.rounds = 0
        self.epoch: Optional[int] = None
        self.progress: Dict[str, float] = {}
        self.welfare: List[float] = []
        self.crashed: List[str] = []
        self.partitions = 0
        self.violations: List[str] = []
        self.meta = meta

    def touch(self) -> None:
        self.last_unix = time.time()
        self._last_monotonic = time.monotonic()

    def snapshot(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "run_id": self.run_id,
            "kind": self.kind,
            "phase": self.phase,
            "status": self.status,
            "started_unix": self.started_unix,
            "last_event_unix": self.last_unix,
            "last_event_age_s": max(
                0.0, time.monotonic() - self._last_monotonic
            ),
            "rounds": self.rounds,
            "progress": dict(self.progress),
            "welfare": list(self.welfare),
            "meta": dict(self.meta),
        }
        if self.slot is not None:
            entry["slot"] = self.slot
        if self.epoch is not None:
            entry["epoch"] = self.epoch
        if self.crashed:
            entry["crashed"] = list(self.crashed)
        if self.partitions:
            entry["partitions"] = self.partitions
        if self.violations:
            entry["slo_violations"] = list(self.violations)
        return entry


class RunRegistry:
    """Event-driven table of active and recently finished runs.

    Parameters
    ----------
    max_finished:
        Finished runs retained for ``/runs`` history; the oldest are
        evicted first, so a long Monte-Carlo sweep (thousands of
        ``run_two_stage`` calls) keeps the registry bounded.
    """

    enabled = True

    def __init__(self, max_finished: int = 32) -> None:
        self._lock = threading.RLock()
        self._next_id = 1
        self._entries: List[_RunEntry] = []
        self._active: Optional[_RunEntry] = None
        self._meta: Dict[str, Any] = {}
        self._max_finished = max_finished
        self.events_observed = 0
        self.runs_started = 0

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def observe(self, event: Dict[str, Any]) -> None:
        """Fold one emitted event into the run table."""
        kind = event.get("event")
        with self._lock:
            self.events_observed += 1
            if kind in _RUN_START_EVENTS:
                self._begin(_RUN_START_EVENTS[kind], event)
                return
            if kind == "manifest":
                self._meta.update(
                    {
                        key: event[key]
                        for key in ("seed", "schema_version")
                        if key in event
                    }
                )
                return
            if kind == "market.created":
                self._meta["market"] = {
                    key: value
                    for key, value in event.items()
                    if key != "event"
                }
                return
            if kind == "analysis.progress":
                # Sweep heartbeats arrive *between* unit runs (or from
                # the parent of a worker pool), so they get their own
                # sweep-level entry rather than riding the active run.
                run = self._latest_running("sweep")
                if run is None:
                    run = self._begin("sweep", event)
                run.phase = "sweep"
                completed = float(event.get("completed", 0))
                total = float(event.get("total", 0))
                run.progress["completed"] = completed
                run.progress["total"] = total
                if total and completed >= total:
                    run.phase = "done"
                    run.status = "finished"
                    if self._active is run:
                        self._active = None
                run.touch()
                return
            if kind == "dynamic.epoch":
                run = self._active
                if run is None or run.kind != "dynamic":
                    run = self._begin("dynamic", event)
                run.phase = "epoch"
                run.epoch = int(event.get("epoch", 0))
                if "social_welfare" in event:
                    self._push_welfare(run, float(event["social_welfare"]))
                for key in ("churned", "rounds", "buyers"):
                    if key in event:
                        run.progress[key] = (
                            run.progress.get(key, 0) + float(event[key])
                            if key in ("churned", "rounds")
                            else float(event[key])
                        )
                run.touch()
                return
            if kind == "slo.violated":
                # Final SLO evaluation happens after the run closed, so
                # fall back to the latest entry rather than the active.
                run = self._active or (
                    self._entries[-1] if self._entries else None
                )
                if run is not None:
                    rule = str(event.get("rule", "?"))
                    if rule not in run.violations:
                        run.violations.append(rule)
                    run.touch()
                return
            run = self._active
            if run is None:
                return
            self._update(run, kind, event)
            run.touch()
            if run.status != "running":
                self._evict()

    def _latest_running(self, kind: str) -> Optional[_RunEntry]:
        for entry in reversed(self._entries):
            if entry.kind == kind and entry.status == "running":
                return entry
        return None

    def _begin(self, kind: str, event: Dict[str, Any]) -> _RunEntry:
        previous = self._active
        if (
            previous is not None
            and previous.status == "running"
            and previous.kind != "sweep"
        ):
            # A new run starting before the previous one reported a
            # result means the previous one ended without a lifecycle
            # event (exception, or an API path with no end marker).  A
            # running *sweep* is exempt: its unit runs start under it.
            previous.status = "abandoned"
        meta = dict(self._meta)
        meta.update(
            {
                key: value
                for key, value in event.items()
                if key not in ("event",) and isinstance(value, (int, float, str, bool))
            }
        )
        entry = _RunEntry(self._next_id, kind, meta)
        self._next_id += 1
        self.runs_started += 1
        self._entries.append(entry)
        self._active = entry
        self._evict()
        return entry

    def _update(
        self, run: _RunEntry, kind: Optional[str], event: Dict[str, Any]
    ) -> None:
        if kind in _ROUND_EVENTS:
            run.rounds += 1
            run.phase = "stage1" if kind == "stage1.round" else "stage2"
        elif kind == "sim.slot":
            run.phase = "protocol"
            run.slot = int(event.get("slot", 0))
            for key in ("sent", "delivered", "dropped"):
                run.progress[f"messages_{key}"] = run.progress.get(
                    f"messages_{key}", 0
                ) + float(event.get(key, 0))
            if "inflight" in event:
                run.progress["inflight"] = float(event["inflight"])
        elif kind == "sim.crash":
            agent = str(event.get("agent", "?"))
            if agent not in run.crashed:
                run.crashed.append(agent)
        elif kind == "sim.restart":
            agent = str(event.get("agent", "?"))
            if agent in run.crashed:
                run.crashed.remove(agent)
        elif kind == "sim.partition":
            run.partitions += 1
        elif kind == "sim.partition_healed":
            run.partitions = max(0, run.partitions - 1)
        elif kind == "two_stage.result":
            for key in ("welfare_stage1", "welfare_phase1", "welfare_phase2"):
                if key in event:
                    self._push_welfare(run, float(event[key]))
            run.phase = "done"
            run.status = "converged"
            self._active = None
        elif kind == "distributed.run_end":
            if "social_welfare" in event:
                self._push_welfare(run, float(event["social_welfare"]))
            if "slots" in event:
                run.slot = int(event["slots"])
            run.phase = "done"
            run.status = str(event.get("status", "converged"))
            self._active = None
        elif kind == "dynamic.run_end":
            run.phase = "done"
            run.status = "finished"
            self._active = None
        # Any other event type still refreshes the heartbeat (caller
        # touches the run after _update).

    def _push_welfare(self, run: _RunEntry, value: float) -> None:
        run.welfare.append(value)
        if len(run.welfare) > _MAX_WELFARE_POINTS:
            # Keep the head (stage welfare anchors) and the recent tail.
            del run.welfare[1 : len(run.welfare) - _MAX_WELFARE_POINTS + 1]

    def _evict(self) -> None:
        finished = [e for e in self._entries if e.status != "running"]
        excess = len(finished) - self._max_finished
        if excess > 0:
            doomed = {id(e) for e in finished[:excess]}
            self._entries = [
                e for e in self._entries if id(e) not in doomed
            ]

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe view of every tracked run (the ``/runs`` payload)."""
        with self._lock:
            runs = [entry.snapshot() for entry in self._entries]
            active = self._active.run_id if self._active is not None else None
            return {
                "runs": runs,
                "active_run": active,
                "events_observed": self.events_observed,
                "runs_started": self.runs_started,
            }

    def active_run(self) -> Optional[Dict[str, Any]]:
        """Snapshot of the in-flight run, or the latest run, or ``None``."""
        with self._lock:
            if self._active is not None:
                return self._active.snapshot()
            if self._entries:
                return self._entries[-1].snapshot()
            return None


class NullRunRegistry(RunRegistry):
    """Disabled registry: observes nothing, reports nothing."""

    enabled = False

    def observe(self, event: Dict[str, Any]) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {
            "runs": [],
            "active_run": None,
            "events_observed": 0,
            "runs_started": 0,
        }

    def active_run(self) -> Optional[Dict[str, Any]]:
        return None


#: Shared disabled registry used by default recorders.
NULL_RUN_REGISTRY = NullRunRegistry()
