"""Zero-dependency metrics instruments and registries.

Four instrument kinds cover everything the matching pipeline and the
simulator need to report:

* :class:`Counter` -- monotone event counts (rounds, proposals, drops).
* :class:`Gauge` -- last-write-wins level readings (welfare, queue depth).
* :class:`Timer` -- accumulated wall-clock of a repeated operation (the
  per-call MWIS solves), usable as a context manager.
* :class:`Histogram` -- value distributions over geometric buckets
  (agent-step latency, messages per slot).

Instruments are created *through* a registry so the whole pipeline can be
switched off at a single point: :class:`NullMetrics` hands out shared
no-op singletons, which makes an instrumented hot path cost one ``if``
per call site and allocate nothing.  Names are dotted
``component.noun[_unit]`` strings (``stage1.mwis_solve_s``); a name is
bound to one instrument kind for the registry's lifetime.

A :class:`MetricsRegistry` is **thread-safe**: every instrument it hands
out shares the registry's re-entrant lock, and mutation, ``snapshot()``
and ``merge()`` all run under it.  A live scrape (the telemetry server's
``GET /metrics``) therefore sees one consistent point-in-time view, and
counters are monotone between successive scrapes.  Instruments built
*directly* (outside any registry) stay lock-free -- the historical
single-threaded behaviour.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "snapshot_quantile",
]


class _NoLock:
    """Lock stand-in for instruments created outside a registry."""

    __slots__ = ()

    def __enter__(self) -> "_NoLock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared no-op lock for standalone instruments.
_UNLOCKED = _NoLock()


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = _UNLOCKED

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        with self._lock:
            self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-write-wins level reading."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self._lock = _UNLOCKED

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def snapshot(self) -> Optional[float]:
        return self.value


class Timer:
    """Accumulated wall-clock time of a repeated operation.

    Use as a (non-reentrant) context manager around each occurrence::

        with registry.timer("stage1.mwis_solve_s"):
            solve()

    or feed pre-measured durations through :meth:`observe`.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "_start",
                 "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s: Optional[float] = None
        self.max_s: Optional[float] = None
        self._start: Optional[float] = None
        self._lock = _UNLOCKED

    def observe(self, seconds: float) -> None:
        """Record one occurrence that took ``seconds`` of wall clock."""
        with self._lock:
            self.count += 1
            self.total_s += seconds
            self.min_s = (
                seconds if self.min_s is None else min(self.min_s, seconds)
            )
            self.max_s = (
                seconds if self.max_s is None else max(self.max_s, seconds)
            )

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None, "Timer exited without entering"
        self.observe(time.perf_counter() - self._start)
        self._start = None

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self.count,
                "total_s": self.total_s,
                "mean_s": self.mean_s,
                "min_s": self.min_s if self.min_s is not None else 0.0,
                "max_s": self.max_s if self.max_s is not None else 0.0,
            }


#: Default histogram boundaries: geometric decades 1e-6 .. 1e3 with a
#: 1-2-5 progression -- wide enough for both sub-millisecond agent steps
#: and per-slot message counts in the hundreds.
_DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-6, 4)
    for mantissa in (1.0, 2.0, 5.0)
)


class Histogram:
    """Distribution over fixed buckets, plus count/sum/min/max."""

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        bounds = tuple(_DEFAULT_BUCKETS if boundaries is None else boundaries)
        if list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram {name!r} boundaries must be sorted: {bounds}"
            )
        self.boundaries = bounds
        #: ``bucket_counts[k]`` counts observations <= boundaries[k];
        #: the final slot is the overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = _UNLOCKED

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.bucket_counts[bisect_right(self.boundaries, value)] += 1
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        Shares the one implementation in :func:`snapshot_quantile`, so a
        live instrument and a persisted snapshot report the same number.
        """
        return snapshot_quantile(self.snapshot(), q)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.mean,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
                "boundaries": list(self.boundaries),
                "bucket_counts": list(self.bucket_counts),
            }


def snapshot_quantile(stats: Dict[str, object], q: float) -> float:
    """Estimate a quantile from a histogram snapshot.

    Walks the cumulative bucket counts to the bucket containing the
    ``q``-th observation and interpolates linearly within it, clamping
    to the observed ``min``/``max`` (which also bound the open-ended
    first and overflow buckets).  This is the single bucket-interpolation
    implementation used by :meth:`Histogram.quantile`, the summary
    renderer and the trace-analysis toolkit.
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must lie in [0, 1], got {q}")
    count = int(stats["count"])  # type: ignore[arg-type]
    if count == 0:
        return 0.0
    observed_min = float(stats["min"])  # type: ignore[arg-type]
    observed_max = float(stats["max"])  # type: ignore[arg-type]
    boundaries = list(stats["boundaries"])  # type: ignore[arg-type]
    bucket_counts = list(stats["bucket_counts"])  # type: ignore[arg-type]
    target = q * count
    cumulative = 0
    for slot, bucket_count in enumerate(bucket_counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            # Bucket `slot` holds values in [boundaries[slot-1],
            # boundaries[slot]); clamp the open ends to observed extremes.
            lo = observed_min if slot == 0 else float(boundaries[slot - 1])
            hi = (
                observed_max
                if slot == len(boundaries)
                else float(boundaries[slot])
            )
            lo = max(lo, observed_min)
            hi = min(hi, observed_max)
            if hi <= lo:
                return lo
            fraction = (target - cumulative) / bucket_count
            return lo + (hi - lo) * fraction
        cumulative += bucket_count
    return observed_max


class MetricsRegistry:
    """Get-or-create home for named instruments.

    ``registry.counter("stage1.rounds")`` returns the same object on every
    call, so call sites never need to cache instruments themselves (though
    hot loops may, to skip the dict lookup).

    All instruments share the registry's re-entrant lock: mutation,
    :meth:`snapshot` and :meth:`merge` are mutually atomic, so a scrape
    from another thread (the telemetry server) always sees a consistent
    view and successive scrapes see monotone counters.
    """

    #: Enabled registries record; the null subclass flips this to False so
    #: call sites can skip measurement work entirely.
    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._lock = threading.RLock()

    def _get_or_create(self, name: str, kind: type, *args: object):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(name, *args)
                instrument._lock = self._lock
                self._instruments[name] = instrument
            elif type(instrument) is not kind:
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        if name in self._instruments:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, boundaries)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments' current values, grouped by kind, JSON-safe.

        Taken atomically: concurrent increments either land entirely
        before or entirely after the snapshot, never half-way through.
        """
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "timers": {},
            "histograms": {},
        }
        with self._lock:
            for name, instrument in sorted(self._instruments.items()):
                group = {
                    Counter: "counters",
                    Gauge: "gauges",
                    Timer: "timers",
                    Histogram: "histograms",
                }[type(instrument)]
                out[group][name] = instrument.snapshot()
        return out

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the parallel sweep runner: worker processes record into
        local registries and the parent merges their snapshots, so a
        parallel sweep reports the same aggregate metrics as a serial
        one.  Counters and timers accumulate; gauges adopt the snapshot's
        value (last-write-wins, in merge order); histograms add bucket
        counts, which requires identical boundaries.
        """
        with self._lock:
            self._merge_locked(snapshot)

    def _merge_locked(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(float(value))
        for name, stats in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            count = int(stats["count"])
            if not count:
                continue
            timer.count += count
            timer.total_s += float(stats["total_s"])
            low, high = float(stats["min_s"]), float(stats["max_s"])
            timer.min_s = low if timer.min_s is None else min(timer.min_s, low)
            timer.max_s = high if timer.max_s is None else max(timer.max_s, high)
        for name, stats in snapshot.get("histograms", {}).items():
            boundaries = stats.get("boundaries")
            histogram = self.histogram(
                name, tuple(boundaries) if boundaries is not None else None
            )
            if boundaries is not None and tuple(boundaries) != histogram.boundaries:
                raise ObservabilityError(
                    f"histogram {name!r} merge with mismatched boundaries"
                )
            count = int(stats["count"])
            if not count:
                continue
            histogram.count += count
            histogram.total += float(stats["sum"])
            low, high = float(stats["min"]), float(stats["max"])
            histogram.min = low if histogram.min is None else min(histogram.min, low)
            histogram.max = high if histogram.max is None else max(histogram.max, high)
            bucket_counts = stats.get("bucket_counts")
            if bucket_counts is not None:
                for slot, extra in enumerate(bucket_counts):
                    histogram.bucket_counts[slot] += int(extra)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def observe(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_TIMER = _NullTimer("null")
_NULL_HISTOGRAM = _NullHistogram("null", boundaries=())


class NullMetrics(MetricsRegistry):
    """Disabled registry: hands out shared no-op singletons.

    Every accessor returns the same pre-built instrument whose mutators do
    nothing, so instrumented code paths neither allocate nor accumulate
    when observability is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def timer(self, name: str) -> Timer:
        return _NULL_TIMER

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "timers": {}, "histograms": {}}

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        # Must stay a no-op: the base implementation mutates timer /
        # histogram fields directly, which would corrupt the shared
        # null singletons.
        pass
