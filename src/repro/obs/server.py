"""In-process telemetry server: ``/metrics``, ``/health``, ``/runs``.

A :class:`TelemetryServer` wraps a stdlib
:class:`~http.server.ThreadingHTTPServer` on a daemon background thread
(named ``repro-telemetry``) so any run -- CLI command, benchmark, test --
can expose its live recorder over HTTP with zero dependencies:

``GET /metrics``
    OpenMetrics text rendered from an atomic
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    (:func:`repro.trace.export.to_openmetrics`).  When an SLO engine is
    attached, each scrape also evaluates the rules -- pulled evaluation,
    Prometheus-style, so there is no extra ticker thread to leak.
``GET /health``
    Liveness JSON: ``{"status": "ok", "uptime_s": ..., "run": {...}}``
    with the active run's id/kind/phase/last-event age when one exists.
``GET /runs``
    The run registry's full JSON snapshot
    (:meth:`~repro.obs.live.RunRegistry.snapshot`).
``GET /slo``
    Rule-by-rule status from the attached engine (404 when none is).

The server binds before :meth:`start` returns (so ``port`` is always
real, including when asked for port 0) and :meth:`stop` joins the
thread, so ``threading.enumerate()`` is restored to its pre-start set --
a property the CI smoke job asserts.
"""

from __future__ import annotations

import errno
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.recorder import Recorder
from repro.trace.export import to_openmetrics

__all__ = ["TelemetryServer", "parse_serve_address"]


def parse_serve_address(text: str) -> Tuple[str, int]:
    """Parse ``"PORT"``, ``":PORT"`` or ``"HOST:PORT"`` to ``(host, port)``.

    The host defaults to ``127.0.0.1``; port ``0`` asks the OS for an
    ephemeral port (read it back from ``TelemetryServer.port``).
    """
    host, _, port_text = text.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ObservabilityError(
            f"bad serve address {text!r} (expected PORT, :PORT or HOST:PORT)"
        ) from None
    if not 0 <= port <= 65535:
        raise ObservabilityError(f"serve port out of range: {port}")
    return host, port


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Request handler; the bound server carries the recorder/engine."""

    server_version = "repro-telemetry/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        # Scrapes must not spam the run's stderr.
        pass

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        recorder: Recorder = self.server.recorder  # type: ignore[attr-defined]
        engine = self.server.slo_engine  # type: ignore[attr-defined]
        if path == "/metrics":
            if engine is not None:
                engine.evaluate()
            body = to_openmetrics(recorder.metrics.snapshot())
            self._reply(
                200, body, "application/openmetrics-text; charset=utf-8"
            )
        elif path == "/health":
            run = recorder.runs.active_run()
            payload = {
                "status": "ok",
                "uptime_s": self.server.uptime_s(),  # type: ignore[attr-defined]
                "run": None
                if run is None
                else {
                    "run_id": run["run_id"],
                    "kind": run["kind"],
                    "phase": run["phase"],
                    "status": run["status"],
                    "last_event_age_s": run["last_event_age_s"],
                },
            }
            self._reply_json(200, payload)
        elif path == "/runs":
            self._reply_json(200, recorder.runs.snapshot())
        elif path == "/slo":
            if engine is None:
                self._reply_json(404, {"error": "no slo engine attached"})
            else:
                self._reply_json(200, engine.status())
        elif path == "/":
            self._reply_json(
                200, {"endpoints": ["/metrics", "/health", "/runs", "/slo"]}
            )
        else:
            self._reply_json(404, {"error": f"no such endpoint: {path}"})

    def _reply_json(self, code: int, payload: Any) -> None:
        self._reply(code, json.dumps(payload), "application/json")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            # The scraper hung up mid-response (timeout, ^C, restart).
            # That is its prerogative, not our error: drop the
            # connection quietly instead of spamming stderr or killing
            # the handler thread.
            self.close_connection = True


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Test runs start/stop servers rapidly on the same host.
    allow_reuse_address = True

    def handle_error(self, request: Any, client_address: Any) -> None:
        """Suppress tracebacks for routine client disconnects.

        The stdlib default prints a full traceback to stderr for *every*
        handler exception, including a scraper resetting its socket --
        which under aggressive polling floods the run's log.  Connection
        teardown errors are dropped; anything else still reports (via
        the stdlib path) because it is a real bug.
        """
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class TelemetryServer:
    """Serve a recorder's live state over HTTP from a background thread.

    Parameters
    ----------
    recorder:
        Source of metrics and run snapshots.  Works with any recorder;
        endpoints simply report empty state for null backends.
    host / port:
        Bind address; port ``0`` picks an ephemeral port.
    slo_engine:
        Optional :class:`~repro.obs.slo.SloEngine`, evaluated on every
        ``/metrics`` scrape and served on ``/slo``.

    Usable as a context manager (``with TelemetryServer(...) as srv:``).
    """

    def __init__(
        self,
        recorder: Recorder,
        host: str = "127.0.0.1",
        port: int = 0,
        slo_engine: Optional[Any] = None,
    ) -> None:
        self._recorder = recorder
        self._host = host
        self._requested_port = port
        self._slo_engine = slo_engine
        self._httpd: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    #: How many successive ports to try when the requested one is taken.
    BIND_ATTEMPTS = 8

    def _bind(self) -> _Server:
        """Bind, scanning ``port .. port+BIND_ATTEMPTS-1`` on EADDRINUSE.

        Two runs on one box (or a supervisor restarting a run whose old
        socket lingers in TIME_WAIT) should not die on a bind collision;
        the scrape endpoint's exact port is advertised via :attr:`url`
        anyway.  Port ``0`` is excluded -- the OS already guarantees a
        free ephemeral port.  Exhausting the scan raises
        :class:`~repro.errors.ObservabilityError` naming the full range.
        """
        if self._requested_port == 0:
            return _Server((self._host, 0), _TelemetryHandler)
        last: Optional[OSError] = None
        for offset in range(self.BIND_ATTEMPTS):
            port = self._requested_port + offset
            if port > 65535:
                break
            try:
                return _Server((self._host, port), _TelemetryHandler)
            except OSError as error:
                if error.errno != errno.EADDRINUSE:
                    raise
                last = error
        raise ObservabilityError(
            f"telemetry server: every port in "
            f"{self._requested_port}-{self._requested_port + self.BIND_ATTEMPTS - 1} "
            f"is in use"
        ) from last

    def start(self) -> "TelemetryServer":
        """Bind and start serving; idempotent, returns ``self``."""
        if self._httpd is not None:
            return self
        httpd = self._bind()
        httpd.recorder = self._recorder  # type: ignore[attr-defined]
        httpd.slo_engine = self._slo_engine  # type: ignore[attr-defined]
        started = time.monotonic()
        httpd.uptime_s = lambda: time.monotonic() - started  # type: ignore[attr-defined]
        self._started_monotonic = started
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        if self._httpd is None:
            raise ObservabilityError("telemetry server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL, e.g. ``http://127.0.0.1:43215``."""
        host = self._host if self._host not in ("", "0.0.0.0") else "127.0.0.1"
        return f"http://{host}:{self.port}"

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
