"""Structured observability: events, metrics, and span tracing.

The matching pipeline (``repro.core``), the message-level runtime
(``repro.distributed``), the dynamic re-matcher (``repro.dynamic``) and
the experiment harness (``repro.analysis``) all accept an optional
:class:`Recorder`.  A recorder bundles three orthogonal backends:

* **events** -- append-only stream of JSON-safe dicts: every algorithm
  round, simulator slot and market lifecycle transition, written to JSONL
  with a self-describing run manifest (:mod:`repro.obs.events`,
  :mod:`repro.obs.manifest`).
* **metrics** -- counters, gauges, timers and histograms in a named
  registry (:mod:`repro.obs.metrics`).
* **spans** -- nested wall/CPU timings of pipeline regions
  (:mod:`repro.obs.spans`).

Everything defaults to the *null* backend: with no recorder installed the
instrumented hot paths take one branch and allocate nothing, and results
are identical to the uninstrumented code.  Typical use::

    from repro.obs import JsonlEventSink, MetricsRegistry, Recorder
    from repro.obs import SpanTracer, build_manifest, use_recorder

    recorder = Recorder(
        events=JsonlEventSink("run.jsonl", manifest=build_manifest(seed=0)),
        metrics=MetricsRegistry(),
        spans=SpanTracer(),
    )
    with recorder, use_recorder(recorder):
        run_two_stage(market)          # rounds stream into run.jsonl

Event and metric naming conventions are documented in
``docs/architecture.md`` (Observability section).
"""

from repro.obs.events import (
    EventSink,
    JsonlEventSink,
    ListEventSink,
    NullEventSink,
    event_to_round,
    round_to_event,
)
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, build_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Timer,
    snapshot_quantile,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    Recorder,
    get_recorder,
    resolve_recorder,
    use_recorder,
)
from repro.obs.spans import NullSpanTracer, SpanRecord, SpanTracer
from repro.obs.summary import format_metrics_summary, format_span_tree

__all__ = [
    "EventSink",
    "JsonlEventSink",
    "ListEventSink",
    "NullEventSink",
    "event_to_round",
    "round_to_event",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "Timer",
    "snapshot_quantile",
    "NULL_RECORDER",
    "Recorder",
    "get_recorder",
    "resolve_recorder",
    "use_recorder",
    "NullSpanTracer",
    "SpanRecord",
    "SpanTracer",
    "format_metrics_summary",
    "format_span_tree",
]
