"""Structured observability: events, metrics, and span tracing.

The matching pipeline (``repro.core``), the message-level runtime
(``repro.distributed``), the dynamic re-matcher (``repro.dynamic``) and
the experiment harness (``repro.analysis``) all accept an optional
:class:`Recorder`.  A recorder bundles three orthogonal backends:

* **events** -- append-only stream of JSON-safe dicts: every algorithm
  round, simulator slot and market lifecycle transition, written to JSONL
  with a self-describing run manifest (:mod:`repro.obs.events`,
  :mod:`repro.obs.manifest`).
* **metrics** -- counters, gauges, timers and histograms in a named
  registry (:mod:`repro.obs.metrics`).
* **spans** -- nested wall/CPU timings of pipeline regions
  (:mod:`repro.obs.spans`).
* **runs** -- a live in-process run registry fed by the event stream
  (:mod:`repro.obs.live`), served over HTTP by the telemetry server
  (:mod:`repro.obs.server`) together with ``/metrics`` scrapes, watched
  from a terminal with ``repro watch`` (:mod:`repro.obs.watch`), and
  guarded by declarative SLO rules (:mod:`repro.obs.slo`).

Everything defaults to the *null* backend: with no recorder installed the
instrumented hot paths take one branch and allocate nothing, and results
are identical to the uninstrumented code.  Typical use::

    from repro.obs import JsonlEventSink, MetricsRegistry, Recorder
    from repro.obs import SpanTracer, build_manifest, use_recorder

    recorder = Recorder(
        events=JsonlEventSink("run.jsonl", manifest=build_manifest(seed=0)),
        metrics=MetricsRegistry(),
        spans=SpanTracer(),
    )
    with recorder, use_recorder(recorder):
        run_two_stage(market)          # rounds stream into run.jsonl

Event and metric naming conventions are documented in
``docs/architecture.md`` (Observability section).
"""

from repro.obs.events import (
    EventSink,
    JsonlEventSink,
    ListEventSink,
    NullEventSink,
    event_to_round,
    round_to_event,
)
from repro.obs.live import NULL_RUN_REGISTRY, NullRunRegistry, RunRegistry
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, build_manifest
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Timer,
    snapshot_quantile,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    Recorder,
    get_recorder,
    resolve_recorder,
    use_recorder,
)
from repro.obs.server import TelemetryServer, parse_serve_address
from repro.obs.slo import SloEngine, SloRule, SloViolation, parse_slo_rule
from repro.obs.spans import NullSpanTracer, SpanRecord, SpanTracer
from repro.obs.summary import format_metrics_summary, format_span_tree

__all__ = [
    "EventSink",
    "JsonlEventSink",
    "ListEventSink",
    "NullEventSink",
    "event_to_round",
    "round_to_event",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "Timer",
    "snapshot_quantile",
    "NULL_RECORDER",
    "Recorder",
    "get_recorder",
    "resolve_recorder",
    "use_recorder",
    "NullSpanTracer",
    "SpanRecord",
    "SpanTracer",
    "format_metrics_summary",
    "format_span_tree",
    "RunRegistry",
    "NullRunRegistry",
    "NULL_RUN_REGISTRY",
    "TelemetryServer",
    "parse_serve_address",
    "SloEngine",
    "SloRule",
    "SloViolation",
    "parse_slo_rule",
]
