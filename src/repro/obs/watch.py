"""The ``repro watch`` console: a refreshing live-run dashboard.

Attaches to either a running telemetry server (``http://host:port``) or
a growing trace JSONL file, and renders a compact terminal frame: run
phase and heartbeat age, a welfare sparkline, message/drop counters,
active faults, agent-step latency quantiles and SLO rule status.

The module is deliberately split into three seams so each is testable
without a terminal or a network:

* **Sources** -- :class:`ServerSource` (HTTP, stdlib ``urllib``) and
  :class:`TraceSource` (a :class:`~repro.trace.tail.TraceFollower`
  replaying events into a private
  :class:`~repro.obs.live.RunRegistry`).  Both produce the same
  plain-dict *frame*.
* **Renderer** -- :func:`render_frame` is a pure function from a frame
  dict to multi-line text.
* **Loop** -- :func:`watch` fetches/renders/sleeps, clearing the screen
  between frames (or appending, with ``plain=True``), for a bounded
  number of frames or until interrupted.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Mapping, Optional, TextIO

from repro.errors import ObservabilityError
from repro.obs.live import RunRegistry
from repro.obs.metrics import snapshot_quantile
from repro.trace.export import parse_openmetrics
from repro.trace.tail import TraceFollower

__all__ = [
    "sparkline",
    "render_frame",
    "ServerSource",
    "TraceSource",
    "open_source",
    "watch",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_ANSI_CLEAR = "\x1b[2J\x1b[H"


def sparkline(values: List[float], width: int = 32) -> str:
    """Render a value series as a fixed-width unicode sparkline.

    Keeps the *tail* of a series longer than ``width`` (the console
    cares about recent trajectory) and maps the retained range onto the
    eight block glyphs; a constant series renders mid-height.
    """
    if not values:
        return ""
    tail = [float(v) for v in values[-width:]]
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return _SPARK_CHARS[3] * len(tail)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(
        _SPARK_CHARS[int(round((v - lo) * scale))] for v in tail
    )


# ----------------------------------------------------------------------
# Frame assembly helpers
# ----------------------------------------------------------------------
def _group_value(group: Mapping[str, Any], name: str) -> Optional[Any]:
    """Look a metric up by raw name, then by exposition-mangled name."""
    if name in group:
        return group[name]
    return group.get(name.replace(".", "_"))


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _pick_run(frame: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    runs_snapshot = frame.get("runs") or {}
    runs = runs_snapshot.get("runs") or []
    if not runs:
        return None
    active_id = runs_snapshot.get("active_run")
    if active_id is not None:
        for run in runs:
            if run.get("run_id") == active_id:
                return run
    return runs[-1]


def render_frame(frame: Mapping[str, Any]) -> str:
    """Render one frame dict to display text (pure; no I/O)."""
    lines: List[str] = []
    source = frame.get("source", "?")
    stamp = frame.get("now", "")
    title = f"repro watch — {source}"
    lines.append(f"{title}{('  ' + stamp) if stamp else ''}")
    lines.append("-" * max(24, len(title)))

    error = frame.get("error")
    if error:
        lines.append(f"[source error] {error}")

    run = _pick_run(frame)
    runs_snapshot = frame.get("runs") or {}
    if run is None:
        lines.append("no runs observed yet")
    else:
        slot = f"  slot={run['slot']}" if "slot" in run else ""
        epoch = f"  epoch={run['epoch']}" if "epoch" in run else ""
        rounds = f"  rounds={run['rounds']}" if run.get("rounds") else ""
        lines.append(
            f"run #{run['run_id']} {run['kind']} [{run['phase']}]  "
            f"status={run['status']}{slot}{epoch}{rounds}  "
            f"last event {run['last_event_age_s']:.1f}s ago"
        )
        progress = run.get("progress") or {}
        if "total" in progress:
            completed = int(progress.get("completed", 0))
            total = int(progress["total"])
            lines.append(f"sweep     {completed}/{total} units")
        welfare = run.get("welfare") or []
        if welfare:
            lines.append(
                f"welfare   {sparkline(welfare)}  latest {welfare[-1]:.3f}"
            )
        sent = progress.get("messages_sent")
        if sent:
            delivered = progress.get("messages_delivered", 0)
            dropped = progress.get("messages_dropped", 0)
            drop_pct = 100.0 * dropped / sent if sent else 0.0
            inflight = progress.get("inflight")
            inflight_text = (
                f"  inflight={int(inflight)}" if inflight is not None else ""
            )
            lines.append(
                f"messages  sent={int(sent)} delivered={int(delivered)} "
                f"dropped={int(dropped)} ({drop_pct:.1f}%){inflight_text}"
            )
        crashed = run.get("crashed") or []
        partitions = run.get("partitions", 0)
        if crashed or partitions:
            lines.append(
                f"faults    crashed={crashed} partitions={partitions}"
            )
        if run.get("slo_violations"):
            lines.append(f"slo!      violated={run['slo_violations']}")

    metrics = frame.get("metrics") or {}
    timers = metrics.get("timers") or {}
    if timers:
        hot = sorted(
            timers.items(),
            key=lambda item: -float(item[1].get("total_s", 0.0)),
        )[:3]
        parts = [
            f"{name}={_format_seconds(float(stats.get('total_s', 0.0)))}"
            for name, stats in hot
        ]
        lines.append("phases    " + "  ".join(parts))

    profile = frame.get("profile") or {}
    spans = profile.get("spans") or []
    if spans:
        parts = [
            f"{row['name']}={_format_seconds(float(row['self_s']))}"
            for row in spans[:3]
        ]
        lines.append("top spans " + "  ".join(parts))
    allocs = profile.get("allocs") or []
    if allocs:
        parts = [
            f"{row['site']}={row['size_kb']:.1f}kB" for row in allocs[:3]
        ]
        lines.append("top alloc " + "  ".join(parts))

    histograms = metrics.get("histograms") or {}
    step = _group_value(histograms, "sim.agent_step_s")
    if step and step.get("count"):
        p50 = snapshot_quantile(step, 0.5)
        p99 = snapshot_quantile(step, 0.99)
        lines.append(
            f"latency   agent step p50={_format_seconds(p50)} "
            f"p99={_format_seconds(p99)}  n={int(step['count'])}"
        )

    slo = frame.get("slo")
    if slo and slo.get("rules"):
        for rule in slo["rules"]:
            value = rule.get("value")
            value_text = "n/a" if value is None else f"{value:g}"
            flag = "ok" if rule.get("ok") else "VIOLATED"
            lines.append(f"slo       {rule['rule']}: {flag} ({value_text})")

    counts: List[str] = []
    if runs_snapshot.get("runs_started"):
        counts.append(f"runs={runs_snapshot['runs_started']}")
    if runs_snapshot.get("events_observed"):
        counts.append(f"events={runs_snapshot['events_observed']}")
    if frame.get("skipped"):
        counts.append(f"torn/skipped lines={frame['skipped']}")
    if counts:
        lines.append("totals    " + "  ".join(counts))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class ServerSource:
    """Frame source backed by a telemetry server's HTTP endpoints."""

    def __init__(self, url: str, timeout_s: float = 2.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    def _get(self, path: str) -> Optional[bytes]:
        try:
            with urllib.request.urlopen(
                f"{self.url}{path}", timeout=self.timeout_s
            ) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            if error.code == 404:
                return None
            raise

    def fetch(self) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"source": self.url}
        try:
            runs_raw = self._get("/runs")
            health_raw = self._get("/health")
            metrics_raw = self._get("/metrics")
            slo_raw = self._get("/slo")
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            frame["error"] = str(error)
            return frame
        if runs_raw is not None:
            frame["runs"] = json.loads(runs_raw)
        if health_raw is not None:
            frame["health"] = json.loads(health_raw)
        if metrics_raw is not None:
            frame["metrics"] = parse_openmetrics(
                metrics_raw.decode("utf-8")
            )
        if slo_raw is not None:
            frame["slo"] = json.loads(slo_raw)
        return frame


class TraceSource:
    """Frame source tailing a growing trace JSONL file.

    Events are replayed into a private :class:`RunRegistry`, so a trace
    tail renders through exactly the same run model as the live server;
    torn or mangled lines are skipped and surfaced as a counter in the
    frame rather than killing the console.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._follower = TraceFollower(path)
        self._registry = RunRegistry()

    def fetch(self) -> Dict[str, Any]:
        for event in self._follower.poll():
            self._registry.observe(event)
        return {
            "source": self.path,
            "runs": self._registry.snapshot(),
            "skipped": self._follower.skipped,
        }


def _load_profile_panel(path: str) -> Dict[str, Any]:
    """Best-effort load of a profile payload for the watch panels.

    The profile artifact is written when the profiled run *finishes*, so
    while it does not exist yet (or is mid-replace) the panels simply
    stay hidden; no error surfaces in the frame.
    """
    from repro.prof.report import load_profile

    try:
        return load_profile(path)
    except ObservabilityError:
        return {}


def open_source(target: str):
    """``http(s)://...`` targets get a :class:`ServerSource`, else a trace."""
    if target.startswith(("http://", "https://")):
        return ServerSource(target)
    return TraceSource(target)


# ----------------------------------------------------------------------
# Loop
# ----------------------------------------------------------------------
def watch(
    target: str,
    interval_s: float = 1.0,
    frames: Optional[int] = None,
    plain: bool = False,
    stream: Optional[TextIO] = None,
    sleep: Callable[[float], None] = time.sleep,
    profile_path: Optional[str] = None,
) -> int:
    """Run the refreshing dashboard loop; returns a CLI exit code.

    ``frames`` bounds the number of refreshes (``None`` means until
    interrupted); ``plain`` appends frames instead of clearing the
    screen (useful for logs and tests).  ``profile_path`` names a
    ``--profile-out`` directory: once its ``profile.json`` appears
    (profiles are written when the run finishes), top self-time spans
    and allocation sites join the frame.  Ctrl-C exits cleanly.
    """
    if interval_s <= 0:
        raise ObservabilityError(
            f"watch interval must be positive, got {interval_s}"
        )
    import sys

    out = stream if stream is not None else sys.stdout
    source = open_source(target)
    rendered = 0
    try:
        while frames is None or rendered < frames:
            frame = source.fetch()
            if profile_path is not None:
                frame["profile"] = _load_profile_panel(profile_path)
            frame["now"] = time.strftime("%H:%M:%S")
            text = render_frame(frame)
            if plain:
                out.write(text + "\n\n")
            else:
                out.write(_ANSI_CLEAR + text + "\n")
            out.flush()
            rendered += 1
            if frames is not None and rendered >= frames:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        out.write("\n")
    return 0
