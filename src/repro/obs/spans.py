"""Nested span tracing with wall and CPU time.

A *span* is one timed region of the pipeline (``stage1``, ``stage2.
transfer``, ``simulator.run`` ...).  Spans nest: the tracer keeps a stack,
so each finished :class:`SpanRecord` knows its depth and parent and the
collection can be rendered as a tree (``repro.obs.summary``) or emitted as
flat events.

Wall time uses :func:`time.perf_counter`; CPU time uses
:func:`time.process_time`, so a span that mostly sleeps (or waits on a
lossy-network retransmission timer in simulated time) shows wall >> CPU.

:class:`NullSpanTracer` is the disabled backend: ``span(...)`` returns a
shared no-op context manager, so wrapping a region costs two method calls
and zero allocation when tracing is off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["SpanRecord", "SpanTracer", "NullSpanTracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dotted region name, e.g. ``"stage2.transfer"``.
    index / parent:
        Position in the tracer's record list and the parent span's index
        (``-1`` for roots).  Children always finish before their parent,
        so a child's index is *smaller* than its parent's.
    depth:
        Nesting depth (0 for roots).
    wall_s / cpu_s:
        Elapsed :func:`time.perf_counter` / :func:`time.process_time`.
    start_s:
        The :func:`time.perf_counter` reading at span entry.  Only
        differences between ``start_s`` values within one process are
        meaningful; the Chrome-trace exporter uses them to lay spans on
        a real timeline.
    """

    name: str
    index: int
    parent: int
    depth: int
    wall_s: float
    cpu_s: float
    start_s: float = 0.0


class _ActiveSpan:
    """Context manager for one running span (internal)."""

    __slots__ = ("_tracer", "name", "parent", "depth", "_wall0", "_cpu0")

    def __init__(self, tracer: "SpanTracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.parent = -1
        self.depth = 0
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack
        if stack:
            self.depth = stack[-1].depth + 1
        stack.append(self)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        self._tracer._finish(self, wall, cpu)


class SpanTracer:
    """Collects :class:`SpanRecord` values from nested ``span()`` blocks.

    Parameters
    ----------
    on_finish:
        Optional callback invoked with each finished record (the recorder
        uses it to mirror spans into the event stream).
    """

    enabled = True

    def __init__(
        self, on_finish: Optional[Callable[[SpanRecord], None]] = None
    ) -> None:
        self.records: List[SpanRecord] = []
        self.on_finish = on_finish
        self._stack: List[_ActiveSpan] = []
        #: Index of the record produced by each *open* ancestor is unknown
        #: until it closes, so children remember their parent object and
        #: the tracer fixes up indices as spans finish.
        self._pending_parents: dict = {}

    def span(self, name: str) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("stage1"): ...``."""
        return _ActiveSpan(self, name)

    def _finish(self, active: _ActiveSpan, wall_s: float, cpu_s: float) -> None:
        stack = self._stack
        assert stack and stack[-1] is active, (
            f"span {active.name!r} closed out of order"
        )
        stack.pop()
        index = len(self.records)
        # A parent's index is unknown until it finishes (after us), so the
        # child registers a forward promise keyed by the parent *object*
        # and the parent patches its children when it closes.
        record = SpanRecord(
            name=active.name,
            index=index,
            parent=-1,  # roots stay -1; others patched by _resolve_children
            depth=active.depth,
            wall_s=wall_s,
            cpu_s=cpu_s,
            start_s=active._wall0,
        )
        if stack:
            self._pending_parents.setdefault(id(stack[-1]), []).append(index)
        self.records.append(record)
        self._resolve_children(id(active), index)
        if self.on_finish is not None:
            self.on_finish(self.records[index])

    def _resolve_children(self, parent_key: int, index: int) -> None:
        children = self._pending_parents.pop(parent_key, None)
        if not children:
            return
        for child_index in children:
            old = self.records[child_index]
            self.records[child_index] = SpanRecord(
                name=old.name,
                index=old.index,
                parent=index,
                depth=old.depth,
                wall_s=old.wall_s,
                cpu_s=old.cpu_s,
                start_s=old.start_s,
            )

    def roots(self) -> List[SpanRecord]:
        """Finished top-level spans, in completion order."""
        return [r for r in self.records if r.depth == 0]


class _NullSpan:
    """Shared no-op context manager handed out by :class:`NullSpanTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullSpanTracer(SpanTracer):
    """Disabled tracer: ``span()`` is a constant-time no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN
