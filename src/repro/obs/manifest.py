"""Run-manifest construction.

Every JSONL trace opens with one ``manifest`` line describing the run:
seed, market shape, caller-supplied configuration, and the library
versions that produced it.  A trace file is therefore self-describing --
the analysis that reads it back never has to guess which code or workload
generated the events that follow.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Any, Dict, Optional

__all__ = ["build_manifest", "MANIFEST_SCHEMA_VERSION"]

#: Bump when the shape of emitted events changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of config values to JSON-serialisable ones."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    return repr(value)


def build_manifest(
    seed: Optional[int] = None,
    market: Optional[Any] = None,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the manifest header for one observed run.

    Parameters
    ----------
    seed:
        The run's top-level RNG seed, if it has one.
    market:
        Optional :class:`~repro.core.market.SpectrumMarket`; its virtual
        shape (buyers, channels, MWIS algorithm) is recorded when given.
    config:
        Arbitrary caller configuration (e.g. parsed CLI arguments);
        values are coerced to JSON-safe types, falling back to ``repr``.
    """
    manifest: Dict[str, Any] = {
        "event": "manifest",
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_unix": time.time(),
        "seed": seed,
        "versions": _library_versions(),
        "platform": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "system": platform.system(),
        },
    }
    if market is not None:
        manifest["market"] = {
            "num_buyers": market.num_buyers,
            "num_channels": market.num_channels,
            "mwis_algorithm": str(market.mwis_algorithm.value),
        }
    if config is not None:
        manifest["config"] = _json_safe(config)
    return manifest


def _library_versions() -> Dict[str, str]:
    import numpy

    import repro

    versions = {"repro": repro.__version__, "numpy": numpy.__version__}
    # scipy/networkx are runtime deps but not imported on the hot path;
    # report them only if some other module already paid the import.
    for name in ("scipy", "networkx"):
        module = sys.modules.get(name)
        if module is not None and hasattr(module, "__version__"):
            versions[name] = module.__version__
    return versions
