"""Synthetic interference-graph families.

These generators back the test suite, the ablation benchmarks, and any user
who wants to exercise the matching algorithms on structured rather than
geometric interference.  The two degenerate families are analytically
interesting:

* :func:`empty_graph` -- no interference: every channel has infinite
  "quota", every buyer can win her favourite channel, and the proposed
  algorithm is trivially optimal.
* :func:`complete_graph` -- total interference: each channel serves at most
  one buyer, and the problem degenerates to the classic one-to-one stable
  marriage setting (paper, proof of Proposition 1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import MarketConfigurationError
from repro.interference.graph import InterferenceGraph, InterferenceMap

__all__ = [
    "empty_graph",
    "complete_graph",
    "random_gnp_graph",
    "ring_graph",
    "star_graph",
    "interference_map_from_edge_lists",
]


def empty_graph(num_buyers: int) -> InterferenceGraph:
    """Graph with no interference edges (unlimited spectrum reuse)."""
    return InterferenceGraph(num_buyers)


def complete_graph(num_buyers: int) -> InterferenceGraph:
    """Graph where every pair of buyers interferes (no spectrum reuse)."""
    edges = [
        (j, k) for j in range(num_buyers) for k in range(j + 1, num_buyers)
    ]
    return InterferenceGraph(num_buyers, edges)


def random_gnp_graph(
    num_buyers: int,
    edge_probability: float,
    rng: np.random.Generator,
) -> InterferenceGraph:
    """Erdos-Renyi ``G(n, p)`` interference graph.

    Parameters
    ----------
    num_buyers:
        Node count.
    edge_probability:
        Independent probability of each potential edge, in ``[0, 1]``.
    rng:
        NumPy random generator; passing it explicitly keeps every workload
        reproducible from a single seed.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise MarketConfigurationError(
            f"edge_probability must lie in [0, 1], got {edge_probability}"
        )
    edges: List[Tuple[int, int]] = []
    for j in range(num_buyers):
        for k in range(j + 1, num_buyers):
            if rng.random() < edge_probability:
                edges.append((j, k))
    return InterferenceGraph(num_buyers, edges)


def ring_graph(num_buyers: int) -> InterferenceGraph:
    """Cycle graph: buyer ``j`` interferes with ``j±1 (mod n)``.

    With ``n >= 3`` the MWIS is non-trivial but known in closed form for
    unit weights, which makes the ring a good ground-truth fixture for the
    greedy solvers.
    """
    if num_buyers < 3:
        raise MarketConfigurationError("a ring needs at least 3 buyers")
    edges = [(j, (j + 1) % num_buyers) for j in range(num_buyers)]
    return InterferenceGraph(num_buyers, edges)


def star_graph(num_buyers: int, center: int = 0) -> InterferenceGraph:
    """Star graph: one hub buyer interferes with every other buyer."""
    if num_buyers < 1:
        raise MarketConfigurationError("a star needs at least 1 buyer")
    if not 0 <= center < num_buyers:
        raise MarketConfigurationError(
            f"center {center} out of range [0, {num_buyers})"
        )
    edges = [(center, j) for j in range(num_buyers) if j != center]
    return InterferenceGraph(num_buyers, edges)


def interference_map_from_edge_lists(
    num_buyers: int,
    per_channel_edges: Sequence[Sequence[Tuple[int, int]]],
) -> InterferenceMap:
    """Build an :class:`InterferenceMap` from explicit per-channel edge lists.

    Convenient for hand-crafted fixtures such as the paper's toy example
    (Fig. 3) where each channel's conflicts are enumerated directly.
    """
    if not per_channel_edges:
        raise MarketConfigurationError("need edge lists for at least one channel")
    graphs = [InterferenceGraph(num_buyers, edges) for edges in per_channel_edges]
    return InterferenceMap(graphs)
