"""Per-channel interference graphs.

The paper (Section II-A) models spectrum reuse with a family of graphs
``{G_i = (V, E_i)}`` -- one graph per channel ``i`` -- whose nodes are the
virtual buyers and whose edges join pairs of buyers that would interfere if
they operated on channel ``i`` at the same time.  ``e^i_{j,j'} = 1`` denotes
such an edge.

:class:`InterferenceGraph` stores one channel's graph as adjacency sets over
integer buyer identifiers and exposes the queries the matching algorithms
need: pairwise interference, neighbourhoods, and independence of candidate
coalitions.  :class:`InterferenceMap` bundles the per-channel family and
enforces that every graph covers the same buyer population.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.errors import MarketConfigurationError

__all__ = ["InterferenceGraph", "InterferenceMap"]


class InterferenceGraph:
    """An undirected conflict graph over a fixed set of buyers.

    Parameters
    ----------
    num_buyers:
        Size of the buyer population.  Nodes are the integers
        ``0 .. num_buyers - 1``; every node exists even if isolated.
    edges:
        Iterable of ``(j, k)`` pairs of interfering buyers.  Self-loops are
        rejected; duplicate and reversed pairs are merged.

    Notes
    -----
    The graph is immutable after construction.  The matching algorithms
    share one :class:`InterferenceGraph` per channel across many queries,
    so immutability keeps aliasing safe and lets instances be hashed into
    caches.
    """

    __slots__ = ("_num_buyers", "_adjacency", "_adjacency_bits", "_csr",
                 "_packed")

    def __init__(self, num_buyers: int, edges: Iterable[Tuple[int, int]] = ()) -> None:
        if num_buyers < 0:
            raise MarketConfigurationError(
                f"num_buyers must be non-negative, got {num_buyers}"
            )
        self._num_buyers = int(num_buyers)
        adjacency: List[Set[int]] = [set() for _ in range(self._num_buyers)]
        for j, k in edges:
            self._check_node(j)
            self._check_node(k)
            if j == k:
                raise MarketConfigurationError(
                    f"self-interference edge ({j}, {k}) is not allowed"
                )
            adjacency[j].add(k)
            adjacency[k].add(j)
        self._adjacency: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(neighbours) for neighbours in adjacency
        )
        self._adjacency_bits: Optional[Tuple[int, ...]] = None
        self._csr = None
        self._packed = None

    @classmethod
    def from_adjacency_matrix(cls, matrix) -> "InterferenceGraph":
        """Build a graph from a boolean adjacency matrix (vectorised path).

        ``matrix`` must be square and symmetric with a zero diagonal.  This
        constructor skips the per-edge Python loop, which matters for
        large geometric deployments (thousands of buyers, millions of
        edges).
        """
        import numpy as np

        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise MarketConfigurationError(
                f"adjacency matrix must be square, got shape {matrix.shape}"
            )
        if matrix.diagonal().any():
            raise MarketConfigurationError(
                "adjacency matrix must have a zero diagonal (no self-loops)"
            )
        if not np.array_equal(matrix, matrix.T):
            raise MarketConfigurationError("adjacency matrix must be symmetric")
        graph = cls.__new__(cls)
        graph._num_buyers = int(matrix.shape[0])
        graph._adjacency = tuple(
            frozenset(np.flatnonzero(row).tolist()) for row in matrix
        )
        # The boolean matrix is in hand, so the bitmask representation is
        # one vectorised packbits away -- orders of magnitude cheaper than
        # rebuilding it per edge from the adjacency sets later.
        packed = np.packbits(matrix, axis=1, bitorder="little")
        graph._adjacency_bits = tuple(
            int.from_bytes(row.tobytes(), "little") for row in packed
        )
        graph._csr = None
        graph._packed = None
        return graph

    @classmethod
    def from_edge_arrays(cls, num_buyers: int, u, v) -> "InterferenceGraph":
        """Build a graph from parallel edge-endpoint arrays (sparse path).

        ``u`` and ``v`` are equal-length integer arrays; each position is
        one undirected edge ``(u[i], v[i])``.  Unlike
        :meth:`from_adjacency_matrix` this never materialises an ``N x N``
        matrix, so it is the constructor of choice for large sparse
        geometric deployments (``N`` in the tens of thousands).  The CSR
        neighbour index is built directly from the arrays, so
        :meth:`neighbor_csr` is free afterwards.
        """
        import numpy as np

        if num_buyers < 0:
            raise MarketConfigurationError(
                f"num_buyers must be non-negative, got {num_buyers}"
            )
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise MarketConfigurationError(
                f"edge arrays must have equal length, got {u.size} and {v.size}"
            )
        if u.size:
            lo = min(int(u.min()), int(v.min()))
            hi = max(int(u.max()), int(v.max()))
            if lo < 0 or hi >= num_buyers:
                raise MarketConfigurationError(
                    f"edge endpoint out of range [0, {num_buyers})"
                )
            if bool((u == v).any()):
                raise MarketConfigurationError(
                    "self-interference edges are not allowed"
                )
        # Symmetrise, sort lexicographically by (node, neighbour) and
        # deduplicate to get a canonical CSR layout with ascending
        # neighbour lists per node.
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if src.size:
            keep = np.empty(src.size, dtype=bool)
            keep[0] = True
            np.not_equal(src[1:], src[:-1], out=keep[1:])
            keep[1:] |= dst[1:] != dst[:-1]
            src, dst = src[keep], dst[keep]
        indptr = np.zeros(num_buyers + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_buyers), out=indptr[1:])
        indices = dst.astype(np.int32)
        graph = cls.__new__(cls)
        graph._num_buyers = int(num_buyers)
        bounds = indptr.tolist()
        neighbour_lists = np.split(indices, bounds[1:-1])
        graph._adjacency = tuple(
            frozenset(chunk.tolist()) for chunk in neighbour_lists
        )
        graph._adjacency_bits = None
        graph._csr = (indptr, indices)
        graph._packed = None
        return graph

    def _check_node(self, j: int) -> None:
        if not 0 <= j < self._num_buyers:
            raise MarketConfigurationError(
                f"buyer index {j} out of range [0, {self._num_buyers})"
            )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_buyers(self) -> int:
        """Number of nodes (virtual buyers) in the graph."""
        return self._num_buyers

    @property
    def num_edges(self) -> int:
        """Number of interference edges."""
        return sum(len(neighbours) for neighbours in self._adjacency) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over edges as sorted ``(j, k)`` tuples with ``j < k``."""
        for j, neighbours in enumerate(self._adjacency):
            for k in neighbours:
                if j < k:
                    yield (j, k)

    def interferes(self, j: int, k: int) -> bool:
        """Return ``True`` iff buyers ``j`` and ``k`` interfere (``e_{j,k}=1``)."""
        self._check_node(j)
        self._check_node(k)
        return k in self._adjacency[j]

    def neighbors(self, j: int) -> FrozenSet[int]:
        """Return the interfering neighbours of buyer ``j``."""
        self._check_node(j)
        return self._adjacency[j]

    def degree(self, j: int) -> int:
        """Number of interfering neighbours of buyer ``j``."""
        return len(self.neighbors(j))

    @property
    def adjacency_bits(self) -> Tuple[int, ...]:
        """Per-node neighbourhoods as Python-int bitmasks.

        ``adjacency_bits[j]`` has bit ``k`` set iff ``j`` and ``k``
        interfere, so set algebra on candidate pools (intersection,
        union, membership, degree) becomes word-parallel integer
        arithmetic.  This is the representation the fast MWIS kernels in
        :mod:`repro.interference.bitset` operate on.

        Built lazily on first access and cached for the graph's lifetime
        (the graph is immutable, so the masks never go stale).
        """
        if self._adjacency_bits is None:
            import numpy as np

            masks = []
            bits = np.zeros(self._num_buyers, dtype=np.uint8)
            for neighbours in self._adjacency:
                if neighbours:
                    idx = np.fromiter(
                        neighbours, dtype=np.int64, count=len(neighbours)
                    )
                    bits[idx] = 1
                    mask = int.from_bytes(
                        np.packbits(bits, bitorder="little").tobytes(), "little"
                    )
                    bits[idx] = 0
                else:
                    mask = 0
                masks.append(mask)
            self._adjacency_bits = tuple(masks)
        return self._adjacency_bits

    def neighbor_csr(self):
        """Per-node neighbour lists in CSR form: ``(indptr, indices)``.

        ``indices[indptr[j]:indptr[j + 1]]`` is buyer ``j``'s neighbour
        set as an ascending ``int32`` array.  This is the zero-copy,
        array-native view the struct-of-arrays Stage-I path consumes when
        linking pool arrivals into the packed adjacency rows.  Built
        lazily (vectorised from the bitmasks when they exist, otherwise
        from the adjacency sets) and cached for the graph's lifetime.
        """
        if self._csr is None:
            import numpy as np

            n = self._num_buyers
            if self._adjacency_bits is not None and n:
                # Unpack the cached Python-int masks in bulk: fixed-width
                # little-endian bytes -> a (N, N) bit matrix -> nonzero.
                width = (n + 7) // 8
                raw = b"".join(
                    mask.to_bytes(width, "little")
                    for mask in self._adjacency_bits
                )
                bits = np.unpackbits(
                    np.frombuffer(raw, dtype=np.uint8).reshape(n, width),
                    axis=1,
                    bitorder="little",
                )[:, :n]
                rows, cols = np.nonzero(bits)
                indptr = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
                indices = cols.astype(np.int32)
            else:
                counts = [len(nbrs) for nbrs in self._adjacency]
                indptr = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(np.asarray(counts, dtype=np.int64), out=indptr[1:])
                indices = np.empty(int(indptr[-1]), dtype=np.int32)
                for j, nbrs in enumerate(self._adjacency):
                    if nbrs:
                        chunk = np.fromiter(nbrs, dtype=np.int32, count=len(nbrs))
                        chunk.sort()
                        indices[indptr[j] : indptr[j + 1]] = chunk
            self._csr = (indptr, indices)
        return self._csr

    def packed_rows(self):
        """Adjacency as a dense ``(N, ceil(N/64))`` uint64 bit matrix.

        Row ``j`` packs buyer ``j``'s neighbourhood little-endian over
        buyer-id bit positions -- the array-native counterpart of
        :attr:`adjacency_bits` consumed by the struct-of-arrays Stage-I
        pool caches.  Dense in ``N``, so callers should only use it for
        small-to-medium markets (the SoA layer falls back to CSR-based
        pool rows above its density threshold).  Built lazily and cached
        for the graph's lifetime.
        """
        if self._packed is None:
            import numpy as np

            n = self._num_buyers
            words = (n + 63) // 64 if n else 1
            indptr, indices = self.neighbor_csr()
            bits = np.zeros((n, words * 64), dtype=bool)
            if indices.size:
                src = np.repeat(
                    np.arange(n, dtype=np.int64), np.diff(indptr)
                )
                bits[src, indices] = True
            self._packed = np.packbits(
                bits, axis=1, bitorder="little"
            ).view(np.uint64)
        return self._packed

    def edge_arrays(self):
        """Edges as parallel arrays ``(u, v)`` with ``u < v``, lexsorted.

        The inverse of :meth:`from_edge_arrays`: a compact, picklable and
        shareable description of the graph used to ship interference
        structure across process boundaries (shared-memory sweeps)
        without serialising per-node Python sets.
        """
        import numpy as np

        indptr, indices = self.neighbor_csr()
        src = np.repeat(
            np.arange(self._num_buyers, dtype=np.int32), np.diff(indptr)
        )
        upper = src < indices
        return src[upper], indices[upper].copy()

    # ------------------------------------------------------------------
    # Coalition-level queries
    # ------------------------------------------------------------------
    def is_independent(self, buyers: Iterable[int]) -> bool:
        """Return ``True`` iff no two buyers in ``buyers`` interfere.

        This is the interference-free condition a spectrum coalition must
        satisfy to be preferred by its seller (eq. 6) and for its members to
        obtain non-zero utility (eq. 5).
        """
        chosen = list(buyers)
        chosen_set = set(chosen)
        if len(chosen_set) != len(chosen):
            # A buyer listed twice trivially "interferes with herself" in the
            # dummy-expansion sense: the same buyer cannot hold one channel
            # twice.
            return False
        for j in chosen_set:
            if not chosen_set.isdisjoint(self._adjacency[j]):
                return False
        return True

    def conflicts_with_set(self, j: int, buyers: Iterable[int]) -> bool:
        """Return ``True`` iff buyer ``j`` interferes with anyone in ``buyers``."""
        self._check_node(j)
        neighbours = self._adjacency[j]
        return any(k in neighbours for k in buyers if k != j)

    def independent_subset_greedily_compatible(
        self, anchor: Iterable[int], candidates: Sequence[int]
    ) -> List[int]:
        """Filter ``candidates`` down to those compatible with ``anchor``.

        Returns the candidates that do not interfere with any buyer in
        ``anchor`` (candidates may still interfere with *each other*; that
        is resolved by the MWIS solver).
        """
        anchor_set = set(anchor)
        return [
            j
            for j in candidates
            if j not in anchor_set and not self.conflicts_with_set(j, anchor_set)
        ]

    # ------------------------------------------------------------------
    # Interop / dunder
    # ------------------------------------------------------------------
    def to_networkx(self) -> "nx.Graph":
        """Export the graph to :class:`networkx.Graph` (nodes ``0..N-1``)."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self._num_buyers))
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph: "nx.Graph", num_buyers: int | None = None) -> "InterferenceGraph":
        """Build an :class:`InterferenceGraph` from a networkx graph.

        Nodes must be integers; ``num_buyers`` defaults to ``max(node)+1``
        (or 0 for an empty graph) so isolated high-index nodes are kept.
        """
        nodes = list(graph.nodes())
        if any(not isinstance(n, int) for n in nodes):
            raise MarketConfigurationError("networkx graph nodes must be integers")
        inferred = (max(nodes) + 1) if nodes else 0
        size = inferred if num_buyers is None else num_buyers
        return cls(size, graph.edges())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InterferenceGraph):
            return NotImplemented
        return (
            self._num_buyers == other._num_buyers
            and self._adjacency == other._adjacency
        )

    def __hash__(self) -> int:
        return hash((self._num_buyers, self._adjacency))

    def __repr__(self) -> str:
        return (
            f"InterferenceGraph(num_buyers={self._num_buyers}, "
            f"num_edges={self.num_edges})"
        )


class InterferenceMap:
    """The per-channel family ``{G_i}`` of interference graphs.

    Parameters
    ----------
    graphs:
        One :class:`InterferenceGraph` per channel, indexed by channel id
        ``0 .. M-1``.  All graphs must share the same buyer population size.

    The map is the library's single source of truth for spectrum-reuse
    feasibility; the matching core, the optimal solvers and the distributed
    agents all consult it through the same interface.
    """

    __slots__ = ("_graphs", "_num_buyers")

    def __init__(self, graphs: Sequence[InterferenceGraph]) -> None:
        graphs = tuple(graphs)
        if not graphs:
            raise MarketConfigurationError("an InterferenceMap needs at least one channel")
        sizes = {g.num_buyers for g in graphs}
        if len(sizes) != 1:
            raise MarketConfigurationError(
                f"all channel graphs must cover the same buyers; saw sizes {sorted(sizes)}"
            )
        self._graphs = graphs
        self._num_buyers = graphs[0].num_buyers

    @property
    def num_channels(self) -> int:
        """Number of channels ``M`` (virtual sellers)."""
        return len(self._graphs)

    @property
    def num_buyers(self) -> int:
        """Number of virtual buyers ``N``."""
        return self._num_buyers

    def graph(self, channel: int) -> InterferenceGraph:
        """Return channel ``channel``'s interference graph ``G_i``."""
        if not 0 <= channel < len(self._graphs):
            raise MarketConfigurationError(
                f"channel {channel} out of range [0, {len(self._graphs)})"
            )
        return self._graphs[channel]

    def __getitem__(self, channel: int) -> InterferenceGraph:
        return self.graph(channel)

    def __iter__(self) -> Iterator[InterferenceGraph]:
        return iter(self._graphs)

    def __len__(self) -> int:
        return len(self._graphs)

    def interferes(self, channel: int, j: int, k: int) -> bool:
        """Return ``e^channel_{j,k}`` as a bool."""
        return self.graph(channel).interferes(j, k)

    def is_independent(self, channel: int, buyers: Iterable[int]) -> bool:
        """Check a coalition's interference-freedom on one channel."""
        return self.graph(channel).is_independent(buyers)

    def with_clique(self, buyers: Sequence[int]) -> "InterferenceMap":
        """Return a new map with ``buyers`` pairwise interfering on *every* channel.

        Used by the dummy expansion of Section II-A: virtual buyers cloned
        from the same physical buyer must never share a channel, which the
        paper encodes by making them interfering neighbours everywhere.
        """
        clique_edges = [
            (buyers[a], buyers[b])
            for a in range(len(buyers))
            for b in range(a + 1, len(buyers))
        ]
        new_graphs = []
        for graph in self._graphs:
            edges = list(graph.edges()) + clique_edges
            new_graphs.append(InterferenceGraph(graph.num_buyers, edges))
        return InterferenceMap(new_graphs)

    def density(self, channel: int) -> float:
        """Edge density of channel ``channel``'s graph in [0, 1]."""
        graph = self.graph(channel)
        n = graph.num_buyers
        if n < 2:
            return 0.0
        return 2.0 * graph.num_edges / (n * (n - 1))

    def __repr__(self) -> str:
        return (
            f"InterferenceMap(num_channels={self.num_channels}, "
            f"num_buyers={self.num_buyers})"
        )
