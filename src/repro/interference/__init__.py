"""Interference substrate: per-channel conflict graphs and MWIS solvers.

Spectrum reuse is governed by *interference graphs* (paper, Section II-A):
for every channel ``i`` there is a graph ``G_i`` over the virtual buyers,
and two buyers joined by an edge must not be matched to channel ``i``
simultaneously.  This subpackage provides:

* :class:`~repro.interference.graph.InterferenceGraph` -- one channel's
  conflict graph with independence queries.
* :class:`~repro.interference.graph.InterferenceMap` -- the per-channel
  family ``{G_i}``.
* :mod:`~repro.interference.geometric` -- the paper's disk-model graph
  construction from buyer locations and channel transmission ranges.
* :mod:`~repro.interference.generators` -- synthetic graph families used in
  tests and ablations.
* :mod:`~repro.interference.mwis` -- greedy (Sakai et al. [8]) and exact
  maximum-weight-independent-set solvers used by sellers to form their
  most-preferred coalitions.
"""

from repro.interference.graph import InterferenceGraph, InterferenceMap
from repro.interference.geometric import (
    disk_interference_graph,
    build_geometric_interference_map,
)
from repro.interference.generators import (
    empty_graph,
    complete_graph,
    random_gnp_graph,
    ring_graph,
    star_graph,
    interference_map_from_edge_lists,
)
from repro.interference.mwis import (
    mwis_greedy_gwmin,
    mwis_greedy_gwmin2,
    mwis_greedy_gwmax,
    mwis_exact,
    mwis_solve,
    is_independent_set,
    MwisAlgorithm,
)

__all__ = [
    "InterferenceGraph",
    "InterferenceMap",
    "disk_interference_graph",
    "build_geometric_interference_map",
    "empty_graph",
    "complete_graph",
    "random_gnp_graph",
    "ring_graph",
    "star_graph",
    "interference_map_from_edge_lists",
    "mwis_greedy_gwmin",
    "mwis_greedy_gwmin2",
    "mwis_greedy_gwmax",
    "mwis_exact",
    "mwis_solve",
    "is_independent_set",
    "MwisAlgorithm",
]
