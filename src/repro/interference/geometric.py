"""Disk-model interference graphs from buyer locations.

The paper's simulation settings (Section V-A): buyers are placed uniformly
at random in a ``10 x 10`` area, each channel has a transmission range drawn
uniformly from ``(0, 5]``, and "the interference graph of each channel is
established based on users' locations and the transmission range of the
channel" -- i.e. the classic unit-disk interference model, with a *different
disk radius per channel* to capture spectrum heterogeneity (following
TAMES [7]).

This module turns ``(locations, ranges)`` into an
:class:`~repro.interference.graph.InterferenceMap`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import MarketConfigurationError
from repro.interference.graph import InterferenceGraph, InterferenceMap

__all__ = [
    "disk_interference_graph",
    "sparse_disk_interference_graph",
    "build_geometric_interference_map",
]


def _as_location_array(locations: Sequence[Tuple[float, float]]) -> np.ndarray:
    array = np.asarray(locations, dtype=float)
    if array.ndim != 2 or array.shape[1] != 2:
        raise MarketConfigurationError(
            f"locations must be an (N, 2) array of planar points, got shape {array.shape}"
        )
    return array


def disk_interference_graph(
    locations: Sequence[Tuple[float, float]],
    transmission_range: float,
) -> InterferenceGraph:
    """Build one channel's interference graph under the disk model.

    Two buyers interfere on the channel iff the Euclidean distance between
    their locations is at most ``transmission_range``.

    Parameters
    ----------
    locations:
        ``(N, 2)`` planar coordinates, one row per virtual buyer.
    transmission_range:
        The channel's interference radius; must be positive.
    """
    if transmission_range <= 0:
        raise MarketConfigurationError(
            f"transmission_range must be positive, got {transmission_range}"
        )
    points = _as_location_array(locations)
    n = points.shape[0]
    if n == 0:
        return InterferenceGraph(0)
    # Pairwise squared distances without scipy.spatial (kept dependency-light
    # and fast enough for the paper's N <= a few thousand).
    deltas = points[:, None, :] - points[None, :, :]
    sq_dist = np.einsum("ijk,ijk->ij", deltas, deltas)
    adjacency = sq_dist <= float(transmission_range) ** 2
    np.fill_diagonal(adjacency, False)
    return InterferenceGraph.from_adjacency_matrix(adjacency)


def sparse_disk_interference_graph(
    locations: Sequence[Tuple[float, float]],
    transmission_range: float,
) -> InterferenceGraph:
    """Disk-model graph without the ``O(N^2)`` distance matrix.

    :func:`disk_interference_graph` materialises all-pairs distances,
    which at the scalability bench's ``N = 50k-100k`` would need tens of
    gigabytes.  This variant finds the in-range pairs with a KD-tree
    (``scipy.spatial.cKDTree.query_pairs``) and builds the graph from
    the edge arrays directly -- ``O(E)`` memory -- producing the exact
    same graph (the disk predicate ``dist <= r`` is evaluated on the
    same coordinates either way).  Requires :mod:`scipy`; callers that
    must stay dependency-light keep using the dense builder.
    """
    if transmission_range <= 0:
        raise MarketConfigurationError(
            f"transmission_range must be positive, got {transmission_range}"
        )
    try:
        from scipy.spatial import cKDTree
    except ImportError as exc:  # pragma: no cover - scipy is baked in
        raise MarketConfigurationError(
            "sparse_disk_interference_graph requires scipy; use "
            "disk_interference_graph instead"
        ) from exc
    points = _as_location_array(locations)
    n = points.shape[0]
    if n == 0:
        return InterferenceGraph(0)
    pairs = cKDTree(points).query_pairs(
        float(transmission_range), output_type="ndarray"
    )
    return InterferenceGraph.from_edge_arrays(
        n, pairs[:, 0].astype(np.int64), pairs[:, 1].astype(np.int64)
    )


def build_geometric_interference_map(
    locations: Sequence[Tuple[float, float]],
    transmission_ranges: Sequence[float],
) -> InterferenceMap:
    """Build the per-channel interference family from a deployment.

    Parameters
    ----------
    locations:
        ``(N, 2)`` planar coordinates of the virtual buyers.
    transmission_ranges:
        One positive radius per channel.  Channels with larger radii yield
        denser graphs (less spatial reuse), reproducing the paper's channel
        heterogeneity.
    """
    ranges = list(transmission_ranges)
    if not ranges:
        raise MarketConfigurationError("at least one channel transmission range is required")
    points = _as_location_array(locations)
    graphs = [disk_interference_graph(points, r) for r in ranges]
    return InterferenceMap(graphs)
