"""Bitmask MWIS kernels: the fast path behind GWMIN / GWMIN2.

The set-based greedy solvers in :mod:`repro.interference.mwis` rebuild an
induced adjacency ``Dict[int, Set[int]]`` and rescan every remaining
candidate on every select-and-remove iteration -- ``O(k^2)`` score
evaluations per solve, each a Python-level set/len round trip.  On the
paper-scale markets the matching core spends almost all of Stage I there.

This module re-implements the same select-and-remove loops over *bitmask*
state (:attr:`repro.interference.graph.InterferenceGraph.adjacency_bits`):

* candidate pools, neighbourhoods and the alive set are Python ints, so
  intersection / removal / degree are word-parallel C operations;
* the argmax is a lazy max-heap: an entry is pushed whenever a node's
  score changes, and popped entries are validated against the node's
  *current* score, so the total ordering work is ``O(E_induced log k)``
  edge-driven updates instead of ``O(k^2)`` rescans.

**Exact equivalence contract.**  These kernels return the *identical*
coalition -- not merely one of equal weight -- to their set-based
reference implementations, which the differential property suite
(``tests/interference/test_bitset_differential.py``) enforces:

* every score is computed with the same IEEE-754 operation sequence as
  the reference (GWMIN: one division; GWMIN2: the closed-neighbourhood
  weight is initialised by summing neighbour weights in ascending index
  order and decremented per removed neighbour in ascending index order);
* ties are broken identically: strictly-greater score wins, equal score
  goes to the smaller buyer index (the heap key ``(-score, j)`` realises
  exactly that rule).

The kernels are toggled by the ``SPECTRUM_FAST_KERNELS`` environment
variable (default on; set ``SPECTRUM_FAST_KERNELS=0`` to force the
set-based reference path everywhere).
"""

from __future__ import annotations

import heapq
import os
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "FAST_KERNELS_ENV",
    "COST_COUNTERS",
    "fast_kernels_enabled",
    "popcount",
    "mask_of",
    "bits_of",
    "induced_masks",
    "mwis_gwmin_bits",
    "mwis_gwmin2_bits",
]

#: Deterministic cost counters for the select-and-remove kernel:
#: machine-independent operation counts accumulated by every solve and
#: read/reset by :mod:`repro.prof.counters`.  Two same-seed runs must
#: show identical values; a drift is an algorithmic change, not noise.
COST_COUNTERS: Dict[str, int] = {
    "bitset.heap_pop_ops": 0,
    "bitset.dead_drop_ops": 0,
    "bitset.stale_drop_ops": 0,
    "bitset.select_ops": 0,
    "bitset.heap_push_ops": 0,
    "bitset.mask_and_ops": 0,
}

#: Environment variable selecting the kernel path.  Anything but the
#: literal string ``"0"`` (including unset) enables the bitset kernels.
FAST_KERNELS_ENV = "SPECTRUM_FAST_KERNELS"


def fast_kernels_enabled() -> bool:
    """True unless ``SPECTRUM_FAST_KERNELS=0`` is set in the environment.

    Read per call (not cached at import) so tests and benchmark harnesses
    can flip the kernel path with ``monkeypatch.setenv`` / subprocess env.
    """
    return os.environ.get(FAST_KERNELS_ENV, "1") != "0"


try:  # int.bit_count is Python >= 3.10; the package supports 3.9.
    popcount = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - exercised only on 3.9
    def popcount(x: int) -> int:
        """Number of set bits in ``x`` (fallback for Python < 3.10)."""
        return bin(x).count("1")


def mask_of(nodes: Iterable[int]) -> int:
    """Bitmask with one bit set per node index."""
    mask = 0
    for j in nodes:
        mask |= 1 << j
    return mask


def bits_of(mask: int) -> List[int]:
    """Set bit positions of ``mask`` in ascending order."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def induced_masks(
    adjacency_bits: Sequence[int], pool: Sequence[int], pool_mask: int
) -> Dict[int, int]:
    """Adjacency of the subgraph induced by ``pool``, as bitmasks."""
    return {j: adjacency_bits[j] & pool_mask for j in pool}


def _select_loop(
    pool: Sequence[int],
    induced: Mapping[int, int],
    score_of: Dict[int, float],
    on_remove,
) -> List[int]:
    """Shared lazy-heap select-and-remove loop.

    ``score_of`` maps each pool node to its current score and is mutated
    by ``on_remove(removed_node, alive_mask)``, which must update the
    scores of the removed node's still-alive neighbours (pushing nothing;
    this loop re-pushes every node whose score changed).  ``on_remove``
    returns the list of alive neighbours whose score it changed.
    """
    alive = mask_of(pool)
    # Ascending-index initialisation gives the heap deterministic layout;
    # the (-score, j) key makes ties resolve to the smallest index.
    heap: List[Tuple[float, int]] = [(-score_of[j], j) for j in pool]
    heapq.heapify(heap)
    chosen: List[int] = []
    pops = dead = stale = pushes = mask_ands = 0
    while heap:
        neg_score, j = heapq.heappop(heap)
        pops += 1
        if not (alive >> j) & 1:
            dead += 1
            continue
        if -neg_score != score_of[j]:
            # Stale entry: j's score changed after this entry was pushed.
            # An entry carrying the current score is guaranteed to be in
            # the heap (one is pushed on every change), so drop this one.
            stale += 1
            continue
        chosen.append(j)
        removed_mask = (induced[j] & alive) | (1 << j)
        mask_ands += 1
        alive &= ~removed_mask
        if not alive:
            break
        for r in bits_of(removed_mask):
            mask_ands += 1  # on_remove intersects induced[r] & alive
            for k in on_remove(r, alive):
                heapq.heappush(heap, (-score_of[k], k))
                pushes += 1
    counters = COST_COUNTERS
    counters["bitset.heap_pop_ops"] += pops
    counters["bitset.dead_drop_ops"] += dead
    counters["bitset.stale_drop_ops"] += stale
    counters["bitset.select_ops"] += len(chosen)
    counters["bitset.heap_push_ops"] += pushes
    counters["bitset.mask_and_ops"] += mask_ands
    chosen.sort()
    return chosen


def mwis_gwmin_bits(
    weights: Mapping[int, float],
    pool: Sequence[int],
    induced: Mapping[int, int],
) -> List[int]:
    """GWMIN over bitmask state; identical output to the set-based GWMIN.

    Parameters
    ----------
    weights:
        Node weight lookup (must cover ``pool``; validated by callers).
    pool:
        Candidate nodes in ascending index order.
    induced:
        ``{j: neighbour mask within pool}`` -- e.g. from
        :func:`induced_masks` or an incremental Stage-I cache.
    """
    degree = {j: popcount(induced[j]) for j in pool}
    score_of = {j: weights[j] / (degree[j] + 1.0) for j in pool}

    def on_remove(r: int, alive: int) -> List[int]:
        touched = bits_of(induced[r] & alive)
        for k in touched:
            degree[k] -= 1
            score_of[k] = weights[k] / (degree[k] + 1.0)
        return touched

    return _select_loop(pool, induced, score_of, on_remove)


def _gwmin2_score(weight: float, closed: float) -> float:
    """GWMIN2 score ``w(v) / w(N+(v))`` with the all-zero guard.

    A non-positive closed-neighbourhood weight means every weight in it is
    zero (weights are non-negative, bar float cancellation to exactly 0),
    so the choice is welfare-neutral and any deterministic value works;
    both kernel paths use 0.0.
    """
    if closed <= 0.0:
        return 0.0
    return weight / closed


def mwis_gwmin2_bits(
    weights: Mapping[int, float],
    pool: Sequence[int],
    induced: Mapping[int, int],
) -> List[int]:
    """GWMIN2 over bitmask state; identical output to the set-based GWMIN2.

    The closed-neighbourhood weight of each node is initialised by summing
    its pool neighbours' weights in ascending index order and thereafter
    *decremented* by each removed neighbour's weight (ascending order per
    removal batch).  The set-based reference performs the identical
    floating-point operation sequence, so both paths agree bit for bit.
    """
    closed: Dict[int, float] = {}
    for j in pool:
        acc = 0.0
        for k in bits_of(induced[j]):
            acc += weights[k]
        closed[j] = weights[j] + acc
    score_of = {j: _gwmin2_score(weights[j], closed[j]) for j in pool}

    def on_remove(r: int, alive: int) -> List[int]:
        touched = bits_of(induced[r] & alive)
        w_r = weights[r]
        for k in touched:
            closed[k] -= w_r
            score_of[k] = _gwmin2_score(weights[k], closed[k])
        return touched

    return _select_loop(pool, induced, score_of, on_remove)
