"""Maximum-weight-independent-set (MWIS) solvers.

When a seller forms her most-preferred spectrum coalition (Algorithm 1,
line 12), she must pick a set of mutually non-interfering buyers with
maximum total offered price -- an MWIS on her channel's interference graph
restricted to the waitlist plus current proposers.  MWIS is NP-hard, so the
paper adopts the linear-time greedy algorithms of Sakai, Togasaki and
Yamazaki, "A note on greedy algorithms for the maximum weighted independent
set problem" (Discrete Applied Mathematics, 2003) -- reference [8].

This module implements the three greedy variants from that paper plus an
exact branch-and-bound solver used as ground truth in tests and in the
MWIS-ablation benchmark:

* **GWMIN** -- repeatedly take the vertex maximising ``w(v) / (deg(v)+1)``
  in the current graph, then delete it and its neighbours.  Guarantees a
  solution of weight at least ``sum_v w(v)/(deg_G(v)+1)``.
* **GWMIN2** -- same loop but scores ``w(v) / sum_{u in N+(v)} w(u)`` where
  ``N+(v)`` is the closed neighbourhood; never worse than GWMIN's bound.
* **GWMAX** -- repeatedly *delete* the vertex minimising
  ``w(v) / (deg(v) * (deg(v)+1))`` until no edges remain; the survivors form
  an independent set.
* **exact** -- branch and bound with a sum-of-remaining-weights bound.

All solvers operate on an induced subset of an
:class:`~repro.interference.graph.InterferenceGraph` so sellers can restrict
the search to their current candidate pool, and all break ties
deterministically (strictly-greater score wins, equal scores go to the
smallest buyer index) so simulation runs are reproducible.

GWMIN and GWMIN2 each have two implementations: the set-based reference
loops in this module and the bitmask kernels of
:mod:`repro.interference.bitset`, selected by the ``SPECTRUM_FAST_KERNELS``
environment variable (on by default; ``SPECTRUM_FAST_KERNELS=0`` forces
the reference path).  The two paths return identical coalitions -- the
differential property suite asserts element-for-element equality on
random graphs -- so the toggle is purely a performance knob.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import SolverError, SolverLimitExceeded
from repro.interference.bitset import (
    fast_kernels_enabled,
    induced_masks,
    mask_of,
    mwis_gwmin2_bits,
    mwis_gwmin_bits,
)
from repro.interference.graph import InterferenceGraph

__all__ = [
    "MwisAlgorithm",
    "mwis_greedy_gwmin",
    "mwis_greedy_gwmin2",
    "mwis_greedy_gwmax",
    "mwis_exact",
    "mwis_solve",
    "is_independent_set",
    "gwmin_lower_bound",
]

#: Exact solver refuses candidate pools larger than this unless overridden;
#: 2^60 branch nodes would be intractable, and the matching core only ever
#: needs exact answers on small pools (tests, toy examples, optimal solver).
DEFAULT_EXACT_NODE_LIMIT = 60


class MwisAlgorithm(str, enum.Enum):
    """Selector for :func:`mwis_solve` (used by sellers and ablations)."""

    GWMIN = "gwmin"
    GWMIN2 = "gwmin2"
    GWMAX = "gwmax"
    EXACT = "exact"


def _induced_adjacency(
    graph: InterferenceGraph, nodes: Iterable[int]
) -> Dict[int, Set[int]]:
    """Adjacency of the subgraph induced by ``nodes`` (validates indices)."""
    node_set = set(nodes)
    adjacency: Dict[int, Set[int]] = {}
    for j in node_set:
        adjacency[j] = set(graph.neighbors(j)) & node_set
    return adjacency


def _validate_weights(weights: Mapping[int, float], nodes: Iterable[int]) -> None:
    for j in nodes:
        if j not in weights:
            raise SolverError(f"missing weight for buyer {j}")
        if weights[j] < 0:
            raise SolverError(
                f"negative weight {weights[j]} for buyer {j}; prices must be >= 0"
            )


def is_independent_set(graph: InterferenceGraph, nodes: Iterable[int]) -> bool:
    """Check that ``nodes`` form an independent set of ``graph``."""
    return graph.is_independent(nodes)


def gwmin_lower_bound(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
) -> float:
    """Sakai et al.'s GWMIN guarantee ``sum w(v) / (deg(v)+1)`` on the pool.

    Any GWMIN output is guaranteed to weigh at least this much; the property
    tests assert it.
    """
    adjacency = _induced_adjacency(graph, nodes)
    _validate_weights(weights, adjacency)
    return sum(weights[j] / (len(adjacency[j]) + 1.0) for j in adjacency)


def _argmax_remaining(
    remaining: List[int], score_of: Callable[[int], float]
) -> int:
    """Deterministic argmax: strictly-greater score wins, ties go to the
    smallest buyer index.

    ``remaining`` must be in ascending index order; scanning it front to
    back and advancing only on a strict improvement realises the
    tie-break rule explicitly (the historical ``max(..., key=(score,
    -j))`` encoded the same rule, but only implicitly through tuple
    comparison of a float and a negated index).
    """
    best = remaining[0]
    best_score = score_of(best)
    for j in remaining[1:]:
        s = score_of(j)
        if s > best_score:
            best, best_score = j, s
    return best


def _greedy_select(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
    score: Callable[[int, Dict[int, Set[int]]], float],
) -> List[int]:
    """Shared set-based select-and-remove loop (GWMIN reference path)."""
    adjacency = _induced_adjacency(graph, nodes)
    _validate_weights(weights, adjacency)
    chosen: List[int] = []
    remaining = sorted(adjacency)
    while remaining:
        best = _argmax_remaining(remaining, lambda j: score(j, adjacency))
        chosen.append(best)
        removed = {best} | adjacency[best]
        remaining = [j for j in remaining if j not in removed]
        for j in removed:
            for k in adjacency[j]:
                adjacency[k].discard(j)
            del adjacency[j]
    chosen.sort()
    return chosen


def _fast_pool(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
) -> Tuple[List[int], Dict[int, int]]:
    """Validate ``nodes`` and build (pool, induced bitmasks) for a kernel."""
    node_set = set(nodes)
    for j in node_set:
        # Same bounds check (and error type) the set-based path performs
        # through graph.neighbors().
        graph._check_node(j)
    _validate_weights(weights, node_set)
    pool = sorted(node_set)
    induced = induced_masks(graph.adjacency_bits, pool, mask_of(pool))
    return pool, induced


def mwis_greedy_gwmin(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
) -> List[int]:
    """GWMIN greedy MWIS on the subgraph induced by ``nodes``.

    Returns the selected buyers in ascending index order.  Dispatches to
    the bitmask kernel unless ``SPECTRUM_FAST_KERNELS=0``; both paths
    return the identical coalition.
    """
    if fast_kernels_enabled():
        pool, induced = _fast_pool(graph, weights, nodes)
        return mwis_gwmin_bits(weights, pool, induced)

    def score(j: int, adjacency: Dict[int, Set[int]]) -> float:
        return weights[j] / (len(adjacency[j]) + 1.0)

    return _greedy_select(graph, weights, nodes, score)


def mwis_greedy_gwmin2(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
) -> List[int]:
    """GWMIN2 greedy MWIS (closed-neighbourhood weight ratio scoring).

    Dispatches to the bitmask kernel unless ``SPECTRUM_FAST_KERNELS=0``.
    Both paths maintain each node's closed-neighbourhood weight with the
    same floating-point operation sequence (ascending-index initial sum,
    per-removal decrements), so their outputs are identical coalitions.
    """
    if fast_kernels_enabled():
        pool, induced = _fast_pool(graph, weights, nodes)
        return mwis_gwmin2_bits(weights, pool, induced)

    adjacency = _induced_adjacency(graph, nodes)
    _validate_weights(weights, adjacency)
    closed: Dict[int, float] = {}
    for j in sorted(adjacency):
        acc = 0.0
        for k in sorted(adjacency[j]):
            acc += weights[k]
        closed[j] = weights[j] + acc

    def score_of(j: int) -> float:
        if closed[j] <= 0.0:
            # All weights in the closed neighbourhood are zero: the choice
            # is welfare-neutral, any deterministic value works.
            return 0.0
        return weights[j] / closed[j]

    chosen: List[int] = []
    remaining = sorted(adjacency)
    while remaining:
        best = _argmax_remaining(remaining, score_of)
        chosen.append(best)
        removed = {best} | adjacency[best]
        remaining = [j for j in remaining if j not in removed]
        for r in sorted(removed):
            for k in sorted(adjacency[r]):
                if k not in removed:
                    closed[k] -= weights[r]
        for j in removed:
            for k in adjacency[j]:
                adjacency[k].discard(j)
            del adjacency[j]
    chosen.sort()
    return chosen


def mwis_greedy_gwmax(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
) -> List[int]:
    """GWMAX greedy MWIS: delete lowest-value vertices until edge-free."""
    adjacency = _induced_adjacency(graph, nodes)
    _validate_weights(weights, adjacency)

    def score(j: int) -> float:
        degree = len(adjacency[j])
        # Vertices that are already isolated are never deleted.
        return weights[j] / (degree * (degree + 1.0))

    while True:
        with_edges = [j for j in adjacency if adjacency[j]]
        if not with_edges:
            break
        # Delete the vertex with the smallest score; ties broken by largest
        # index so the *kept* set is biased toward small indices, matching
        # the other solvers' tie-break direction.
        victim = min(with_edges, key=lambda j: (score(j), j))
        for k in adjacency[victim]:
            adjacency[k].discard(victim)
        del adjacency[victim]
    return sorted(adjacency)


def mwis_exact(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
    node_limit: int = DEFAULT_EXACT_NODE_LIMIT,
) -> List[int]:
    """Exact MWIS via branch and bound.

    Vertices are branched in descending-weight order; the search prunes with
    the trivial bound ``current + sum(remaining weights)``.  Ties between
    equal-weight optima are broken toward the lexicographically smallest
    buyer-index set, so results are deterministic.

    Raises
    ------
    SolverLimitExceeded
        If the candidate pool exceeds ``node_limit`` vertices.
    """
    adjacency = _induced_adjacency(graph, nodes)
    _validate_weights(weights, adjacency)
    pool = sorted(adjacency, key=lambda j: (-weights[j], j))
    if len(pool) > node_limit:
        raise SolverLimitExceeded(
            f"exact MWIS limited to {node_limit} nodes, got {len(pool)}"
        )

    suffix_weight = [0.0] * (len(pool) + 1)
    for idx in range(len(pool) - 1, -1, -1):
        suffix_weight[idx] = suffix_weight[idx + 1] + weights[pool[idx]]

    best_weight = -1.0
    best_set: List[int] = []

    def consider(candidate: List[int], weight: float) -> None:
        nonlocal best_weight, best_set
        key = sorted(candidate)
        # Strict improvement wins; exact ties go to the lexicographically
        # smallest index set (deterministic, and never discards a strictly
        # positive improvement however small).
        if weight > best_weight or (weight == best_weight and key < best_set):
            best_weight = weight
            best_set = key

    def branch(idx: int, chosen: List[int], blocked: Set[int], weight: float) -> None:
        if weight + suffix_weight[idx] < best_weight - 1e-12:
            return
        if idx == len(pool):
            consider(chosen, weight)
            return
        vertex = pool[idx]
        if vertex not in blocked:
            newly_blocked = adjacency[vertex] - blocked
            chosen.append(vertex)
            branch(idx + 1, chosen, blocked | newly_blocked, weight + weights[vertex])
            chosen.pop()
        branch(idx + 1, chosen, blocked, weight)

    branch(0, [], set(), 0.0)
    return best_set


_DISPATCH: Dict[MwisAlgorithm, Callable[..., List[int]]] = {
    MwisAlgorithm.GWMIN: mwis_greedy_gwmin,
    MwisAlgorithm.GWMIN2: mwis_greedy_gwmin2,
    MwisAlgorithm.GWMAX: mwis_greedy_gwmax,
    MwisAlgorithm.EXACT: mwis_exact,
}


def mwis_solve(
    graph: InterferenceGraph,
    weights: Mapping[int, float],
    nodes: Iterable[int],
    algorithm: MwisAlgorithm = MwisAlgorithm.GWMIN,
) -> List[int]:
    """Solve MWIS on the induced subgraph with the selected algorithm.

    This is the entry point used by sellers when forming coalitions; the
    algorithm choice is a market-level configuration knob (see
    :class:`~repro.core.market.SpectrumMarket`) and the subject of the
    ``bench_mwis`` ablation.
    """
    algorithm = MwisAlgorithm(algorithm)
    solver = _DISPATCH[algorithm]
    return solver(graph, weights, nodes)
