"""Spectrum Matching: distributed spectrum exchange via stable matching.

A production-quality reproduction of **"Spectrum Matching"** (Yanjiao
Chen, Linshan Jiang, Haofan Cai, Jin Zhang, Baochun Li -- IEEE ICDCS
2016): many-to-one matching with peer effects as the economic mechanism
for dynamic spectrum access in free markets without an auctioneer.

Quickstart
----------
>>> import numpy as np
>>> from repro import paper_simulation_market, run_two_stage, is_nash_stable
>>> market = paper_simulation_market(30, 5, np.random.default_rng(0))
>>> result = run_two_stage(market)
>>> result.social_welfare > 0
True
>>> is_nash_stable(market, result.matching)
True

Package map
-----------
* :mod:`repro.core` -- market model, the two-stage matching algorithm
  (Algorithms 1-2), stability checkers.
* :mod:`repro.interference` -- per-channel conflict graphs and MWIS
  solvers.
* :mod:`repro.engine` -- the pluggable solver registry: every backend
  behind one ``get_solver(name).solve(market)`` contract.
* :mod:`repro.optimal` -- exact optimal-matching solvers and baselines.
* :mod:`repro.distributed` -- the Section IV message-passing
  implementation with local stage-transition rules.
* :mod:`repro.workloads` -- the paper's simulation workloads and named
  scenarios.
* :mod:`repro.analysis` -- experiment harness regenerating Figs. 6-8.
"""

from repro.core.market import PhysicalBuyer, PhysicalSeller, SpectrumMarket
from repro.core.matching import Matching
from repro.core.coalition import Coalition
from repro.core.deferred_acceptance import StageOneResult, deferred_acceptance
from repro.core.transfer_invitation import StageTwoResult, transfer_and_invitation
from repro.core.two_stage import TwoStageResult, run_two_stage
from repro.core.stability import (
    is_individually_rational,
    is_nash_stable,
    is_pairwise_stable,
    nash_blocking_moves,
    pairwise_blocking_pairs,
)
from repro.interference.graph import InterferenceGraph, InterferenceMap
from repro.interference.mwis import MwisAlgorithm
from repro.optimal.bruteforce import optimal_matching_bruteforce
from repro.optimal.branch_and_bound import optimal_matching_branch_and_bound
from repro.optimal.lp_relaxation import lp_relaxation_bound
from repro.distributed.protocol import DistributedResult, run_distributed_matching
from repro.distributed.faults import (
    CrashFault,
    FaultSchedule,
    MessageFault,
    PartitionFault,
    PartitionedNetwork,
    RestartMode,
)
from repro.distributed.transition import (
    TransitionPolicy,
    adaptive_policy,
    default_policy,
)
from repro.core.swap_extension import StageThreeResult, coordinated_swaps
from repro.core.valuations import (
    AdditiveValuation,
    ComplementsValuation,
    SubstitutesValuation,
    physical_welfare,
)
from repro.auction.mcafee import McAfeeOutcome, mcafee_double_auction
from repro.auction.trust import TrustOutcome, trust_spectrum_auction
from repro.optimal.nash_enumeration import (
    buyer_optimal_nash_stable,
    price_of_nash_stability,
)
from repro.dynamic.generator import DynamicMarketGenerator, Epoch
from repro.dynamic.online import OnlineMatcher, RematchStrategy
from repro.workloads.scenarios import (
    counterexample_market,
    homogeneous_market,
    paper_simulation_market,
    physical_market_example,
    toy_example_market,
)
from repro import engine
from repro.engine import (
    Capability,
    SolveReport,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
)
from repro.obs import (
    JsonlEventSink,
    ListEventSink,
    MetricsRegistry,
    Recorder,
    SpanTracer,
    build_manifest,
    get_recorder,
    use_recorder,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # market / matching
    "SpectrumMarket",
    "PhysicalBuyer",
    "PhysicalSeller",
    "Matching",
    "Coalition",
    # algorithms
    "deferred_acceptance",
    "StageOneResult",
    "transfer_and_invitation",
    "StageTwoResult",
    "run_two_stage",
    "TwoStageResult",
    # stability
    "is_individually_rational",
    "is_nash_stable",
    "is_pairwise_stable",
    "nash_blocking_moves",
    "pairwise_blocking_pairs",
    # interference
    "InterferenceGraph",
    "InterferenceMap",
    "MwisAlgorithm",
    # optimal / baselines
    "optimal_matching_bruteforce",
    "optimal_matching_branch_and_bound",
    "lp_relaxation_bound",
    # distributed
    "run_distributed_matching",
    "DistributedResult",
    "FaultSchedule",
    "CrashFault",
    "PartitionFault",
    "MessageFault",
    "PartitionedNetwork",
    "RestartMode",
    "TransitionPolicy",
    "default_policy",
    "adaptive_policy",
    # extensions (paper future work)
    "coordinated_swaps",
    "StageThreeResult",
    "AdditiveValuation",
    "SubstitutesValuation",
    "ComplementsValuation",
    "physical_welfare",
    "buyer_optimal_nash_stable",
    "price_of_nash_stability",
    # auction comparators
    "mcafee_double_auction",
    "McAfeeOutcome",
    "trust_spectrum_auction",
    "TrustOutcome",
    # dynamic markets
    "DynamicMarketGenerator",
    "Epoch",
    "OnlineMatcher",
    "RematchStrategy",
    # solver engine
    "engine",
    "Capability",
    "SolveReport",
    "get_solver",
    "list_solvers",
    "register_solver",
    "solver_names",
    # workloads
    "toy_example_market",
    "counterexample_market",
    "paper_simulation_market",
    "physical_market_example",
    "homogeneous_market",
    # observability
    "Recorder",
    "MetricsRegistry",
    "SpanTracer",
    "JsonlEventSink",
    "ListEventSink",
    "build_manifest",
    "get_recorder",
    "use_recorder",
]
