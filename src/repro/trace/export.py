"""Exporters: Chrome trace-event JSON and OpenMetrics text.

Two interchange formats, chosen because both are inspectable with stock
tooling and need no dependencies to write:

* **Chrome trace-event JSON** (:func:`to_chrome_trace`) -- loadable in
  Perfetto or ``chrome://tracing``.  Spans become complete (``"X"``)
  events on a ``spans`` process (one track per nesting depth); kernel
  ``msg.*`` events become instants on a ``messages`` process with one
  track per sending agent, timed on the virtual slot clock (1 slot =
  1 ms), so a protocol run reads as a per-agent swimlane diagram.
* **OpenMetrics text** (:func:`to_openmetrics`) -- renders a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` for scraping or
  offline comparison; :func:`counters_from_events` synthesises a
  counters-only snapshot from a raw trace so traces without an embedded
  metrics dump can still be exported.
* **Collapsed stacks** (:func:`to_collapsed`) -- one ``a;b;c  N`` line
  per unique span stack with its *self* time in microseconds, the
  input format of every flamegraph renderer.
* **speedscope JSON** (:func:`to_speedscope`) -- an evented speedscope
  profile of the span tree, loadable at https://www.speedscope.app.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "to_chrome_trace",
    "to_openmetrics",
    "parse_openmetrics",
    "counters_from_events",
    "to_collapsed",
    "to_speedscope",
]

#: Virtual-time scale for slot-clocked events: one slot = 1 ms = 1000 us.
_SLOT_US = 1000.0

_SPAN_PID = 1
_MESSAGE_PID = 2


def to_chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert a trace's spans and message events to Chrome trace JSON.

    Spans with a recorded ``start_s`` are placed on the real
    ``perf_counter`` timeline (relative to the earliest span).  Older
    traces whose spans lack ``start_s`` get a synthesised layout --
    back-to-back per depth track in finish order -- which preserves
    durations but not true concurrency gaps.
    """
    spans = [e for e in events if e.get("event") == "span"]
    messages = [
        e
        for e in events
        if e.get("event") in ("msg.sent", "msg.delivered", "msg.dropped")
    ]

    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _SPAN_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "spans"},
        },
        {
            "ph": "M",
            "pid": _MESSAGE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "messages"},
        },
    ]

    starts = [e["start_s"] for e in spans if "start_s" in e]
    t0 = min(starts) if starts else 0.0
    depth_cursor: Dict[int, float] = {}
    for span in spans:
        depth = int(span.get("depth", 0))
        duration_us = float(span.get("wall_s", 0.0)) * 1e6
        if "start_s" in span:
            ts = (float(span["start_s"]) - t0) * 1e6
        else:
            ts = depth_cursor.get(depth, 0.0)
            depth_cursor[depth] = ts + duration_us
        trace_events.append(
            {
                "ph": "X",
                "pid": _SPAN_PID,
                "tid": depth,
                "ts": ts,
                "dur": duration_us,
                "name": str(span.get("name", "span")),
                "args": {"cpu_s": span.get("cpu_s", 0.0)},
            }
        )

    # One message track per agent, in first-appearance order.
    agent_tids: Dict[str, int] = {}
    sent_by_id: Dict[int, Dict[str, Any]] = {}

    def tid_for(agent: str) -> int:
        if agent not in agent_tids:
            tid = len(agent_tids) + 1
            agent_tids[agent] = tid
            trace_events.append(
                {
                    "ph": "M",
                    "pid": _MESSAGE_PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": agent},
                }
            )
        return agent_tids[agent]

    for message in messages:
        kind = message["event"]
        msg_id = message.get("id")
        if kind == "msg.sent" and msg_id is not None:
            sent_by_id[int(msg_id)] = message
        if kind == "msg.sent":
            agent = str(message.get("src", "?"))
        elif kind == "msg.delivered":
            agent = str(message.get("dst", "?"))
        else:  # msg.dropped carries no endpoints; recover via the send
            sent = sent_by_id.get(int(msg_id)) if msg_id is not None else None
            agent = str(sent.get("dst", "?")) if sent else "?"
        args = {
            key: value
            for key, value in message.items()
            if key not in ("event", "slot")
        }
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": _MESSAGE_PID,
                "tid": tid_for(agent),
                "ts": float(message.get("slot", 0)) * _SLOT_US,
                "name": kind,
                "args": args,
            }
        )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# OpenMetrics
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def to_openmetrics(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Render a metrics snapshot as OpenMetrics exposition text.

    Counters become ``<name>_total``, gauges stay bare, timers become
    ``summary`` count/sum pairs, and histograms become cumulative
    ``le``-labelled buckets.  Bucket upper bounds are exported as
    inclusive per the format even though the registry's buckets are
    right-open; a value landing exactly on a boundary is off by one
    bucket, which the overflow ``+Inf`` bucket always absorbs.
    """
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, stats in snapshot.get("timers", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_format_value(stats['count'])}")
        lines.append(f"{metric}_sum {_format_value(stats['total_s'])}")

    for name, stats in snapshot.get("histograms", {}).items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        boundaries = stats.get("boundaries", [])
        bucket_counts = stats.get("bucket_counts", [])
        for boundary, count in zip(boundaries, bucket_counts):
            cumulative += int(count)
            lines.append(
                f'{metric}_bucket{{le="{_format_value(boundary)}"}} '
                f"{cumulative}"
            )
        lines.append(
            f'{metric}_bucket{{le="+Inf"}} {_format_value(stats["count"])}'
        )
        lines.append(f"{metric}_count {_format_value(stats['count'])}")
        lines.append(f"{metric}_sum {_format_value(stats['sum'])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LE_RE = re.compile(r'le="(?P<le>[^"]+)"')


def _parse_number(text: str, line: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ObservabilityError(
            f"bad OpenMetrics sample value in line {line!r}"
        ) from None


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse OpenMetrics exposition text back into a snapshot-shaped dict.

    Inverse of :func:`to_openmetrics`, used by the ``repro watch``
    console (and the CI smoke job) to consume a telemetry server's
    ``/metrics`` endpoint without any client library.  Returns the usual
    ``{"counters", "gauges", "timers", "histograms"}`` groups keyed by
    the *exposition* metric name (i.e. after ``.`` -> ``_`` mangling --
    the mangling is lossy, so original names are not recovered).

    Summaries come back as timer-shaped dicts; histograms come back with
    de-cumulated ``bucket_counts`` plus ``min``/``max`` *approximated*
    from the first/last occupied bucket's boundaries (the text format
    does not carry exact extremes), which is adequate for
    :func:`~repro.obs.metrics.snapshot_quantile` estimates.

    Raises :class:`~repro.errors.ObservabilityError` on malformed input
    or when the terminating ``# EOF`` marker is missing (a truncated
    scrape must not be mistaken for a complete one).
    """
    types: Dict[str, str] = {}
    samples: Dict[str, List[Dict[str, Any]]] = {}
    saw_eof = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if saw_eof:
            raise ObservabilityError("OpenMetrics content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            # HELP/UNIT and other comments are ignored.
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObservabilityError(f"bad OpenMetrics sample line {line!r}")
        value_text = match.group("value")
        if value_text in ("+Inf", "-Inf", "NaN"):
            value = float(value_text.replace("Inf", "inf").replace("NaN", "nan"))
        else:
            value = _parse_number(value_text, line)
        samples.setdefault(match.group("name"), []).append(
            {"labels": match.group("labels") or "", "value": value}
        )
    if not saw_eof:
        raise ObservabilityError("OpenMetrics text missing # EOF terminator")

    out: Dict[str, Dict[str, Any]] = {
        "counters": {},
        "gauges": {},
        "timers": {},
        "histograms": {},
    }
    for metric, metric_type in types.items():
        if metric_type == "counter":
            rows = samples.get(f"{metric}_total", [])
            if rows:
                out["counters"][metric] = rows[-1]["value"]
        elif metric_type == "gauge":
            rows = samples.get(metric, [])
            if rows:
                out["gauges"][metric] = rows[-1]["value"]
        elif metric_type == "summary":
            count_rows = samples.get(f"{metric}_count", [])
            sum_rows = samples.get(f"{metric}_sum", [])
            count = int(count_rows[-1]["value"]) if count_rows else 0
            total = float(sum_rows[-1]["value"]) if sum_rows else 0.0
            out["timers"][metric] = {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
                "min_s": 0.0,
                "max_s": 0.0,
            }
        elif metric_type == "histogram":
            out["histograms"][metric] = _parse_histogram(metric, samples)
    return out


def _parse_histogram(
    metric: str, samples: Dict[str, List[Dict[str, Any]]]
) -> Dict[str, Any]:
    boundaries: List[float] = []
    cumulatives: List[float] = []
    overflow_cumulative: Optional[float] = None
    for row in samples.get(f"{metric}_bucket", []):
        le_match = _LE_RE.search(row["labels"])
        if le_match is None:
            raise ObservabilityError(
                f"histogram bucket without le label: {metric}"
            )
        le = le_match.group("le")
        if le == "+Inf":
            overflow_cumulative = row["value"]
        else:
            boundaries.append(float(le))
            cumulatives.append(row["value"])
    count_rows = samples.get(f"{metric}_count", [])
    sum_rows = samples.get(f"{metric}_sum", [])
    count = int(count_rows[-1]["value"]) if count_rows else 0
    if count == 0 and overflow_cumulative is not None:
        count = int(overflow_cumulative)
    total = float(sum_rows[-1]["value"]) if sum_rows else 0.0
    bucket_counts: List[int] = []
    previous = 0.0
    for cumulative in cumulatives:
        bucket_counts.append(int(cumulative - previous))
        previous = cumulative
    bucket_counts.append(max(0, count - int(previous)))

    # The text format carries no exact extremes; approximate them from
    # the occupied bucket boundaries so quantile estimates stay sane.
    approx_min = 0.0
    approx_max = 0.0
    occupied = [i for i, c in enumerate(bucket_counts) if c]
    if occupied:
        first, last = occupied[0], occupied[-1]
        approx_min = boundaries[first - 1] if first > 0 else 0.0
        approx_max = (
            boundaries[last] if last < len(boundaries) else boundaries[-1]
        ) if boundaries else 0.0
    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "min": approx_min,
        "max": approx_max,
        "boundaries": boundaries,
        "bucket_counts": bucket_counts,
    }


def _span_tree(
    events: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[int, List[int]]]:
    """Span events plus a parent-index -> child-indices map.

    Span events appear in the stream in finish order, which is exactly
    the tracer's record index order, so position in the filtered list is
    the index the ``parent`` field refers to (roots carry ``-1``).
    """
    spans = [e for e in events if e.get("event") == "span"]
    children: Dict[int, List[int]] = {}
    for index, span in enumerate(spans):
        children.setdefault(int(span.get("parent", -1)), []).append(index)
    return spans, children


def to_collapsed(events: List[Dict[str, Any]]) -> str:
    """Render a trace's span tree as collapsed flamegraph stacks.

    One ``root;child;leaf  N`` line per unique span stack, where ``N``
    is the stack's *self* wall time (wall minus direct children) in
    integer microseconds.  Identical stacks aggregate; zero-self lines
    are dropped; output is sorted, so two identical traces collapse to
    identical bytes.
    """
    spans, children = _span_tree(events)
    stacks: Dict[str, int] = {}
    for index, span in enumerate(spans):
        wall = float(span.get("wall_s", 0.0))
        child_wall = sum(
            float(spans[c].get("wall_s", 0.0))
            for c in children.get(index, ())
        )
        self_us = int(round(max(wall - child_wall, 0.0) * 1e6))
        if self_us <= 0:
            continue
        frames = []
        cursor: Optional[int] = index
        while cursor is not None and cursor >= 0:
            frames.append(str(spans[cursor].get("name", "span")))
            parent = int(spans[cursor].get("parent", -1))
            cursor = parent if parent >= 0 else None
        stack = ";".join(reversed(frames))
        stacks[stack] = stacks.get(stack, 0) + self_us
    lines = [f"{stack} {count}" for stack, count in sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(
    events: List[Dict[str, Any]], name: str = "spans"
) -> Dict[str, Any]:
    """Convert a trace's span tree to an evented speedscope profile.

    The layout is synthesised from the tree -- roots back to back,
    children back to back inside their parent -- so the profile is
    deterministic (independent of real start timestamps) and always
    properly nested.  Durations are the recorded wall seconds.
    """
    spans, children = _span_tree(events)
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, Any]] = []

    def frame_of(span_name: str) -> int:
        if span_name not in frame_index:
            frame_index[span_name] = len(frames)
            frames.append({"name": span_name})
        return frame_index[span_name]

    profile_events: List[Dict[str, Any]] = []

    def emit(index: int, start: float) -> float:
        span = spans[index]
        frame = frame_of(str(span.get("name", "span")))
        wall = float(span.get("wall_s", 0.0))
        profile_events.append({"type": "O", "frame": frame, "at": start})
        cursor = start
        for child in children.get(index, ()):
            cursor = emit(child, cursor)
        end = max(start + wall, cursor)
        profile_events.append({"type": "C", "frame": frame, "at": end})
        return end

    cursor = 0.0
    for root in children.get(-1, ()):
        cursor = emit(root, cursor)

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": cursor,
                "events": profile_events,
            }
        ],
        "activeProfileIndex": 0,
        "exporter": "repro.trace.export",
    }


def counters_from_events(
    events: List[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Synthesise a counters-only snapshot from a raw event stream.

    Counts events by type under ``trace.events.<type>``, so any trace --
    even one recorded without a metrics registry -- has an OpenMetrics
    rendering.
    """
    counts: Dict[str, int] = {}
    for event in events:
        kind = str(event.get("event", "unknown"))
        key = f"trace.events.{kind}"
        counts[key] = counts.get(key, 0) + 1
    return {
        "counters": dict(sorted(counts.items())),
        "gauges": {},
        "timers": {},
        "histograms": {},
    }
