"""Reconstruct the message-causality relation from ``msg.*`` events.

The simulation kernel stamps every send occurrence with ``id`` /
``parent`` / ``trace`` (see the causal-tracing notes in
:mod:`repro.distributed.simulator`): ``parent`` is the id of the
delivered message the sender was reacting to, and ``trace`` is the root
id of the whole chain.  This module inverts that stream into a walkable
graph, so "why does buyer 7 hold channel 2?" becomes a chain of concrete
sends -- including the retransmissions and drops the fault layer injected
along the way.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ObservabilityError

__all__ = ["CausalGraph", "format_chain"]


class CausalGraph:
    """Message-causality index over one trace's ``msg.*`` events.

    Attributes
    ----------
    sent:
        ``msg_id -> msg.sent`` event.
    children:
        ``msg_id -> [child msg_id, ...]`` in send order.
    delivered / dropped:
        ``msg_id -> slot`` for delivered messages, ``msg_id -> reason``
        for dropped ones.  A message absent from both was still in flight
        when the trace ended.
    """

    def __init__(self, events: Iterable[Dict[str, Any]]) -> None:
        self.sent: Dict[int, Dict[str, Any]] = {}
        self.children: Dict[int, List[int]] = {}
        self.delivered: Dict[int, int] = {}
        self.dropped: Dict[int, str] = {}
        for event in events:
            kind = event.get("event")
            if kind == "msg.sent":
                msg_id = int(event["id"])
                self.sent[msg_id] = event
                parent = event.get("parent")
                if parent is not None:
                    self.children.setdefault(int(parent), []).append(msg_id)
            elif kind == "msg.delivered":
                self.delivered[int(event["id"])] = int(event.get("slot", -1))
            elif kind == "msg.dropped":
                self.dropped[int(event["id"])] = str(
                    event.get("reason", "unknown")
                )

    def __len__(self) -> int:
        return len(self.sent)

    # ------------------------------------------------------------------
    # Chain walking
    # ------------------------------------------------------------------
    def chain(self, msg_id: int) -> List[Dict[str, Any]]:
        """The causal chain root -> ... -> ``msg_id`` as sent events."""
        if msg_id not in self.sent:
            raise ObservabilityError(f"no msg.sent event with id {msg_id}")
        chain: List[Dict[str, Any]] = []
        seen = set()
        current: Optional[int] = msg_id
        while current is not None:
            if current in seen:
                raise ObservabilityError(
                    f"causal cycle through msg id {current} (corrupt trace)"
                )
            seen.add(current)
            event = self.sent.get(current)
            if event is None:
                break  # parent fell outside the trace window
            chain.append(event)
            parent = event.get("parent")
            current = int(parent) if parent is not None else None
        chain.reverse()
        return chain

    def outcome(self, msg_id: int) -> str:
        """``"delivered"``, ``"dropped (<reason>)"`` or ``"in flight"``."""
        if msg_id in self.delivered:
            return "delivered"
        if msg_id in self.dropped:
            return f"dropped ({self.dropped[msg_id]})"
        return "in flight"

    def messages_of_agent(self, agent: str) -> List[Dict[str, Any]]:
        """Sent events with ``agent`` as source or destination, by id."""
        return [
            event
            for _msg_id, event in sorted(self.sent.items())
            if event.get("src") == agent or event.get("dst") == agent
        ]

    def explain(self, agent: str) -> List[List[Dict[str, Any]]]:
        """The causal chains that *end* at one of ``agent``'s messages.

        Returns one chain per leaf message (a message with no recorded
        children) the agent sent or received, latest first -- the last
        chain is usually the one that fixed the agent's final assignment.
        """
        involved = self.messages_of_agent(agent)
        if not involved:
            raise ObservabilityError(
                f"agent {agent!r} sent and received no traced messages"
            )
        leaves = [
            event
            for event in involved
            if not self.children.get(int(event["id"]))
        ]
        leaves.sort(key=lambda e: int(e["id"]), reverse=True)
        return [self.chain(int(event["id"])) for event in leaves]

    def retransmissions(self) -> List[Dict[str, Any]]:
        """Sent events that re-send an earlier occurrence.

        A retransmission is a send whose parent is a send of the *same*
        message type between the *same* endpoints (the ARQ layer parents
        every re-send to the original occurrence).
        """
        out = []
        for msg_id, event in sorted(self.sent.items()):
            parent = event.get("parent")
            if parent is None:
                continue
            original = self.sent.get(int(parent))
            if (
                original is not None
                and original.get("type") == event.get("type")
                and original.get("src") == event.get("src")
                and original.get("dst") == event.get("dst")
            ):
                out.append(event)
        return out


def format_chain(graph: CausalGraph, chain: List[Dict[str, Any]]) -> str:
    """Render one causal chain as indented, outcome-annotated text."""
    lines = []
    for depth, event in enumerate(chain):
        msg_id = int(event["id"])
        lines.append(
            f"{'  ' * depth}[slot {event.get('slot')}] "
            f"#{msg_id} {event.get('type')} "
            f"{event.get('src')} -> {event.get('dst')}: "
            f"{graph.outcome(msg_id)}"
        )
    return "\n".join(lines)
