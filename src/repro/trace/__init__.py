"""Offline analysis of recorded JSONL event traces.

The observability layer (:mod:`repro.obs`) *writes* traces; this package
*reads* them.  It turns the raw event stream back into analyzable
artifacts:

* :class:`~repro.trace.reader.TraceReader` -- validate the manifest,
  reconstruct algorithm rounds through the round-event codec, and compute
  a per-run :class:`~repro.trace.reader.TraceSummary` (rounds to
  convergence, per-seller proposal accounting, MWIS time share, welfare
  trajectory, message/drop totals).
* :func:`~repro.trace.diff.diff_traces` -- align two traces and report
  the first divergence with its causal context (the tool behind
  kernel-parity and chaos-vs-twin debugging).
* :class:`~repro.trace.causality.CausalGraph` -- rebuild the
  ``msg.sent``/``msg.delivered``/``msg.dropped`` causality relation the
  simulator emits, walk explanation chains, and spot retransmissions.
* :mod:`~repro.trace.export` -- convert traces to Chrome trace-event
  JSON (Perfetto / ``chrome://tracing``) and metrics snapshots to
  OpenMetrics text.

Everything here is read-only and dependency-free: a trace file (or an
in-memory event list from a :class:`~repro.obs.events.ListEventSink`) is
the only input.  The ``repro trace`` CLI family is a thin shell over
these functions.
"""

from repro.trace.causality import CausalGraph, format_chain
from repro.trace.diff import TraceDiff, canonicalize_events, diff_traces, format_diff
from repro.trace.export import (
    counters_from_events,
    parse_openmetrics,
    to_chrome_trace,
    to_collapsed,
    to_openmetrics,
    to_speedscope,
)
from repro.trace.reader import (
    TraceReader,
    TraceSummary,
    format_summary,
    load_events,
)
from repro.trace.tail import TraceFollower, read_events_tolerant

__all__ = [
    "CausalGraph",
    "format_chain",
    "TraceDiff",
    "canonicalize_events",
    "diff_traces",
    "format_diff",
    "counters_from_events",
    "parse_openmetrics",
    "to_chrome_trace",
    "to_collapsed",
    "to_openmetrics",
    "to_speedscope",
    "TraceReader",
    "TraceSummary",
    "format_summary",
    "load_events",
    "TraceFollower",
    "read_events_tolerant",
]
